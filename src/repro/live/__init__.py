"""repro.live — epoch-versioned online index updates.

The paper's system builds its NPD-index once, offline, over a frozen
road network.  This package makes the deployment *live*: typed update
operations (:mod:`repro.live.ops`) stream through a replayable
write-ahead log (:mod:`repro.live.log`) into an
:class:`~repro.live.epochs.EpochManager`, which applies each batch to a
shadow copy of the per-fragment state and publishes the result as epoch
``N+1`` with a single atomic swap — queries in flight keep draining on
epoch ``N`` and never observe a half-applied index.

Distribution glue lives elsewhere: the clusters
(:mod:`repro.dist.cluster`, :mod:`repro.dist.process_cluster`,
:mod:`repro.serve.pipeline`) accept ``apply_updates`` deltas, and the
serve layer (:mod:`repro.serve.server`) exposes ``update`` / ``epoch``
wire ops.
"""

from repro.live.epochs import EpochManager, EpochState, EpochSwap
from repro.live.log import LogRecord, UpdateLog, write_ops
from repro.live.ops import (
    AddKeyword,
    RemoveKeyword,
    SetEdgeWeight,
    UpdateOp,
    op_from_record,
)

__all__ = [
    "AddKeyword",
    "RemoveKeyword",
    "SetEdgeWeight",
    "UpdateOp",
    "op_from_record",
    "UpdateLog",
    "LogRecord",
    "write_ops",
    "EpochManager",
    "EpochState",
    "EpochSwap",
]
