"""Epoch-versioned state management for live index updates.

The :class:`EpochManager` is the single writer of a deployment's
(network, fragments, indexes) triple.  Updates apply in batches:

1. **validate** — every op in the batch is checked against the current
   network; a bad op rejects the whole batch before anything mutates;
2. **shadow apply** — the per-fragment state is copied (fragment list +
   :meth:`NPDIndex.copy` per index) and a
   :class:`~repro.core.maintenance.KeywordMaintainer` mutates the copy:
   keyword ops patch DL entries incrementally, edge-weight ops run
   impact analysis and rebuild the affected fragments.  Readers of the
   current epoch see none of it;
3. **publish** — the shadow becomes :class:`EpochState` ``N+1`` via a
   single attribute assignment (atomic under the GIL), subscribers
   (cluster glue, serve layer) are notified with the minimal delta —
   the ``(fragment, index)`` pairs that actually changed — and the
   write-ahead log records a commit marker.

Queries running against epoch ``N`` keep their references and drain
untouched; new queries pick up ``N+1``.  There is no epoch in between,
so a torn index (old SC with new DL, half-patched entries) is
unobservable by construction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.coverage import FragmentRuntime
from repro.core.fragment import Fragment
from repro.core.maintenance import KeywordMaintainer
from repro.core.npd import NPDIndex
from repro.exceptions import LiveUpdateError
from repro.graph.road_network import RoadNetwork
from repro.live.log import UpdateLog
from repro.live.ops import UpdateOp
from repro.obs.events import emit as emit_event
from repro.partition.base import Partition

__all__ = ["EpochState", "EpochSwap", "EpochManager"]

# Subscriber signature: (new state, delta) where delta maps each changed
# fragment id to its new (fragment, index) pair.
EpochSubscriber = Callable[["EpochState", dict[int, tuple[Fragment, NPDIndex]]], None]

# Swap subscribers additionally receive the full EpochSwap report —
# changed keywords and the topology flag drive subscription routing
# (repro.sub) without re-parsing the op batch.
SwapSubscriber = Callable[
    ["EpochState", dict[int, tuple[Fragment, NPDIndex]], "EpochSwap"], None
]


@dataclass(frozen=True)
class EpochState:
    """One immutable published version of the deployment state."""

    epoch: int
    network: RoadNetwork
    partition: Partition
    fragments: tuple[Fragment, ...]
    indexes: tuple[NPDIndex, ...]

    def runtimes(
        self, cache_capacity: int = 0, compiled: bool = True
    ) -> list[FragmentRuntime]:
        """Fresh query runtimes over this epoch's fragments."""
        return [
            FragmentRuntime(f, i, cache_capacity=cache_capacity, compiled=compiled)
            for f, i in zip(self.fragments, self.indexes)
        ]

    def delta_from(self, changed: Iterable[int]) -> dict[int, tuple[Fragment, NPDIndex]]:
        """The ``{fragment_id: (fragment, index)}`` delta for ``changed``."""
        return {fid: (self.fragments[fid], self.indexes[fid]) for fid in changed}


@dataclass(frozen=True)
class EpochSwap:
    """Report of one published epoch transition.

    ``changed_keywords`` are the keywords touched by keyword ops in the
    batch and ``topology_changed`` is whether any edge-weight op ran —
    together with ``changed_fragments`` they are exactly what the
    standing-query router (:mod:`repro.sub.registry`) needs to map a
    swap to the affected subscription set.
    """

    epoch: int
    num_ops: int
    ops_by_kind: dict[str, int]
    changed_fragments: tuple[int, ...]
    apply_seconds: float
    swap_seconds: float
    changed_keywords: tuple[str, ...] = ()
    topology_changed: bool = False
    # One ack summary per bound cluster that swapped during this apply
    # (replica clusters report which machines acked — the HA audit trail
    # that an epoch reached every replica).
    cluster_acks: tuple[dict, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for metrics and the serve layer."""
        return {
            "epoch": self.epoch,
            "num_ops": self.num_ops,
            "ops_by_kind": dict(self.ops_by_kind),
            "changed_fragments": list(self.changed_fragments),
            "apply_seconds": self.apply_seconds,
            "swap_seconds": self.swap_seconds,
            "changed_keywords": list(self.changed_keywords),
            "topology_changed": self.topology_changed,
            "cluster_acks": [dict(ack) for ack in self.cluster_acks],
        }


@dataclass
class EpochManager:
    """Single-writer epoch pipeline: shadow-apply, then atomically swap.

    Thread safety: :meth:`apply` serialises writers behind a lock;
    :attr:`state` is a lock-free read (readers grab the reference once
    and use that epoch consistently).  Subscribers run inside the apply
    lock, *after* the swap — they see the new state and can push deltas
    to remote workers before the next batch starts.
    """

    network: RoadNetwork
    partition: Partition
    fragments: Sequence[Fragment]
    indexes: Sequence[NPDIndex]
    log: UpdateLog | None = None
    _state: EpochState = field(init=False, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False, repr=False)
    _subscribers: list[EpochSubscriber] = field(default_factory=list, init=False, repr=False)
    _swap_subscribers: list[SwapSubscriber] = field(
        default_factory=list, init=False, repr=False
    )
    _history: list[EpochSwap] = field(default_factory=list, init=False, repr=False)
    # Ack summaries collected from bound clusters during the current
    # apply; drained into EpochSwap.cluster_acks.  Guarded by _lock
    # (subscribers run inside it).
    _pending_acks: list[dict] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.fragments) != len(self.indexes):
            raise LiveUpdateError("fragments and indexes must align")
        self._state = EpochState(
            epoch=0,
            network=self.network,
            partition=self.partition,
            fragments=tuple(self.fragments),
            indexes=tuple(self.indexes),
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def state(self) -> EpochState:
        """The current published epoch (atomic reference read)."""
        return self._state

    @property
    def epoch(self) -> int:
        """The current epoch number."""
        return self._state.epoch

    @property
    def history(self) -> tuple[EpochSwap, ...]:
        """Reports of every swap published so far."""
        return tuple(self._history)

    def subscribe(self, subscriber: EpochSubscriber) -> None:
        """Call ``subscriber(state, delta)`` after every published swap.

        Subscriber exceptions are *non-fatal*: the swap is already
        published when subscribers run, so a broken subscriber must not
        wedge epoch progression for the whole cluster — failures are
        recorded as ``subscriber_error`` obs events instead.
        """
        self._subscribers.append(subscriber)

    def subscribe_swaps(self, subscriber: SwapSubscriber) -> None:
        """Call ``subscriber(state, delta, swap)`` after every swap.

        The richer channel used by the standing-query engine
        (:class:`repro.sub.engine.SubscriptionEngine`): the
        :class:`EpochSwap` carries the changed keywords and the
        topology flag that drive subscription routing.  Same non-fatal
        error policy as :meth:`subscribe`.
        """
        self._swap_subscribers.append(subscriber)

    def bind_cluster(self, cluster) -> EpochSubscriber:
        """Subscribe a cluster so every swap pushes its delta to workers.

        ``cluster`` needs an ``apply_updates(epoch, replacements)``
        method (:class:`repro.dist.ProcessCluster` and
        :class:`repro.serve.PipelinedCluster` both qualify).  Returns
        the registered subscriber so callers can :meth:`unsubscribe`
        when the cluster shuts down before the manager does.
        """

        cluster_name = type(cluster).__name__

        def _push(state: EpochState, delta: dict[int, tuple[Fragment, NPDIndex]]) -> None:
            if delta:
                summary = cluster.apply_updates(state.epoch, list(delta.values()))
                if isinstance(summary, dict):
                    self._pending_acks.append({"cluster": cluster_name, **summary})

        _push.__qualname__ = f"bind_cluster({cluster_name})"
        self.subscribe(_push)
        return _push

    def unsubscribe(self, subscriber) -> bool:
        """Remove a subscriber registered with either subscribe method.

        Returns whether anything was removed (idempotent otherwise).
        """
        removed = False
        for listing in (self._subscribers, self._swap_subscribers):
            try:
                listing.remove(subscriber)
                removed = True
            except ValueError:
                pass
        return removed

    def _notify(self, subscriber, *args) -> None:
        """Run one subscriber; failures become obs events, not errors."""
        try:
            subscriber(*args)
        except Exception as exc:
            emit_event(
                "subscriber_error",
                epoch=args[0].epoch,
                subscriber=getattr(subscriber, "__qualname__", repr(subscriber)),
                error=f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def apply(self, ops: Sequence[UpdateOp]) -> EpochSwap:
        """Apply one batch and publish the next epoch.

        All-or-nothing: validation failures (and any apply error) leave
        the current epoch untouched and raise :class:`LiveUpdateError`.
        """
        ops = list(ops)
        if not ops:
            raise LiveUpdateError("empty update batch")
        with self._lock:
            base = self._state
            for op in ops:
                op.validate(base.network)
            if self.log is not None:
                for op in ops:
                    self.log.append(op)

            apply_started = time.perf_counter()
            maintainer = KeywordMaintainer(
                network=base.network,
                partition=base.partition,
                fragments=list(base.fragments),
                indexes=[index.copy() for index in base.indexes],
            )
            changed: set[int] = set()
            for op in ops:
                try:
                    changed.update(op.apply(maintainer))
                except LiveUpdateError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    raise LiveUpdateError(f"applying {op!r} failed: {exc}") from exc
            apply_seconds = time.perf_counter() - apply_started

            swap_started = time.perf_counter()
            new_state = EpochState(
                epoch=base.epoch + 1,
                network=maintainer.network,
                partition=base.partition,
                fragments=tuple(maintainer.fragments),
                indexes=tuple(maintainer.indexes),
            )
            self._state = new_state  # the atomic swap: readers now see N+1
            delta = new_state.delta_from(sorted(changed))
            self._pending_acks.clear()
            for subscriber in list(self._subscribers):
                self._notify(subscriber, new_state, delta)
            cluster_acks = tuple(self._pending_acks)
            self._pending_acks.clear()
            swap_seconds = time.perf_counter() - swap_started

            if self.log is not None:
                self.log.commit(new_state.epoch, len(ops))

            ops_by_kind: dict[str, int] = {}
            keywords: set[str] = set()
            topology = False
            for op in ops:
                ops_by_kind[op.kind] = ops_by_kind.get(op.kind, 0) + 1
                keyword = getattr(op, "keyword", None)
                if keyword is not None:
                    keywords.add(keyword)
                else:
                    topology = True
            swap = EpochSwap(
                epoch=new_state.epoch,
                num_ops=len(ops),
                ops_by_kind=ops_by_kind,
                changed_fragments=tuple(sorted(changed)),
                apply_seconds=apply_seconds,
                swap_seconds=swap_seconds,
                changed_keywords=tuple(sorted(keywords)),
                topology_changed=topology,
                cluster_acks=cluster_acks,
            )
            self._history.append(swap)
            # Structured obs event so `repro trace` can interleave epoch
            # swaps with traced queries on the shared monotonic clock.
            emit_event(
                "epoch_swap",
                epoch=swap.epoch,
                num_ops=swap.num_ops,
                changed_fragments=list(swap.changed_fragments),
                apply_ms=swap.apply_seconds * 1000.0,
                swap_ms=swap.swap_seconds * 1000.0,
            )
            # Swap subscribers (the standing-query engine) run last so
            # their re-evaluation work is excluded from swap_seconds.
            for subscriber in list(self._swap_subscribers):
                self._notify(subscriber, new_state, delta, swap)
            return swap

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        network: RoadNetwork,
        partition: Partition,
        fragments: Sequence[Fragment],
        indexes: Sequence[NPDIndex],
        log: UpdateLog,
    ) -> tuple["EpochManager", list[UpdateOp]]:
        """Rebuild a manager by replaying the committed log prefix.

        The given state must be the epoch-0 (pre-log) build.  Committed
        batches re-apply in order — reproducing the pre-crash epoch
        sequence — while the replay itself is kept out of the log (no
        double-append).  Returns ``(manager, pending)`` where
        ``pending`` holds the uncommitted tail ops for the caller to
        re-submit or drop.
        """
        committed, pending = log.replay()
        manager = cls(
            network=network,
            partition=partition,
            fragments=fragments,
            indexes=indexes,
        )
        for record in committed:
            swap = manager.apply(record.ops)
            if swap.epoch != record.epoch:
                raise LiveUpdateError(
                    f"replay drift: log committed epoch {record.epoch}, "
                    f"replay produced {swap.epoch}"
                )
        manager.log = log
        return manager, list(pending)
