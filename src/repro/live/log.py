"""A replayable JSONL write-ahead log for live updates.

Durability protocol (classic WAL discipline, one file, append-only):

1. every op is appended — ``{"seq": n, "op": ..., ...}`` — *before* it
   is applied to the shadow state;
2. after the epoch swap publishes, a commit marker
   ``{"commit": epoch, "ops": k}`` is appended.

On recovery, :meth:`UpdateLog.replay` partitions the file into
*committed* batches (ops covered by a commit marker — these were fully
applied and published, so re-applying them reproduces the pre-crash
epochs) and a *pending* tail (ops whose batch never committed; the swap
never published, so they are surfaced separately for the operator to
re-submit or drop).

The format is line-delimited JSON so the log is greppable, appendable
from shell tooling, and order-preserving under concatenation.  Torn
final lines (a crash mid-append) are tolerated: an undecodable *last*
line is discarded; corruption anywhere earlier raises, because silently
skipping interior records would re-order history.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.exceptions import LiveUpdateError
from repro.live.ops import UpdateOp, op_from_record

__all__ = ["LogRecord", "UpdateLog", "write_ops"]


@dataclass(frozen=True)
class LogRecord:
    """One replayed committed batch: the epoch it produced and its ops."""

    epoch: int
    ops: tuple[UpdateOp, ...]


@dataclass
class UpdateLog:
    """Append-only JSONL op log with commit markers.

    Parameters
    ----------
    path:
        Log file location; created (with parents) on first append.
    fsync:
        When true, ``os.fsync`` after every commit marker — the
        durability point.  Individual op appends are only flushed
        (page-cache durability), keeping the hot path cheap.
    """

    path: Path
    fsync: bool = False
    _handle: object = field(default=None, init=False, repr=False, compare=False)
    _next_seq: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.path.exists():
            committed, pending = self.replay()
            self._next_seq = sum(len(r.ops) for r in committed) + len(pending)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _file(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def append(self, op: UpdateOp) -> int:
        """Append one op; returns its sequence number."""
        seq = self._next_seq
        record = {"seq": seq, **op.to_record()}
        handle = self._file()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        self._next_seq = seq + 1
        return seq

    def commit(self, epoch: int, num_ops: int) -> None:
        """Append a commit marker covering the last ``num_ops`` appends."""
        handle = self._file()
        handle.write(json.dumps({"commit": epoch, "ops": num_ops}) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        """Close the underlying file handle (reopened on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "UpdateLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _lines(self) -> Iterator[tuple[int, str]]:
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if line:
                    yield lineno, line

    def replay(self) -> tuple[list[LogRecord], list[UpdateOp]]:
        """Parse the log into committed batches and the pending tail.

        Returns ``(committed, pending)`` where ``committed`` is a list
        of :class:`LogRecord` in epoch order and ``pending`` the ops
        appended after the last commit marker.
        """
        if not self.path.exists():
            return [], []
        lines = list(self._lines())
        committed: list[LogRecord] = []
        tail: list[UpdateOp] = []
        for position, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if position == len(lines) - 1:
                    break  # torn final append from a crash; discard
                raise LiveUpdateError(
                    f"{self.path}:{lineno}: corrupt log record"
                ) from exc
            if "commit" in record:
                epoch = int(record["commit"])
                count = int(record.get("ops", len(tail)))
                if count > len(tail):
                    raise LiveUpdateError(
                        f"{self.path}:{lineno}: commit marker covers {count} ops "
                        f"but only {len(tail)} are uncommitted"
                    )
                batch = tuple(tail[len(tail) - count :])
                del tail[len(tail) - count :]
                if tail:
                    raise LiveUpdateError(
                        f"{self.path}:{lineno}: {len(tail)} ops stranded before "
                        f"commit of epoch {epoch}"
                    )
                committed.append(LogRecord(epoch=epoch, ops=batch))
            else:
                tail.append(op_from_record(record))
        return committed, tail

    def committed_ops(self) -> list[UpdateOp]:
        """All committed ops, flattened in application order."""
        committed, _pending = self.replay()
        return [op for record in committed for op in record.ops]


def write_ops(path: Path | str, batches: Sequence[Sequence[UpdateOp]]) -> Path:
    """Write ``batches`` as a fully committed log (test/CLI helper)."""
    path = Path(path)
    log = UpdateLog(path)
    epoch = 0
    for batch in batches:
        for op in batch:
            log.append(op)
        epoch += 1
        log.commit(epoch, len(batch))
    log.close()
    return path
