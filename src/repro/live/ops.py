"""Typed update operations for live index maintenance.

Three operation kinds cover the update model the NPD-index can absorb
without a full rebuild (see :mod:`repro.core.maintenance`):

* :class:`AddKeyword` / :class:`RemoveKeyword` — object metadata churn,
  patched incrementally into the DL entries;
* :class:`SetEdgeWeight` — road-cost drift, handled by impact analysis
  plus bounded per-fragment rebuild.

Every op is a frozen dataclass with a stable ``kind`` tag, a
``validate(network)`` precondition check, an ``apply(maintainer)`` that
returns the ids of the fragments it changed, and a lossless JSON record
round-trip (``to_record`` / :func:`op_from_record`) used by the
write-ahead log and the serve-layer wire protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.maintenance import KeywordMaintainer
from repro.exceptions import GraphError, LiveUpdateError
from repro.graph.road_network import RoadNetwork

__all__ = [
    "UpdateOp",
    "AddKeyword",
    "RemoveKeyword",
    "SetEdgeWeight",
    "op_from_record",
]


@dataclass(frozen=True)
class UpdateOp:
    """Base class for live update operations.

    Subclasses define ``kind`` (the stable wire/WAL tag) and implement
    :meth:`validate`, :meth:`apply` and :meth:`to_record`.
    """

    kind = "abstract"

    def validate(self, network: RoadNetwork) -> None:
        """Raise :class:`LiveUpdateError` if the op cannot apply to ``network``."""
        raise NotImplementedError

    def apply(self, maintainer: KeywordMaintainer) -> tuple[int, ...]:
        """Apply to ``maintainer``; returns the changed fragment ids."""
        raise NotImplementedError

    def to_record(self) -> dict[str, Any]:
        """A JSON-serialisable record; inverted by :func:`op_from_record`."""
        raise NotImplementedError


@dataclass(frozen=True)
class AddKeyword(UpdateOp):
    """Attach ``keyword`` to object ``node``."""

    node: int
    keyword: str
    kind = "add_keyword"

    def validate(self, network: RoadNetwork) -> None:
        """Require a non-empty keyword and an existing object node."""
        if not isinstance(self.keyword, str) or not self.keyword:
            raise LiveUpdateError(f"invalid keyword {self.keyword!r}")
        if not 0 <= self.node < network.num_nodes:
            raise LiveUpdateError(f"cannot add keyword: node {self.node} does not exist")
        if not network.is_object(self.node):
            raise LiveUpdateError(
                f"cannot add keyword: node {self.node} is a junction, not an object"
            )

    def apply(self, maintainer: KeywordMaintainer) -> tuple[int, ...]:
        """Patch the keyword into the DL entries incrementally."""
        return maintainer.add_keyword(self.node, self.keyword)

    def to_record(self) -> dict[str, Any]:
        """JSON record (``op=add_keyword``)."""
        return {"op": self.kind, "node": self.node, "keyword": self.keyword}


@dataclass(frozen=True)
class RemoveKeyword(UpdateOp):
    """Detach ``keyword`` from object ``node`` (no-op if absent)."""

    node: int
    keyword: str
    kind = "remove_keyword"

    def validate(self, network: RoadNetwork) -> None:
        """Require a non-empty keyword and an existing node."""
        if not isinstance(self.keyword, str) or not self.keyword:
            raise LiveUpdateError(f"invalid keyword {self.keyword!r}")
        if not 0 <= self.node < network.num_nodes:
            raise LiveUpdateError(
                f"cannot remove keyword: node {self.node} does not exist"
            )

    def apply(self, maintainer: KeywordMaintainer) -> tuple[int, ...]:
        """Drop the keyword and recompute its DL entries."""
        return maintainer.remove_keyword(self.node, self.keyword)

    def to_record(self) -> dict[str, Any]:
        """JSON record (``op=remove_keyword``)."""
        return {"op": self.kind, "node": self.node, "keyword": self.keyword}


@dataclass(frozen=True)
class SetEdgeWeight(UpdateOp):
    """Set the cost of edge ``u -> v`` to ``weight``."""

    u: int
    v: int
    weight: float
    kind = "set_edge_weight"

    def validate(self, network: RoadNetwork) -> None:
        """Require an existing edge and a positive finite weight."""
        if not isinstance(self.weight, (int, float)) or isinstance(self.weight, bool):
            raise LiveUpdateError(f"invalid edge weight {self.weight!r}")
        if not (self.weight > 0 and math.isfinite(self.weight)):
            raise LiveUpdateError(
                f"edge weight must be positive and finite, got {self.weight!r}"
            )
        try:
            network.edge_weight(self.u, self.v)
        except GraphError as exc:
            raise LiveUpdateError(
                f"cannot set weight: no edge between {self.u} and {self.v}"
            ) from exc

    def apply(self, maintainer: KeywordMaintainer) -> tuple[int, ...]:
        """Reweight the edge; impact analysis rebuilds affected fragments."""
        return maintainer.set_edge_weight(self.u, self.v, self.weight)

    def to_record(self) -> dict[str, Any]:
        """JSON record (``op=set_edge_weight``)."""
        return {"op": self.kind, "u": self.u, "v": self.v, "weight": self.weight}


_OP_KINDS: dict[str, type[UpdateOp]] = {
    AddKeyword.kind: AddKeyword,
    RemoveKeyword.kind: RemoveKeyword,
    SetEdgeWeight.kind: SetEdgeWeight,
}


def op_from_record(record: Mapping[str, Any]) -> UpdateOp:
    """Reconstruct an :class:`UpdateOp` from its ``to_record`` form."""
    kind = record.get("op")
    cls = _OP_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise LiveUpdateError(f"unknown update op kind {kind!r}")
    try:
        if cls is SetEdgeWeight:
            return SetEdgeWeight(
                u=int(record["u"]), v=int(record["v"]), weight=float(record["weight"])
            )
        return cls(node=int(record["node"]), keyword=str(record["keyword"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise LiveUpdateError(f"malformed {kind!r} record: {dict(record)!r}") from exc
