"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``    — Table-1-style statistics of a dataset preset.
``build``   — partition a preset, build every ``IND(P)``, write the
              per-machine files (fragment + index) into a directory.
``query``   — cold-start workers from a built directory and answer an
              SGKQ or RKQ, printing results and accounting.
``serve``   — cold-start a pipelined worker cluster from a built
              directory and serve queries over TCP (NDJSON protocol);
              ``--live`` additionally accepts online ``update`` batches
              (epoch-versioned, write-ahead logged).
``loadgen`` — drive a running server closed-loop and print throughput,
              tail latency and the server's own metrics (including a
              per-stage latency table when tracing is sampling);
              ``--subs``/``--update-ops`` mix standing subscriptions
              and live updates into the run.
``subscriptions`` — register synthetic standing queries on a running
              ``serve --live --sub`` server and stream its pushed
              ``notify``/``resync`` frames.
``chaos``   — self-contained failover drill: a replicated HA cluster is
              built, one worker is killed mid-run, and every answer is
              checked bit-for-bit against a single-machine reference.
``trace``   — fetch a running server's sampled traces, slow-query ring
              and epoch-swap events; render span trees, or export them
              as a Chrome trace-event file for Perfetto.
``top``     — live refreshing dashboard of a running server: qps, tail
              latency, SLO burn rates, cache hit rate, per-machine
              load, hot keywords/fragments and recent slow queries.
``updates`` — generate a synthetic update stream into a write-ahead
              log, or ``--replay`` a log against a built directory and
              report every epoch swap.
``demo``    — an end-to-end run on the paper's Fig. 1 network.

The CLI drives exactly the public library API; it exists so the system
can be exercised without writing Python.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro import DisksEngine, EngineConfig, __version__, rkq, sgkq
from repro.core import build_fragments, deployment_report, parse_query
from repro.core.coverage import FragmentRuntime
from repro.core.executor import execute_fragment_task
from repro.dist import SimulatedCluster
from repro.exceptions import DisksError
from repro.partition import MultilevelPartitioner
from repro.storage import (
    read_fragment_file,
    read_index_file,
    write_fragment_file,
    write_index_file,
)
from repro.workloads import DATASET_PRESETS, load_dataset, toy_figure1

__all__ = ["main", "build_parser"]

_MANIFEST = "manifest.json"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiSKS: distributed spatial keyword querying on road networks",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="show dataset statistics")
    info.add_argument("--dataset", default="aus_tiny", choices=sorted(DATASET_PRESETS))

    build = sub.add_parser("build", help="build per-machine index files")
    build.add_argument("--dataset", default="aus_tiny", choices=sorted(DATASET_PRESETS))
    build.add_argument("--fragments", type=int, default=8)
    build.add_argument("--lambda-factor", type=float, default=20.0, dest="lambda_factor")
    build.add_argument("--out", required=True, help="output directory")

    query = sub.add_parser("query", help="answer a query from built files")
    query.add_argument("--dir", required=True, help="directory produced by `build`")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--keywords", help="comma-separated keywords (SGKQ/RKQ form)")
    group.add_argument(
        "--expr",
        help="query-language expression, e.g. "
        "'NEAR(kw0001, 5) AND NEAR(kw0002, 5) NOT NEAR(kw0003, 1)'",
    )
    query.add_argument("--radius", type=float, default=None)
    query.add_argument(
        "--location",
        type=int,
        default=None,
        help="node id: if given, run an RKQ from this location instead of an SGKQ",
    )

    serve = sub.add_parser("serve", help="serve queries over TCP from built files")
    serve.add_argument("--dir", required=True, help="directory produced by `build`")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7474, help="0 picks a free port")
    serve.add_argument(
        "--machines", type=int, default=None, help="worker processes (default: one per fragment)"
    )
    serve.add_argument(
        "--max-inflight", type=int, default=16, dest="max_inflight",
        help="admission high-water mark; excess queries are shed",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0, help="per-query timeout, seconds"
    )
    serve.add_argument(
        "--live", action="store_true",
        help="accept live update batches (op 'update'), epoch-versioned",
    )
    serve.add_argument(
        "--sub", action="store_true",
        help="accept standing queries (ops 'subscribe'/'unsubscribe', pushed "
        "'notify' frames); requires --live",
    )
    serve.add_argument(
        "--log", default=None,
        help="write-ahead log for --live updates (default: DIR/updates.jsonl)",
    )
    serve.add_argument(
        "--trace", type=float, nargs="?", const=0.01, default=0.0, metavar="RATE",
        help="sample queries for end-to-end tracing (bare flag: 1%%)",
    )
    serve.add_argument(
        "--tail", action="store_true",
        help="tail-based trace retention: decide after completion, keeping "
        "slow/errored/rerouted/stale-reject/epoch-adjacent traces "
        "(replaces --trace head sampling)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=250.0, dest="slow_ms",
        help="queries slower than this always enter the slow-query ring",
    )
    serve.add_argument(
        "--slow-ring", type=int, default=64, dest="slow_ring",
        help="slow-query ring capacity (entries)",
    )
    serve.add_argument(
        "--slo", action="store_true",
        help="multi-window SLO burn-rate accounting per op; burn gauges in "
        "the metrics op, attainment in stats, slo_burn alert events",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=0.999,
        dest="slo_availability",
        help="availability objective for --slo (fraction of requests ok)",
    )
    serve.add_argument(
        "--slo-latency-target", type=float, default=0.99,
        dest="slo_latency_target",
        help="latency objective for --slo: this fraction of ok queries "
        "must finish under --slow-ms",
    )
    serve.add_argument(
        "--trace-log", default=None, dest="trace_log",
        help="also append sampled traces to this JSONL file (rotated)",
    )
    serve.add_argument(
        "--wire", default="binary", choices=("binary", "pickle"),
        help="coordinator<->worker pipe encoding (binary is the fast path)",
    )
    serve.add_argument(
        "--no-shm", action="store_false", dest="shm",
        help="ship fragments to workers by pickle instead of shared memory",
    )
    serve.add_argument(
        "--cache", action="store_true",
        help="semantic result cache: repeat/subsumed queries answered "
        "without dispatch, invalidated per epoch delta under --live",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=1024, dest="cache_entries",
        help="result-cache LRU capacity (entries)",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=32 * 1024 * 1024, dest="cache_bytes",
        help="result-cache memory budget (estimated bytes)",
    )
    serve.add_argument(
        "--no-subsumption", action="store_false", dest="cache_subsumption",
        help="disable radius subsumption (exact-key memo only)",
    )
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="host each fragment on this many workers (repro.ha); >1 "
        "survives worker loss with exact answers",
    )
    serve.add_argument(
        "--routing", default="load", choices=("load", "rr"),
        help="replica picker under --replicas: least-busy or round-robin",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="allow the 'chaos' op to kill workers (fault drills)",
    )

    loadgen = sub.add_parser("loadgen", help="closed-loop load test of a server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7474)
    loadgen.add_argument(
        "--dataset", default="aus_tiny", choices=sorted(DATASET_PRESETS),
        help="preset used to synthesise the query stream (match the server's build)",
    )
    loadgen.add_argument("--clients", type=int, default=4)
    loadgen.add_argument("--queries", type=int, default=100)
    loadgen.add_argument("--keywords", type=int, default=2)
    loadgen.add_argument(
        "--radius-fraction", type=float, default=0.5, dest="radius_fraction",
        help="query radius as a fraction of the server's maxR",
    )
    loadgen.add_argument(
        "--rkq-fraction", type=float, default=0.25, dest="rkq_fraction"
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--zipf", type=float, default=None, metavar="S",
        help="Zipf(S) keyword skew over the global frequency rank "
        "(default: the paper's frequency-proportional selection)",
    )
    loadgen.add_argument(
        "--subs", type=int, default=0,
        help="register this many standing subscriptions before the run "
        "(requires a server started with --sub)",
    )
    loadgen.add_argument(
        "--update-ops", type=int, default=0, dest="update_ops",
        help="mix this many live-update ops into the run (requires --live)",
    )
    loadgen.add_argument(
        "--update-batch", type=int, default=10, dest="update_batch",
        help="ops per update batch for --update-ops",
    )
    loadgen.add_argument(
        "--wire", default="ndjson", choices=("ndjson", "binary"),
        help="client protocol: NDJSON lines or DSKW binary frames",
    )
    loadgen.add_argument(
        "--batch", type=int, default=1,
        help="queries per BATCH frame (binary wire only; keep <= the "
        "server's --max-inflight or the excess is shed)",
    )
    loadgen.add_argument(
        "--kill-worker", action="append", default=[], dest="kill_worker",
        metavar="N@T",
        help="fault injection: kill worker N at T seconds into the run "
        "(repeatable; the server needs --chaos)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="self-contained failover drill: replicated cluster, kill a "
        "worker mid-run, verify every answer stayed exact",
    )
    chaos.add_argument(
        "--dataset", default="aus_tiny", choices=sorted(DATASET_PRESETS),
        help="preset to build and drill against",
    )
    chaos.add_argument("--machines", type=int, default=4)
    chaos.add_argument("--replicas", type=int, default=2)
    chaos.add_argument("--queries", type=int, default=60)
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument("--kill", type=int, default=1, help="worker id to kill")
    chaos.add_argument(
        "--at", type=float, default=0.2, dest="kill_at",
        help="seconds into the run to kill it",
    )
    chaos.add_argument("--seed", type=int, default=0)

    subscriptions = sub.add_parser(
        "subscriptions",
        help="register standing queries on a running server and watch notifications",
    )
    subscriptions.add_argument("--host", default="127.0.0.1")
    subscriptions.add_argument("--port", type=int, default=7474)
    subscriptions.add_argument(
        "--dataset", default="aus_tiny", choices=sorted(DATASET_PRESETS),
        help="preset used to synthesise the subscriptions (match the server's build)",
    )
    subscriptions.add_argument("--count", type=int, default=8)
    subscriptions.add_argument("--keywords", type=int, default=2)
    subscriptions.add_argument(
        "--radius-fraction", type=float, default=0.5, dest="radius_fraction",
        help="subscription radius as a fraction of the server's maxR",
    )
    subscriptions.add_argument(
        "--rkq-fraction", type=float, default=0.5, dest="rkq_fraction"
    )
    subscriptions.add_argument(
        "--scored-fraction", type=float, default=0.0, dest="scored_fraction",
        help="fraction of subscriptions that also get 'rescored' notifications",
    )
    subscriptions.add_argument("--seed", type=int, default=0)
    subscriptions.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="stop after this many seconds (default: until interrupted)",
    )

    trace = sub.add_parser(
        "trace", help="fetch and render a running server's sampled traces"
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=7474)
    trace.add_argument(
        "-n", type=int, default=8, help="how many recent traces/slow entries/events"
    )
    trace.add_argument(
        "--id", default=None, dest="trace_id", help="show one stored trace by id"
    )
    trace.add_argument(
        "--chrome", default=None, metavar="OUT.json",
        help="write the fetched traces as a Chrome trace-event file "
        "(open in Perfetto or chrome://tracing)",
    )

    top = sub.add_parser(
        "top", help="live refreshing dashboard of a running server"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7474)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--wire", default="ndjson", choices=("ndjson", "binary"),
        help="poll over NDJSON lines or DSKW binary frames",
    )
    top.add_argument(
        "-n", type=int, default=5, dest="top_n",
        help="entries per section (hot keys, slow queries)",
    )
    top.add_argument(
        "--no-clear", action="store_false", dest="clear",
        help="append frames instead of redrawing the terminal",
    )

    updates = sub.add_parser(
        "updates", help="generate or replay a live-update log against built files"
    )
    updates.add_argument("--dir", required=True, help="directory produced by `build`")
    updates.add_argument(
        "--log", default=None,
        help="update log path (default: DIR/updates.jsonl)",
    )
    mode = updates.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--replay", action="store_true",
        help="re-apply the log's committed batches and report each epoch swap",
    )
    mode.add_argument(
        "--generate", type=int, metavar="N", default=None,
        help="generate N synthetic ops into the log as committed batches",
    )
    updates.add_argument("--batch-size", type=int, default=10, dest="batch_size")
    updates.add_argument("--seed", type=int, default=0)

    sub.add_parser("demo", help="run the paper's Fig. 1 worked examples")
    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    stats = dataset.stats
    print(f"{'name':<10} {'nodes':>10} {'objects':>9} {'edges':>10} {'keywords':>9}")
    print(stats.as_table_row(dataset.name))
    print(
        f"\navg degree {stats.avg_degree:.2f}, avg edge weight "
        f"{stats.avg_edge_weight:.3f}, avg keywords/object "
        f"{stats.avg_keywords_per_object:.2f}, connected: {stats.connected}"
    )
    print("top keywords:", ", ".join(dataset.frequent_keywords(8)))
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    engine = DisksEngine.build(
        dataset.network,
        EngineConfig(
            num_fragments=args.fragments,
            lambda_factor=args.lambda_factor,
            partitioner=MultilevelPartitioner(seed=0),
        ),
    )
    total = 0
    for fragment, index in zip(engine.fragments, engine.indexes):
        total += write_fragment_file(fragment, out / f"fragment-{fragment.fragment_id}.npf")
        total += write_index_file(index, out / f"index-{index.fragment_id}.npd")
    manifest = {
        "dataset": args.dataset,
        "fragments": args.fragments,
        "lambda_factor": args.lambda_factor,
        "max_radius": engine.max_radius,
    }
    (out / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    print(
        f"built {args.fragments} fragments of {args.dataset} "
        f"(maxR={engine.max_radius:.2f}) into {out} — {total / 1024:.1f} KiB total"
    )
    print(deployment_report(engine).render())
    return 0


def _load_built(directory: Path) -> tuple[dict, list, list]:
    """Manifest plus the fragments and indexes of a `build` directory."""
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise DisksError(f"{directory} has no {_MANIFEST}; run `repro build` first")
    manifest = json.loads(manifest_path.read_text())
    fragments, indexes = [], []
    for i in range(manifest["fragments"]):
        fragments.append(read_fragment_file(directory / f"fragment-{i}.npf"))
        indexes.append(read_index_file(directory / f"index-{i}.npd"))
    return manifest, fragments, indexes


def _load_runtimes(directory: Path) -> tuple[dict, list[FragmentRuntime]]:
    manifest, fragments, indexes = _load_built(directory)
    runtimes = [
        FragmentRuntime(fragment, index)
        for fragment, index in zip(fragments, indexes)
    ]
    return manifest, runtimes


def _cmd_query(args: argparse.Namespace) -> int:
    manifest, runtimes = _load_runtimes(Path(args.dir))
    if args.expr is not None:
        query = parse_query(args.expr)
    else:
        if args.radius is None:
            print("error: --keywords queries need --radius", file=sys.stderr)
            return 2
        keywords = [kw.strip() for kw in args.keywords.split(",") if kw.strip()]
        if args.location is not None:
            query = rkq(args.location, keywords, args.radius)
        else:
            query = sgkq(keywords, args.radius)
    if query.max_radius > manifest["max_radius"]:
        print(
            f"error: radius {query.max_radius} exceeds the built maxR "
            f"{manifest['max_radius']:.2f}",
            file=sys.stderr,
        )
        return 2

    merged: set[int] = set()
    slowest = 0.0
    for runtime in runtimes:
        result = execute_fragment_task(runtime, query)
        merged |= set(result.local_result)
        slowest = max(slowest, result.wall_seconds)
    print(f"{query.label}: {len(merged)} results (slowest task {slowest * 1000:.1f}ms)")
    for node in sorted(merged)[:20]:
        print(f"  node {node}")
    if len(merged) > 20:
        print(f"  ... and {len(merged) - 20} more")
    return 0


def _reconstruct_partition(network, fragments):
    """The build-time partition, recovered from the fragments' members."""
    from repro.partition.base import Partition

    assignment = [0] * network.num_nodes
    for fragment in fragments:
        for node in fragment.members:
            assignment[node] = fragment.fragment_id
    return Partition.from_assignment(assignment, num_fragments=len(fragments))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import DisksServer, PipelinedCluster, ServeConfig

    manifest, fragments, indexes = _load_built(Path(args.dir))
    if args.sub and not args.live:
        print("error: --sub requires --live (subscriptions follow epoch swaps)",
              file=sys.stderr)
        return 2
    guard = None
    if args.replicas > 1:
        from repro.ha import FrontendGuard, HACluster

        cluster = HACluster.start(
            fragments,
            indexes,
            num_machines=args.machines,
            replication_factor=args.replicas,
            routing=args.routing,
            use_shm=args.shm,
        )
        guard = FrontendGuard()
    else:
        cluster = PipelinedCluster.start(
            fragments,
            indexes,
            num_machines=args.machines,
            use_shm=args.shm,
            pipe_wire=args.wire,
        )
    updater = None
    sub_engine = None
    if args.live:
        from repro.live import EpochManager, UpdateLog

        dataset = load_dataset(manifest["dataset"])
        log_path = Path(args.log) if args.log else Path(args.dir) / "updates.jsonl"
        updater = EpochManager(
            network=dataset.network,
            partition=_reconstruct_partition(dataset.network, fragments),
            fragments=fragments,
            indexes=indexes,
            log=UpdateLog(log_path),
        )
        updater.bind_cluster(cluster)
        if args.sub:
            from repro.sub import SubscriptionEngine

            sub_engine = SubscriptionEngine(updater)
    server = DisksServer(
        cluster,
        config=ServeConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            query_timeout_seconds=args.timeout,
            max_radius=manifest.get("max_radius"),
            trace_sample_rate=args.trace,
            tail_sampling=args.tail,
            slow_query_ms=args.slow_ms,
            slow_ring_size=args.slow_ring,
            trace_log=args.trace_log,
            slo=args.slo,
            slo_availability_target=args.slo_availability,
            slo_latency_ms=args.slow_ms,
            slo_latency_target=args.slo_latency_target,
            cache=args.cache,
            cache_max_entries=args.cache_entries,
            cache_max_bytes=args.cache_bytes,
            cache_subsumption=args.cache_subsumption,
            allow_chaos=args.chaos,
        ),
        updater=updater,
        sub_engine=sub_engine,
        guard=guard,
    )

    async def _run() -> None:
        await server.start()
        print(
            f"serving {manifest['fragments']} fragments of {manifest['dataset']} "
            f"on {cluster.num_machines} workers at {server.host}:{server.port} "
            f"(maxR={manifest['max_radius']:.2f}, max in-flight {args.max_inflight})"
        )
        if args.replicas > 1:
            print(
                f"HA: replication factor {args.replicas}, {args.routing} routing "
                f"— chaos ops {'enabled' if args.chaos else 'disabled'}; "
                'cluster health in {"op": "stats"} under "ha"'
            )
        print(
            'protocol: one JSON object per line, e.g. '
            '{"id": 1, "q": "NEAR(kw0001, 5) AND NEAR(kw0002, 5)"} '
            '— admin ops: {"op": "stats"}, {"op": "info"}, {"op": "ping"}; '
            "binary clients open with the 6-byte DSKW preamble on the same port"
        )
        if updater is not None:
            print(
                'live updates: {"op": "update", "ops": [{"op": "add_keyword", '
                '"node": 7, "keyword": "cafe"}, ...]} — current epoch via '
                '{"op": "epoch"}'
            )
        if sub_engine is not None:
            print(
                'standing queries: {"op": "subscribe", "q": "NEAR(cafe, 5)"} '
                "— result diffs are pushed as {\"push\": \"notify\", ...} frames "
                f"(try `python -m repro subscriptions --port {server.port}`)"
            )
        if args.tail:
            print(
                f"tracing: tail-based retention — every query spanned, "
                f"slow/errored/rerouted/stale-reject/epoch-adjacent traces "
                f"kept (slow >= {args.slow_ms:g}ms or dynamic p99) — inspect "
                f"with `python -m repro trace --port {server.port}`"
            )
        elif args.trace > 0.0:
            print(
                f"tracing: sampling {args.trace:.1%} of queries "
                f"(slow >= {args.slow_ms:g}ms always ringed) — inspect with "
                f"`python -m repro trace --port {server.port}`"
            )
        if args.slo:
            print(
                f"slo: availability {args.slo_availability:.3%}, "
                f"{args.slo_latency_target:.0%} of queries under "
                f"{args.slow_ms:g}ms — burn rates in stats/metrics, live view "
                f"via `python -m repro top --port {server.port}`"
            )
        if args.cache:
            print(
                f"result cache: on ({args.cache_entries} entries / "
                f"{args.cache_bytes} bytes, subsumption "
                f"{'on' if args.cache_subsumption else 'off'}) — counters in "
                '{"op": "stats"} under "result_cache"'
            )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        cluster.shutdown()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import threading

    from repro.serve import ServeClient, generate_expressions, run_loadgen

    kill_workers: list[tuple[int, float]] = []
    for spec in args.kill_worker:
        machine, _, at = spec.partition("@")
        try:
            kill_workers.append((int(machine), float(at)))
        except ValueError:
            print(
                f"error: --kill-worker expects N@T (machine id @ seconds), "
                f"got {spec!r}",
                file=sys.stderr,
            )
            return 2

    with ServeClient(args.host, args.port) as probe:
        info = probe.info()
    max_radius = info.get("max_radius")
    if max_radius is None:
        print("error: the server reports no maxR; cannot scale radii", file=sys.stderr)
        return 2

    dataset = load_dataset(args.dataset)

    # Standing subscriptions ride a dedicated connection; their pushed
    # notifications are drained and summarised after the run.
    sub_client = None
    sub_ids: list[str] = []
    if args.subs > 0:
        from repro.workloads import SubGenConfig, SubscriptionGenerator

        specs = SubscriptionGenerator(
            dataset.network,
            SubGenConfig(
                seed=args.seed,
                num_keywords=args.keywords,
                radius=max_radius * args.radius_fraction,
                rkq_fraction=args.rkq_fraction,
            ),
        ).specs(args.subs)
        sub_client = ServeClient(args.host, args.port)
        for i, spec in enumerate(specs):
            reply = sub_client.request(spec.to_request(request_id=f"sub{i}"))
            if not reply.get("ok"):
                print(
                    f"error: subscribe failed ({reply.get('error')}): "
                    f"{reply.get('detail', '')}",
                    file=sys.stderr,
                )
                sub_client.close()
                return 1
            sub_ids.append(reply["sub"])
        print(f"registered {len(sub_ids)} standing subscriptions")

    # Live updates stream from their own connection, concurrently with
    # the query load.
    update_thread = None
    update_outcome: dict = {"applied": 0, "failed": 0}
    if args.update_ops > 0:
        from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

        generator = UpdateStreamGenerator(
            dataset.network, UpdateGenConfig(seed=args.seed)
        )
        batches = []
        remaining = args.update_ops
        while remaining > 0:
            size = min(args.update_batch, remaining)
            batches.append(generator.ops(size))
            remaining -= size

        def _apply_updates() -> None:
            try:
                with ServeClient(args.host, args.port) as update_client:
                    for i, batch in enumerate(batches):
                        reply = update_client.update(batch, request_id=f"u{i}")
                        if reply.get("ok"):
                            update_outcome["applied"] += 1
                        else:
                            update_outcome["failed"] += 1
                            update_outcome.setdefault("error", reply.get("error"))
            except DisksError as error:
                update_outcome["failed"] += len(batches) - (
                    update_outcome["applied"] + update_outcome["failed"]
                )
                update_outcome.setdefault("error", str(error))

        update_thread = threading.Thread(target=_apply_updates, name="loadgen-updates")

    expressions = generate_expressions(
        dataset.network,
        count=args.queries,
        radius=max_radius * args.radius_fraction,
        num_keywords=args.keywords,
        rkq_fraction=args.rkq_fraction,
        seed=args.seed,
        zipf=args.zipf,
    )
    wire_note = args.wire if args.batch == 1 else f"{args.wire}, batch {args.batch}"
    print(
        f"replaying {len(expressions)} queries against {args.host}:{args.port} "
        f"from {args.clients} closed-loop clients ({wire_note}) ..."
    )
    for machine, at in kill_workers:
        print(f"fault injection: will kill worker {machine} at t+{at:g}s")
    if update_thread is not None:
        update_thread.start()
    report = run_loadgen(
        args.host,
        args.port,
        expressions,
        num_clients=args.clients,
        protocol=args.wire,
        batch=args.batch,
        kill_workers=kill_workers or None,
    )
    if update_thread is not None:
        update_thread.join()
        line = (
            f"updates: {update_outcome['applied']} batches applied, "
            f"{update_outcome['failed']} failed"
        )
        if update_outcome.get("error"):
            line += f" (first error: {update_outcome['error']})"
        print(line)
    print(
        f"done in {report.wall_seconds:.2f}s: {report.ok} ok, {report.shed} shed, "
        f"{report.errors} errors — {report.throughput_qps:.0f} q/s, "
        f"p50 {report.p50_ms:.1f}ms, p95 {report.p95_ms:.1f}ms, p99 {report.p99_ms:.1f}ms"
    )
    if sub_client is not None:
        notify = resync = added = removed = rescored = 0
        for frame in sub_client.notifications(timeout_seconds=0.5):
            if frame.get("push") == "notify":
                notify += 1
                added += len(frame.get("added", ()))
                removed += len(frame.get("removed", ()))
                rescored += len(frame.get("rescored", ()))
            elif frame.get("push") == "resync":
                resync += 1
        print(
            f"subscriptions: {notify} notify frames "
            f"(+{added} −{removed} ~{rescored}), {resync} resyncs "
            f"across {len(sub_ids)} standing queries"
        )
        sub_client.close()
    with ServeClient(args.host, args.port) as client:
        stats = client.stats()
    histogram = stats["histograms"].get("latency_seconds", {})
    busy = stats.get("busy_seconds", {})
    print(
        f"server: {stats['counters'].get('completed', 0)} completed, "
        f"{stats['counters'].get('shed', 0)} shed, peak in-flight "
        f"{stats['gauges'].get('inflight', {}).get('peak', 0):.0f}, "
        f"server-side p95 {histogram.get('p95_ms', 0.0):.1f}ms"
    )
    if busy:
        total = sum(busy.values())
        shares = ", ".join(f"m{m}={s / total:.0%}" for m, s in sorted(busy.items()))
        print(f"worker busy-time shares: {shares}")
    for op, block in sorted(stats.get("slo", {}).items()):
        burn = block.get("burn", {})
        burn_note = ", ".join(
            f"{objective} burn " + "/".join(
                f"{window}={rate:.2f}" for window, rate in sorted(rates.items())
            )
            for objective, rates in sorted(burn.items())
            if rates
        )
        print(
            f"slo {op}: availability {block.get('availability', 1.0):.4%}, "
            f"latency attainment {block.get('latency_attainment', 1.0):.4%} "
            f"over {block.get('total', 0)} requests"
            + (f" ({burn_note})" if burn_note else "")
            + (f" — {block['alerts']} burn alerts" if block.get("alerts") else "")
        )
    retention = stats.get("tracing", {}).get("retention")
    if retention:
        kept = ", ".join(
            f"{category}={count}"
            for category, count in sorted(retention.get("retained", {}).items())
            if count
        )
        print(
            f"trace retention: kept {retention.get('kept', 0)}/"
            f"{retention.get('seen', 0)} traces"
            + (f" ({kept})" if kept else "")
        )
    _print_stage_table(args.host, args.port)
    return 0


def _cmd_subscriptions(args: argparse.Namespace) -> int:
    import time

    from repro.serve import ServeClient
    from repro.workloads import SubGenConfig, SubscriptionGenerator

    with ServeClient(args.host, args.port) as probe:
        info = probe.info()
    max_radius = info.get("max_radius")
    if max_radius is None:
        print("error: the server reports no maxR; cannot scale radii", file=sys.stderr)
        return 2

    dataset = load_dataset(args.dataset)
    specs = SubscriptionGenerator(
        dataset.network,
        SubGenConfig(
            seed=args.seed,
            num_keywords=args.keywords,
            radius=max_radius * args.radius_fraction,
            rkq_fraction=args.rkq_fraction,
            scored_fraction=args.scored_fraction,
        ),
    ).specs(args.count)

    with ServeClient(args.host, args.port) as client:
        for i, spec in enumerate(specs):
            reply = client.request(spec.to_request(request_id=f"sub{i}"))
            if not reply.get("ok"):
                print(
                    f"error: subscribe failed ({reply.get('error')}): "
                    f"{reply.get('detail', '')}",
                    file=sys.stderr,
                )
                return 1
            print(
                f"registered {reply['sub']} [{spec.kind}"
                + (", scored" if spec.scored else "")
                + f"] q={spec.expression!r} — {len(reply['nodes'])} initial results"
            )
        print("watching for notifications (Ctrl-C to stop) ...")
        deadline = None if args.watch is None else time.time() + args.watch
        try:
            while deadline is None or time.time() < deadline:
                for frame in client.notifications(timeout_seconds=0.5):
                    if frame.get("push") == "notify":
                        parts = []
                        if frame.get("added"):
                            parts.append("+" + ",".join(map(str, frame["added"])))
                        if frame.get("removed"):
                            parts.append("−" + ",".join(map(str, frame["removed"])))
                        if frame.get("rescored"):
                            parts.append("~" + ",".join(map(str, frame["rescored"])))
                        print(
                            f"{frame['sub']} @epoch {frame['epoch']}: "
                            + (" ".join(parts) or "(empty)")
                        )
                    elif frame.get("push") == "resync":
                        print(
                            f"{frame['sub']} @epoch {frame['epoch']}: RESYNC "
                            f"({frame.get('dropped', 0)} notices dropped) — "
                            f"{len(frame.get('nodes', ()))} results"
                        )
        except KeyboardInterrupt:
            print("\nstopping")
    return 0


def _print_stage_table(host: str, port: int) -> None:
    """Closing per-stage latency table, from the metrics exposition op.

    Stage histograms only fill when the server samples traces
    (``serve --trace``); with no stage data the table is skipped.
    """
    from repro.obs.prometheus import parse_prometheus_text
    from repro.serve import ServeClient

    with ServeClient(host, port) as client:
        samples = parse_prometheus_text(client.metrics_text())
    stages = [
        ("queue", "repro_stage_queue_seconds"),
        ("eval", "repro_stage_eval_seconds"),
        ("union", "repro_stage_union_seconds"),
        ("serialize", "repro_stage_serialize_seconds"),
    ]
    rows = []
    for label, metric in stages:
        count = samples.get((f"{metric}_count", ()))
        if not count:
            continue
        quantile = lambda q: samples.get((metric, (("quantile", q),)), 0.0) * 1000.0
        rows.append((label, int(count), quantile("0.5"), quantile("0.95"), quantile("0.99")))
    if not rows:
        return
    print("per-stage latency (sampled traces):")
    print(f"  {'stage':<10} {'spans':>7} {'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9}")
    for label, count, p50, p95, p99 in rows:
        print(f"  {label:<10} {count:>7} {p50:>9.3f} {p95:>9.3f} {p99:>9.3f}")


def _render_top(
    stats: dict,
    trace_reply: dict | None,
    *,
    endpoint: str,
    qps: float | None = None,
    top_n: int = 5,
) -> str:
    """One ``repro top`` frame as a string.

    Pure function of the ``stats``/``trace`` payloads so tests can feed
    canned snapshots; ``qps`` is the caller-computed completion rate
    between frames (None on the first frame).
    """
    counters = stats.get("counters", {})
    gauges = stats.get("gauges", {})
    histogram = stats.get("histograms", {}).get("latency_seconds", {})
    tracing = stats.get("tracing", {})
    lines = []

    header = f"repro top — {endpoint}  tracing={tracing.get('mode', 'head')}"
    epoch = stats.get("live", {}).get("epoch")
    if epoch is not None:
        header += f"  epoch={epoch}"
    lines.append(header)

    inflight = gauges.get("inflight", {})
    lines.append(
        f"queries    {counters.get('completed', 0)} completed"
        + (f" ({qps:.1f} q/s)" if qps is not None else "")
        + f", {counters.get('shed', 0)} shed, "
        f"{counters.get('timeouts', 0)} timeouts, in-flight "
        f"{inflight.get('current', 0):.0f} (peak {inflight.get('peak', 0):.0f})"
    )
    if histogram:
        lines.append(
            f"latency    p50 {histogram.get('p50_ms', 0.0):.1f}ms  "
            f"p95 {histogram.get('p95_ms', 0.0):.1f}ms  "
            f"p99 {histogram.get('p99_ms', 0.0):.1f}ms  "
            f"max {histogram.get('max_ms', 0.0):.1f}ms"
        )

    for op, block in sorted(stats.get("slo", {}).items()):
        burn = block.get("burn", {})

        def _rates(objective: str) -> str:
            rates = burn.get(objective, {})
            return " ".join(f"{w}={rates[w]:.2f}" for w in sorted(rates))

        lines.append(
            f"slo {op:<6} avail {block.get('availability', 1.0):.4%} "
            f"[{_rates('availability')}]  "
            f"latency {block.get('latency_attainment', 1.0):.4%} "
            f"[{_rates('latency')}]"
            + (f"  ALERTS {block['alerts']}" if block.get("alerts") else "")
        )

    cache = stats.get("result_cache")
    if cache:
        probes = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / probes if probes else 0.0
        lines.append(
            f"cache      {rate:.0%} hit ({cache.get('hits', 0)}/{probes}), "
            f"{cache.get('subsumption_hits', 0)} subsumption, "
            f"{cache.get('entries', 0)} entries, "
            f"{cache.get('stale_rejects', 0)} stale rejects"
        )

    retention = tracing.get("retention")
    if retention:
        kept = ", ".join(
            f"{category}={count}"
            for category, count in sorted(retention.get("retained", {}).items())
            if count
        )
        threshold = retention.get("slow_threshold_ms")
        lines.append(
            f"retention  {retention.get('kept', 0)}/{retention.get('seen', 0)} kept"
            + (f", p99 gate {threshold:.1f}ms" if threshold else "")
            + (f" ({kept})" if kept else "")
        )

    ha = stats.get("ha")
    if ha and "machines" in ha:
        busy = ha.get("busy_seconds", {})
        outstanding = ha.get("outstanding_tasks", {})
        total_busy = sum(busy.values()) or 1.0
        machines = " ".join(
            f"m{machine}:{busy.get(machine, 0.0) / total_busy:.0%}"
            f"/{outstanding.get(machine, 0)}"
            for machine in sorted(busy, key=lambda m: int(m))
        )
        lines.append(
            f"ha         {ha.get('machines_alive', 0)}/{ha.get('machines', 0)} alive "
            f"(x{ha.get('replication_factor', 1)}), "
            f"{ha.get('reroutes', 0)} reroutes, {ha.get('restarts', 0)} restarts"
            + (f" — busy/outstanding {machines}" if machines else "")
        )

    hotspots = stats.get("hotspots")
    if hotspots:
        for dim in ("keyword", "fragment"):
            entries = hotspots.get("by_seconds", {}).get(dim, [])[:top_n]
            if entries:
                lines.append(
                    f"hot {dim + 's':<6} " + "  ".join(
                        f"{entry['key']}={entry['seconds'] * 1000:.1f}ms"
                        for entry in entries
                    )
                )

    slow = (trace_reply or {}).get("slow", [])
    if slow:
        lines.append("recent slow:")
        for entry in slow[-top_n:]:
            traced = entry.get("trace_id")
            lines.append(
                f"  {entry.get('latency_ms', 0.0):8.1f}ms  "
                f"q={entry.get('query', '?')!r}"
                + (f"  attempt={entry['attempt']}" if entry.get("attempt") else "")
                + (f"  trace={traced[:16]}" if traced else "")
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.serve import BinaryServeClient, ServeClient

    client_class = BinaryServeClient if args.wire == "binary" else ServeClient
    endpoint = f"{args.host}:{args.port} ({args.wire})"
    frames = 0
    previous: tuple[int, float] | None = None
    try:
        with client_class(args.host, args.port) as client:
            while args.iterations is None or frames < args.iterations:
                if frames:
                    time.sleep(args.interval)
                stats = client.stats()
                trace_reply = client.request({"op": "trace", "n": args.top_n})
                now = time.monotonic()
                completed = stats.get("counters", {}).get("completed", 0)
                qps = None
                if previous is not None and now > previous[1]:
                    qps = (completed - previous[0]) / (now - previous[1])
                previous = (completed, now)
                frame = _render_top(
                    stats,
                    trace_reply if trace_reply.get("ok") else None,
                    endpoint=endpoint,
                    qps=qps,
                    top_n=args.top_n,
                )
                if args.clear:
                    print("\x1b[2J\x1b[H" + frame, flush=True)
                else:
                    print(frame, flush=True)
                frames += 1
    except KeyboardInterrupt:
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import write_chrome_trace
    from repro.obs.trace import format_trace
    from repro.serve import ServeClient

    with ServeClient(args.host, args.port) as client:
        reply = client.trace(trace_id=args.trace_id, n=args.n)

    if args.trace_id is not None:
        record = reply["trace"]
        _print_trace_record(record)
        if args.chrome:
            count = write_chrome_trace(Path(args.chrome), [record])
            print(f"wrote {count} span events to {args.chrome}")
        return 0

    sampling = reply.get("sampling", {})
    print(
        f"sampling: rate {sampling.get('rate', 0.0):.1%}, "
        f"{sampling.get('sampled', 0)}/{sampling.get('seen', 0)} queries sampled, "
        f"{sampling.get('stored', 0)} traces stored"
    )
    traces = reply.get("traces", [])
    events = reply.get("events", [])
    if not traces and not events:
        print("no traces or events recorded (is the server sampling? serve --trace)")
    # Interleave traces with obs events (epoch swaps, …) by their shared
    # monotonic clock so swaps show up where they landed between queries.
    timeline: list[tuple[float, str]] = []
    for record in traces:
        spans = record.get("spans", [])
        at = min((s.get("start", 0.0) for s in spans), default=0.0)
        header = (
            f"trace {record.get('trace_id', '?')[:16]}  "
            f"q={record.get('query', '?')!r}  "
            f"{record.get('latency_ms', 0.0):.1f}ms"
            + ("  SLOW" if record.get("slow") else "")
            + ("  DEGRADED" if record.get("degraded") else "")
        )
        timeline.append((at, header + "\n" + format_trace(spans)))
    for event in events:
        fields = {
            k: v
            for k, v in event.items()
            if k not in ("kind", "monotonic", "wall_time")
        }
        text = f"event {event.get('kind', '?')}  " + " ".join(
            f"{key}={value}" for key, value in sorted(fields.items())
        )
        timeline.append((event.get("monotonic", 0.0), text))
    for _, text in sorted(timeline, key=lambda entry: entry[0]):
        print(text)
    slow = reply.get("slow", [])
    if slow:
        print("slow-query ring (newest last):")
        for entry in slow:
            traced = entry.get("trace_id")
            print(
                f"  {entry.get('latency_ms', 0.0):9.1f}ms  "
                f"q={entry.get('query', '?')!r}"
                + (f"  trace={traced[:16]}" if traced else "  (unsampled)")
            )
    if args.chrome:
        count = write_chrome_trace(Path(args.chrome), traces)
        print(f"wrote {count} span events to {args.chrome}")
    return 0


def _print_trace_record(record: dict) -> None:
    from repro.obs.trace import format_trace

    print(
        f"trace {record.get('trace_id', '?')}  q={record.get('query', '?')!r}  "
        f"{record.get('latency_ms', 0.0):.1f}ms"
        + ("  SLOW" if record.get("slow") else "")
    )
    print(format_trace(record.get("spans", [])))


def _cmd_updates(args: argparse.Namespace) -> int:
    from repro.live import EpochManager, UpdateLog, write_ops

    directory = Path(args.dir)
    manifest, fragments, indexes = _load_built(directory)
    log_path = Path(args.log) if args.log else directory / "updates.jsonl"
    dataset = load_dataset(manifest["dataset"])

    if args.generate is not None:
        from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

        if log_path.exists():
            print(
                f"error: {log_path} already exists; generating into a non-empty "
                "log would fork its history",
                file=sys.stderr,
            )
            return 2
        if args.generate < 1 or args.batch_size < 1:
            print("error: --generate and --batch-size must be positive", file=sys.stderr)
            return 2
        generator = UpdateStreamGenerator(
            dataset.network, UpdateGenConfig(seed=args.seed)
        )
        batches = []
        remaining = args.generate
        while remaining > 0:
            size = min(args.batch_size, remaining)
            batches.append(generator.ops(size))
            remaining -= size
        write_ops(log_path, batches)
        kinds: dict[str, int] = {}
        for batch in batches:
            for op in batch:
                kinds[op.kind] = kinds.get(op.kind, 0) + 1
        mix = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        print(
            f"wrote {args.generate} ops in {len(batches)} committed batches "
            f"to {log_path} ({mix})"
        )
        return 0

    # --replay
    if not log_path.exists():
        print(f"error: {log_path} does not exist", file=sys.stderr)
        return 2
    partition = _reconstruct_partition(dataset.network, fragments)
    manager, pending = EpochManager.recover(
        network=dataset.network,
        partition=partition,
        fragments=fragments,
        indexes=indexes,
        log=UpdateLog(log_path),
    )
    for swap in manager.history:
        mix = ", ".join(f"{k}={v}" for k, v in sorted(swap.ops_by_kind.items()))
        print(
            f"epoch {swap.epoch}: {swap.num_ops} ops ({mix}) -> "
            f"{len(swap.changed_fragments)} fragments changed, "
            f"applied in {swap.apply_seconds * 1000:.1f}ms "
            f"(swap {swap.swap_seconds * 1000:.2f}ms)"
        )
    print(
        f"replayed {len(manager.history)} committed batches from {log_path}; "
        f"now at epoch {manager.epoch}"
        + (f" ({len(pending)} uncommitted ops pending)" if pending else "")
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Self-contained failover drill: build, replicate, kill, verify."""
    import threading
    import time

    from repro.ha import FrontendGuard, HACluster
    from repro.serve import (
        ServeClient,
        ServeConfig,
        generate_expressions,
        serve_in_thread,
    )

    if args.replicas < 2:
        print("error: a failover drill needs --replicas >= 2", file=sys.stderr)
        return 2
    if not 0 <= args.kill < args.machines:
        print(
            f"error: --kill {args.kill} is not a machine id in [0, {args.machines})",
            file=sys.stderr,
        )
        return 2

    dataset = load_dataset(args.dataset)
    engine = DisksEngine.build(
        dataset.network,
        EngineConfig(
            num_fragments=args.machines * 2,
            partitioner=MultilevelPartitioner(seed=args.seed),
        ),
    )
    expressions = generate_expressions(
        dataset.network,
        count=args.queries,
        radius=engine.max_radius * 0.5,
        seed=args.seed,
    )
    expected = [frozenset(engine.results(parse_query(expr))) for expr in expressions]
    print(
        f"drill: {args.queries} queries on {args.dataset}, "
        f"{args.machines} workers x{args.replicas} replication, "
        f"killing worker {args.kill} at t+{args.kill_at:g}s"
    )

    cluster = HACluster.start(
        engine.fragments,
        engine.indexes,
        num_machines=args.machines,
        replication_factor=args.replicas,
    )
    mismatches: list[str] = []
    errors: list[str] = []
    try:
        with serve_in_thread(
            cluster,
            config=ServeConfig(port=0, allow_chaos=True),
            guard=FrontendGuard(),
        ) as server:
            work = list(enumerate(expressions))
            position = threading.Lock()

            def _drive() -> None:
                with ServeClient(server.host, server.port) as client:
                    while True:
                        with position:
                            if not work:
                                return
                            i, expr = work.pop()
                        reply = client.query(expr, request_id=i)
                        if not reply.get("ok"):
                            errors.append(f"q{i}: {reply.get('error')}")
                        elif frozenset(reply["nodes"]) != expected[i]:
                            mismatches.append(f"q{i}: {expr}")

            def _kill() -> None:
                time.sleep(args.kill_at)
                with ServeClient(server.host, server.port) as client:
                    reply = client.chaos_kill(args.kill)
                print(
                    f"killed worker {args.kill} "
                    f"(was {'alive' if reply.get('was_alive') else 'already dead'})"
                )

            killer = threading.Thread(target=_kill, name="chaos-kill")
            drivers = [
                threading.Thread(target=_drive, name=f"chaos-client-{c}")
                for c in range(args.clients)
            ]
            started = time.perf_counter()
            killer.start()
            for thread in drivers:
                thread.start()
            for thread in drivers:
                thread.join()
            killer.join()
            wall = time.perf_counter() - started
            stats = cluster.ha_stats()
    finally:
        cluster.shutdown()

    print(
        f"done in {wall:.2f}s: {args.queries - len(errors) - len(mismatches)} exact, "
        f"{len(mismatches)} wrong, {len(errors)} failed — "
        f"{stats['failovers']} failovers, {stats['reroutes']} tasks rerouted, "
        f"{stats['restarts']} queries restarted, "
        f"min replicas alive {stats['replicas_alive_min']}"
    )
    for line in mismatches[:5] + errors[:5]:
        print(f"  {line}", file=sys.stderr)
    if mismatches or errors:
        print("FAIL: answers degraded during failover", file=sys.stderr)
        return 1
    print("PASS: every answer stayed exact across the kill")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    names = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E"}
    engine = DisksEngine.build(toy_figure1(), EngineConfig(num_fragments=2, lambda_factor=10.0))
    ex1 = engine.results(sgkq(["museum", "school"], 3.0))
    ex2 = engine.results(rkq(1, ["museum"], 4.0))
    print("Fig. 1 network, 2 fragments")
    print(f"  SGKQ({{museum, school}}, 3) = {{{', '.join(sorted(names[n] for n in ex1))}}}")
    print(f"  RKQ(B, {{museum}}, 4)       = {{{', '.join(sorted(names[n] for n in ex2))}}}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "build": _cmd_build,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "subscriptions": _cmd_subscriptions,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "updates": _cmd_updates,
    "demo": _cmd_demo,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except DisksError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
