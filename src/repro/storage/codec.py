"""Checksummed binary record codec.

Every on-disk structure in this library is a sequence of *records*:

    ``[u32 length][u32 crc32][payload bytes]``

The CRC covers the payload, so truncation and bit rot are detected at
read time (:class:`repro.exceptions.ChecksumError`) instead of
surfacing as garbage distances deep inside a query.

Payload composition uses :mod:`struct`; helpers are provided for the
primitive shapes the index files need (varint-free on purpose — fixed
width keeps the format seekable and the size accounting exact).
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator

from repro.exceptions import ChecksumError, CodecError

__all__ = [
    "encode_record",
    "decode_record",
    "RecordWriter",
    "RecordReader",
    "pack_string",
    "unpack_string",
]

_HEADER = struct.Struct("<II")  # length, crc32
_MAX_RECORD = 1 << 30


def encode_record(payload: bytes) -> bytes:
    """Frame ``payload`` as one record."""
    if len(payload) > _MAX_RECORD:
        raise CodecError(f"record payload of {len(payload)} bytes exceeds the 1 GiB cap")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(buffer: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode one record at ``offset``; returns ``(payload, next_offset)``."""
    if offset + _HEADER.size > len(buffer):
        raise CodecError("truncated record header")
    length, crc = _HEADER.unpack_from(buffer, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(buffer):
        raise CodecError("truncated record payload")
    payload = buffer[start:end]
    if zlib.crc32(payload) != crc:
        raise ChecksumError(f"record at offset {offset} failed its CRC check")
    return payload, end


class RecordWriter:
    """Writes framed records to a binary stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._count = 0

    @property
    def records_written(self) -> int:
        """Number of records written so far."""
        return self._count

    def write(self, payload: bytes) -> None:
        """Append one record."""
        self._stream.write(encode_record(payload))
        self._count += 1


class RecordReader:
    """Iterates framed records from a binary stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def __iter__(self) -> Iterator[bytes]:
        return self

    def __next__(self) -> bytes:
        header = self._stream.read(_HEADER.size)
        if not header:
            raise StopIteration
        if len(header) < _HEADER.size:
            raise CodecError("truncated record header")
        length, crc = _HEADER.unpack(header)
        payload = self._stream.read(length)
        if len(payload) < length:
            raise CodecError("truncated record payload")
        if zlib.crc32(payload) != crc:
            raise ChecksumError("record failed its CRC check")
        return payload


def pack_string(text: str) -> bytes:
    """Length-prefixed UTF-8 string."""
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise CodecError("strings longer than 65535 bytes are not supported")
    return struct.pack("<H", len(data)) + data


def unpack_string(buffer: bytes, offset: int) -> tuple[str, int]:
    """Decode a :func:`pack_string` value; returns ``(text, next_offset)``."""
    if offset + 2 > len(buffer):
        raise CodecError("truncated string length")
    (length,) = struct.unpack_from("<H", buffer, offset)
    start = offset + 2
    end = start + length
    if end > len(buffer):
        raise CodecError("truncated string payload")
    return buffer[start:end].decode("utf-8"), end
