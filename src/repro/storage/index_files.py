"""The on-disk ``IND(P)`` and fragment file formats.

A worker machine's durable state is two files:

* the **index file** — header record, one record for ``SC(P)``, one
  record per DL keyword entry, one record per DL node entry;
* the **fragment file** — header, members, local adjacency, portal set
  and keyword postings.

Both use the checksummed record framing of :mod:`repro.storage.codec`.
``read_index_file`` / ``read_fragment_file`` reconstruct objects that
compare equal (field-wise) to the originals; EXP 1's storage-cost
numbers are the byte sizes of these files.
"""

from __future__ import annotations

import math
import struct
import zlib
from pathlib import Path

from repro.core.fragment import Fragment
from repro.core.npd import DLNodePolicy, NPDIndex, PortalDistance
from repro.exceptions import StorageError
from repro.storage.codec import RecordReader, RecordWriter, pack_string, unpack_string
from repro.text.inverted import FragmentKeywordIndex

__all__ = [
    "write_index_file",
    "read_index_file",
    "write_fragment_file",
    "read_fragment_file",
    "index_file_size",
]

_INDEX_MAGIC = b"NPDIDX01"
_INDEX_MAGIC_COMPRESSED = b"NPDIDXZ1"
_FRAGMENT_MAGIC = b"NPDFRG01"
_PAIR = struct.Struct("<qd")
_SHORTCUT = struct.Struct("<qqd")

_POLICY_CODES = {
    DLNodePolicy.NONE: 0,
    DLNodePolicy.OBJECTS: 1,
    DLNodePolicy.ALL: 2,
}
_POLICY_FROM_CODE = {code: policy for policy, code in _POLICY_CODES.items()}


class _CompressingWriter(RecordWriter):
    """Record writer that deflates every payload after the header record.

    The header stays raw so readers can detect the variant from the
    first record's magic before touching zlib.
    """

    def write(self, payload: bytes) -> None:
        if self.records_written == 0:
            super().write(payload)
        else:
            super().write(zlib.compress(payload, level=6))


def _pack_pairs(pairs: tuple[PortalDistance, ...]) -> bytes:
    chunks = [struct.pack("<I", len(pairs))]
    chunks.extend(_PAIR.pack(pd.portal, pd.distance) for pd in pairs)
    return b"".join(chunks)


def _unpack_pairs(buffer: bytes, offset: int) -> tuple[list[tuple[int, float]], int]:
    (count,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    pairs = []
    for _ in range(count):
        portal, dist = _PAIR.unpack_from(buffer, offset)
        offset += _PAIR.size
        pairs.append((portal, dist))
    return pairs, offset


def write_index_file(index: NPDIndex, path: str | Path, *, compress: bool = False) -> int:
    """Write ``IND(P)`` to ``path``; returns the file size in bytes.

    With ``compress`` the DL/SC records are zlib-deflated (the sorted
    integer-heavy payloads compress well — see the storage tests for the
    measured ratio); :func:`read_index_file` detects the variant from
    the magic.
    """
    path = Path(path)
    with path.open("wb") as stream:
        writer = _CompressingWriter(stream) if compress else RecordWriter(stream)
        magic = _INDEX_MAGIC_COMPRESSED if compress else _INDEX_MAGIC
        header = magic + struct.pack(
            "<qdBBII",
            index.fragment_id,
            index.max_radius,
            _POLICY_CODES[index.node_policy],
            1 if index.directed else 0,
            len(index.keyword_entries),
            len(index.node_entries),
        )
        writer.write(header)

        sc_payload = [struct.pack("<I", len(index.shortcuts))]
        for (u, v), w in sorted(index.shortcuts.items()):
            sc_payload.append(_SHORTCUT.pack(u, v, w))
        writer.write(b"".join(sc_payload))

        for keyword in sorted(index.keyword_entries):
            writer.write(
                b"K" + pack_string(keyword) + _pack_pairs(index.keyword_entries[keyword])
            )
        for node in sorted(index.node_entries):
            writer.write(
                b"N" + struct.pack("<q", node) + _pack_pairs(index.node_entries[node])
            )
    return path.stat().st_size


def read_index_file(path: str | Path) -> NPDIndex:
    """Load an index file written by :func:`write_index_file`."""
    path = Path(path)
    with path.open("rb") as stream:
        reader = RecordReader(stream)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty") from None
        if header.startswith(_INDEX_MAGIC_COMPRESSED):
            compressed = True
        elif header.startswith(_INDEX_MAGIC):
            compressed = False
        else:
            raise StorageError(f"{path} is not an NPD index file")
        fragment_id, max_radius, policy_code, directed, kw_count, node_count = (
            struct.unpack_from("<qdBBII", header, len(_INDEX_MAGIC))
        )
        index = NPDIndex(
            fragment_id=fragment_id,
            max_radius=max_radius,
            node_policy=_POLICY_FROM_CODE[policy_code],
            directed=bool(directed),
        )

        def inflate(payload: bytes) -> bytes:
            if not compressed:
                return payload
            try:
                return zlib.decompress(payload)
            except zlib.error as exc:
                raise StorageError(f"{path}: corrupt compressed record") from exc

        try:
            sc_payload = inflate(next(reader))
        except StopIteration:
            raise StorageError(f"{path} is missing its SC record") from None
        (sc_count,) = struct.unpack_from("<I", sc_payload, 0)
        offset = 4
        for _ in range(sc_count):
            u, v, w = _SHORTCUT.unpack_from(sc_payload, offset)
            offset += _SHORTCUT.size
            index.shortcuts[(u, v)] = w

        keyword_lists: dict[str, list[tuple[int, float]]] = {}
        node_lists: dict[int, list[tuple[int, float]]] = {}
        for raw in reader:
            payload = inflate(raw)
            tag = payload[:1]
            if tag == b"K":
                keyword, offset = unpack_string(payload, 1)
                pairs, _ = _unpack_pairs(payload, offset)
                keyword_lists[keyword] = pairs
            elif tag == b"N":
                (node,) = struct.unpack_from("<q", payload, 1)
                pairs, _ = _unpack_pairs(payload, 1 + 8)
                node_lists[node] = pairs
            else:
                raise StorageError(f"unknown DL record tag {tag!r} in {path}")
        if len(keyword_lists) != kw_count or len(node_lists) != node_count:
            raise StorageError(
                f"{path} header declares {kw_count}/{node_count} DL entries but "
                f"{len(keyword_lists)}/{len(node_lists)} were found"
            )
        index.seal(keyword_lists, node_lists)
    return index


def index_file_size(index: NPDIndex) -> int:
    """Exact byte size :func:`write_index_file` would produce, without I/O.

    Used by the EXP-1 storage-cost benchmark to report per-machine index
    sizes cheaply.
    """
    record_overhead = 8  # length + crc framing per record
    size = record_overhead + len(_INDEX_MAGIC) + struct.calcsize("<qdBBII")
    size += record_overhead + 4 + _SHORTCUT.size * len(index.shortcuts)
    for keyword, pairs in index.keyword_entries.items():
        size += record_overhead + 1 + 2 + len(keyword.encode("utf-8"))
        size += 4 + _PAIR.size * len(pairs)
    for _node, pairs in index.node_entries.items():
        size += record_overhead + 1 + 8 + 4 + _PAIR.size * len(pairs)
    return size


def write_fragment_file(fragment: Fragment, path: str | Path) -> int:
    """Write a fragment's worker-local state; returns the file size."""
    path = Path(path)
    with path.open("wb") as stream:
        writer = RecordWriter(stream)
        writer.write(
            _FRAGMENT_MAGIC
            + struct.pack(
                "<qBII",
                fragment.fragment_id,
                1 if fragment.directed else 0,
                fragment.num_members,
                fragment.num_portals,
            )
        )
        members = sorted(fragment.members)
        writer.write(b"".join(struct.pack("<q", m) for m in members))
        writer.write(b"".join(struct.pack("<q", p) for p in sorted(fragment.portals)))
        for node in members:
            edges = fragment.adjacency.get(node, ())
            payload = [struct.pack("<qI", node, len(edges))]
            payload.extend(_PAIR.pack(v, w) for v, w in edges)
            writer.write(b"".join(payload))
        postings = fragment.keyword_index.to_postings()
        for keyword in sorted(postings):
            nodes = postings[keyword]
            payload = [pack_string(keyword), struct.pack("<I", len(nodes))]
            payload.extend(struct.pack("<q", n) for n in nodes)
            writer.write(b"".join(payload))
    return path.stat().st_size


def read_fragment_file(path: str | Path) -> Fragment:
    """Load a fragment file written by :func:`write_fragment_file`."""
    path = Path(path)
    with path.open("rb") as stream:
        reader = RecordReader(stream)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty") from None
        if not header.startswith(_FRAGMENT_MAGIC):
            raise StorageError(f"{path} is not a fragment file")
        fragment_id, directed, member_count, portal_count = struct.unpack_from(
            "<qBII", header, len(_FRAGMENT_MAGIC)
        )

        member_payload = next(reader)
        members = frozenset(
            struct.unpack_from("<q", member_payload, 8 * i)[0] for i in range(member_count)
        )
        portal_payload = next(reader)
        portals = frozenset(
            struct.unpack_from("<q", portal_payload, 8 * i)[0] for i in range(portal_count)
        )

        adjacency: dict[int, tuple[tuple[int, float], ...]] = {}
        for _ in range(member_count):
            payload = next(reader)
            node, edge_count = struct.unpack_from("<qI", payload, 0)
            offset = 12
            edges = []
            for _ in range(edge_count):
                v, w = _PAIR.unpack_from(payload, offset)
                offset += _PAIR.size
                edges.append((v, w))
            adjacency[node] = tuple(edges)

        postings: dict[str, tuple[int, ...]] = {}
        for payload in reader:
            keyword, offset = unpack_string(payload, 0)
            (count,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            nodes = tuple(
                struct.unpack_from("<q", payload, offset + 8 * i)[0] for i in range(count)
            )
            postings[keyword] = nodes

        return Fragment(
            fragment_id=fragment_id,
            members=members,
            portals=portals,
            adjacency=adjacency,
            keyword_index=FragmentKeywordIndex.from_postings(postings),
            directed=bool(directed),
        )
