"""On-disk storage: binary record codec and per-fragment index files.

The paper stores one index file ``IND(P)`` per fragment, holding the SC
file and the DL file (EXP 1 measures their size on each machine).  This
subpackage implements that: a checksummed binary record codec
(:mod:`repro.storage.codec`) and the ``IND(P)`` / fragment file formats
(:mod:`repro.storage.index_files`), so a worker machine can be cold-
started from its two files alone.
"""

from repro.storage.codec import (
    RecordWriter,
    RecordReader,
    encode_record,
    decode_record,
)
from repro.storage.index_files import (
    write_index_file,
    read_index_file,
    write_fragment_file,
    read_fragment_file,
    index_file_size,
)

__all__ = [
    "RecordWriter",
    "RecordReader",
    "encode_record",
    "decode_record",
    "write_index_file",
    "read_index_file",
    "write_fragment_file",
    "read_fragment_file",
    "index_file_size",
]
