"""Workloads: the paper's query generator and synthetic dataset presets."""

from repro.workloads.querygen import QueryGenerator, QueryGenConfig
from repro.workloads.subgen import (
    SubGenConfig,
    SubscriptionGenerator,
    SubscriptionSpec,
)
from repro.workloads.updategen import UpdateGenConfig, UpdateStreamGenerator
from repro.workloads.driver import (
    TimedQuery,
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
)
from repro.workloads.datasets import (
    Dataset,
    DatasetConfig,
    build_dataset,
    load_dataset,
    toy_figure1,
    DATASET_PRESETS,
)

__all__ = [
    "QueryGenerator",
    "QueryGenConfig",
    "SubGenConfig",
    "SubscriptionGenerator",
    "SubscriptionSpec",
    "UpdateGenConfig",
    "UpdateStreamGenerator",
    "TimedQuery",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "Dataset",
    "DatasetConfig",
    "build_dataset",
    "load_dataset",
    "toy_figure1",
    "DATASET_PRESETS",
]
