"""Query-stream driver: open-loop load testing of a deployment.

The paper motivates distribution with *query throughput* under heavy
load (§1).  This driver makes that measurable: it synthesises a query
stream (mixed SGKQ/RKQ, Poisson arrivals) and replays it against a
:class:`~repro.core.engine.DisksEngine`, modelling an open-loop system
where the coordinator serves queries one at a time — each query's
latency is its queueing delay plus its distributed response time.

The result reports the latency distribution (p50/p95/p99), sustained
throughput, and whether the offered load saturated the deployment.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.engine import DisksEngine
from repro.core.queries import QClassQuery
from repro.exceptions import DisksError
from repro.workloads.querygen import QueryGenConfig, QueryGenerator

__all__ = ["WorkloadSpec", "TimedQuery", "WorkloadReport", "WorkloadDriver"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic query stream.

    ``arrival_rate_qps`` is the offered load (Poisson); ``rkq_fraction``
    of queries are RKQs, the rest SGKQs.  Keyword counts and radii are
    drawn uniformly from the given ranges (radii as fractions of the
    deployment's ``maxR``).
    """

    num_queries: int = 50
    arrival_rate_qps: float = 100.0
    rkq_fraction: float = 0.25
    min_keywords: int = 2
    max_keywords: int = 5
    min_radius_fraction: float = 0.25
    max_radius_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise DisksError("a workload needs at least one query")
        if self.arrival_rate_qps <= 0:
            raise DisksError("arrival rate must be positive")
        if not (0.0 <= self.rkq_fraction <= 1.0):
            raise DisksError("rkq_fraction must lie in [0, 1]")
        if self.min_keywords < 1 or self.max_keywords < self.min_keywords:
            raise DisksError("keyword-count range is invalid")
        if not (0.0 < self.min_radius_fraction <= self.max_radius_fraction <= 1.0):
            raise DisksError("radius-fraction range is invalid")


@dataclass(frozen=True)
class TimedQuery:
    """One query with its (modelled) arrival time."""

    arrival_seconds: float
    query: QClassQuery


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of one replay."""

    latencies_seconds: tuple[float, ...]
    throughput_qps: float
    offered_qps: float
    saturated: bool
    total_busy_seconds: float

    def percentile(self, fraction: float) -> float:
        """Latency percentile, e.g. ``percentile(0.95)``."""
        if not (0.0 <= fraction <= 1.0):
            raise DisksError("percentile fraction must lie in [0, 1]")
        ordered = sorted(self.latencies_seconds)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(math.ceil(fraction * len(ordered))) - 1)
        return ordered[max(0, index)]

    @property
    def p50_ms(self) -> float:
        """Median latency in milliseconds."""
        return self.percentile(0.50) * 1000

    @property
    def p95_ms(self) -> float:
        """95th-percentile latency in milliseconds."""
        return self.percentile(0.95) * 1000

    @property
    def p99_ms(self) -> float:
        """99th-percentile latency in milliseconds."""
        return self.percentile(0.99) * 1000


class WorkloadDriver:
    """Generates and replays query streams against a deployment."""

    def __init__(self, engine: DisksEngine, spec: WorkloadSpec | None = None) -> None:
        self._engine = engine
        self._spec = spec or WorkloadSpec()
        self._rng = random.Random(self._spec.seed)
        self._generator = QueryGenerator(
            engine.network, QueryGenConfig(seed=self._spec.seed)
        )

    def generate(self) -> list[TimedQuery]:
        """Synthesise the stream (Poisson arrivals, mixed query types)."""
        spec = self._spec
        max_radius = self._engine.max_radius
        clock = 0.0
        stream: list[TimedQuery] = []
        for _ in range(spec.num_queries):
            clock += self._rng.expovariate(spec.arrival_rate_qps)
            num_keywords = self._rng.randint(spec.min_keywords, spec.max_keywords)
            radius = max_radius * self._rng.uniform(
                spec.min_radius_fraction, spec.max_radius_fraction
            )
            if self._rng.random() < spec.rkq_fraction:
                query = self._generator.rkq(num_keywords, radius)
            else:
                query = self._generator.sgkq(num_keywords, radius)
            stream.append(TimedQuery(clock, query))
        return stream

    def replay(self, stream: list[TimedQuery] | None = None) -> WorkloadReport:
        """Replay the stream; latency = queueing delay + response time.

        The coordinator serves queries in arrival order, one at a time
        (each query already parallelises across the worker machines);
        response times are the engine's measured distributed response
        times, arrivals are modelled.
        """
        if stream is None:
            stream = self.generate()
        if not stream:
            raise DisksError("cannot replay an empty stream")
        finish = 0.0
        busy = 0.0
        latencies: list[float] = []
        for timed in stream:
            start = max(timed.arrival_seconds, finish)
            response = self._engine.execute(timed.query).response_seconds
            finish = start + response
            busy += response
            latencies.append(finish - timed.arrival_seconds)
        span = finish - stream[0].arrival_seconds
        throughput = len(stream) / span if span > 0 else math.inf
        offered = self._spec.arrival_rate_qps
        return WorkloadReport(
            latencies_seconds=tuple(latencies),
            throughput_qps=throughput,
            offered_qps=offered,
            saturated=throughput < offered * 0.95,
            total_busy_seconds=busy,
        )
