"""Query generation following the paper's §6 protocol.

    "We first select a circle range centered by a random node.  Then,
    within the range we choose the keywords according to their
    frequency.  Keywords with higher frequency have a larger chance to
    be chosen."

The generator picks a random center node, collects the keywords of the
objects inside a (Euclidean) circle around it — growing the circle until
enough *distinct* keywords are available — and samples without
replacement proportionally to global keyword frequency.  RKQ locations
are objects drawn from the same circle, and the EXP-7 operator-mix
queries reuse the SGKQ keyword selection with a chosen ∩/− split.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.dfunction import SetOp
from repro.core.queries import CoverageTerm, KeywordSource, QClassQuery, rkq, sgkq
from repro.exceptions import QueryError
from repro.graph.road_network import RoadNetwork
from repro.text.inverted import InvertedIndex

__all__ = ["QueryGenConfig", "QueryGenerator"]


@dataclass(frozen=True)
class QueryGenConfig:
    """Knobs of the query generator.

    ``initial_range`` is the starting circle radius in coordinate units;
    it doubles (up to ``max_range_doublings`` times) whenever the circle
    holds fewer distinct keywords than requested.

    ``zipf_exponent`` replaces the paper's frequency-proportional
    keyword weighting with a Zipf(s) distribution over the *global
    frequency rank* — weight ``1/(rank+1)^s`` with rank 0 the most
    frequent keyword — the million-user traffic shape where a few
    popular terms dominate.  ``None`` (the default) keeps the paper's §6
    behaviour; ``0.0`` is uniform over the candidate pool.
    """

    seed: int = 0
    initial_range: float = 5.0
    max_range_doublings: int = 12
    zipf_exponent: float | None = None


class QueryGenerator:
    """Deterministic (seeded) generator of benchmark queries."""

    def __init__(self, network: RoadNetwork, config: QueryGenConfig | None = None) -> None:
        if not network.has_positions:
            raise QueryError("the query generator needs node coordinates")
        self._network = network
        self._config = config or QueryGenConfig()
        self._rng = random.Random(self._config.seed)
        self._inverted = InvertedIndex(network)
        self._objects = list(network.object_nodes())
        if not self._objects:
            raise QueryError("the network has no object nodes to draw keywords from")
        self._rank: dict[str, int] | None = None
        if self._config.zipf_exponent is not None:
            # Global frequency rank, ties broken lexicographically so the
            # rank (and thus the workload) is deterministic.
            ordered = sorted(
                self._inverted.vocabulary,
                key=lambda kw: (-self._inverted.frequency(kw), kw),
            )
            self._rank = {kw: rank for rank, kw in enumerate(ordered)}

    # ------------------------------------------------------------------
    # The §6 selection protocol
    # ------------------------------------------------------------------
    def _objects_in_circle(self, center: int, radius: float) -> list[int]:
        cx, cy = self._network.position(center)
        selected = []
        for node in self._objects:
            x, y = self._network.position(node)
            if math.hypot(x - cx, y - cy) <= radius:
                selected.append(node)
        return selected

    def _candidate_pool(self, num_keywords: int) -> tuple[int, list[int], list[str]]:
        """Pick a center and grow the circle until enough keywords exist.

        Returns ``(center, objects_in_range, distinct_keywords)``.
        """
        for _attempt in range(50):
            center = self._rng.randrange(self._network.num_nodes)
            radius = self._config.initial_range
            for _ in range(self._config.max_range_doublings + 1):
                objects = self._objects_in_circle(center, radius)
                keywords = sorted({kw for node in objects for kw in self._network.keywords(node)})
                if len(keywords) >= num_keywords:
                    return center, objects, keywords
                radius *= 2.0
        raise QueryError(
            f"could not find {num_keywords} distinct keywords near any center; "
            "the dataset vocabulary may be too small"
        )

    def _keyword_weight(self, keyword: str) -> float:
        if self._rank is None:
            return float(max(1, self._inverted.frequency(keyword)))
        exponent = self._config.zipf_exponent
        rank = self._rank.get(keyword, len(self._rank))
        return 1.0 / float(rank + 1) ** exponent

    def _frequency_weighted_sample(self, keywords: list[str], count: int) -> list[str]:
        """Sample ``count`` distinct keywords ∝ global frequency.

        With ``zipf_exponent`` set, ∝ ``1/(rank+1)^s`` instead — the
        same sequential without-replacement scan, different weights.
        """
        pool = list(keywords)
        weights = [self._keyword_weight(kw) for kw in pool]
        chosen: list[str] = []
        for _ in range(count):
            total = float(sum(weights))
            pick = self._rng.random() * total
            acc = 0.0
            index = len(pool) - 1
            for i, w in enumerate(weights):
                acc += w
                if pick <= acc:
                    index = i
                    break
            chosen.append(pool.pop(index))
            weights.pop(index)
        return chosen

    # ------------------------------------------------------------------
    # Query constructors
    # ------------------------------------------------------------------
    def sgkq(self, num_keywords: int, radius: float) -> QClassQuery:
        """One SGKQ with ``num_keywords`` frequency-weighted keywords."""
        _center, _objects, keywords = self._candidate_pool(num_keywords)
        return sgkq(self._frequency_weighted_sample(keywords, num_keywords), radius)

    def rkq(self, num_keywords: int, radius: float) -> QClassQuery:
        """One RKQ whose location is an object from the selected range."""
        _center, objects, keywords = self._candidate_pool(num_keywords)
        location = objects[self._rng.randrange(len(objects))]
        return rkq(location, self._frequency_weighted_sample(keywords, num_keywords), radius)

    def dfunction_mix(
        self, num_keywords: int, radius: float, num_subtractions: int
    ) -> QClassQuery:
        """The EXP-7 query shape: a ∩/− chain with a chosen operator split.

        Operators θ₁…θₖ₋₁ contain exactly ``num_subtractions`` ``−``
        operators (placed at the chain tail so the positive conditions
        come first, as in the paper's Q2-style reductions).
        """
        if not (0 <= num_subtractions <= num_keywords - 1):
            raise QueryError(
                f"num_subtractions must be in [0, {num_keywords - 1}], "
                f"got {num_subtractions}"
            )
        _center, _objects, keywords = self._candidate_pool(num_keywords)
        chosen = self._frequency_weighted_sample(keywords, num_keywords)
        terms = tuple(CoverageTerm(KeywordSource(kw), radius) for kw in chosen)
        ops = [SetOp.INTERSECT] * (num_keywords - 1 - num_subtractions)
        ops += [SetOp.SUBTRACT] * num_subtractions
        return QClassQuery.from_chain(
            terms, ops, label=f"mix({num_keywords} kw, {num_subtractions} minus)"
        )

    def sgkq_batch(self, count: int, num_keywords: int, radius: float) -> list[QClassQuery]:
        """A batch of SGKQs (distinct centers, same shape)."""
        return [self.sgkq(num_keywords, radius) for _ in range(count)]

    def rkq_batch(self, count: int, num_keywords: int, radius: float) -> list[QClassQuery]:
        """A batch of RKQs."""
        return [self.rkq(num_keywords, radius) for _ in range(count)]
