"""Synthetic dataset presets standing in for the paper's OSM extracts.

Table 1 of the paper:

    ========  =========  =======  =========  ========
    name      nodes      objects  edges      keywords
    ========  =========  =======  =========  ========
    BRI       3,760,213  300,891  9,730,188    57,600
    AUS       1,223,171   70,064  3,364,364    18,750
    ========  =========  =======  =========  ========

The presets below reproduce the *structure* of those datasets — the
object/node ratio (~8% / ~5.7%), keyword-vocabulary scale, Zipf keyword
skew with spatial clustering, and the paper's preprocessing ("take each
object as a node and let it connect to its nearest network node") — at
~1/250 scale so pure-Python benchmark sweeps stay tractable.  ``BRI``
uses the perturbed-grid generator (dense, urban); ``AUS`` the Delaunay
generator (sparser, long links); see DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.exceptions import DisksError
from repro.graph.build import ObjectSpec, RoadNetworkBuilder, attach_objects
from repro.graph.generators import GeneratorConfig, generate_road_network
from repro.graph.road_network import NodeKind, RoadNetwork
from repro.graph.stats import NetworkStats, compute_stats
from repro.text.zipf import ClusteredKeywordPlacer, PlacementConfig

__all__ = [
    "DatasetConfig",
    "Dataset",
    "build_dataset",
    "load_dataset",
    "toy_figure1",
    "DATASET_PRESETS",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Recipe for one synthetic dataset."""

    name: str
    generator: GeneratorConfig
    num_objects: int
    placement: PlacementConfig
    object_seed: int = 0


@dataclass(frozen=True)
class Dataset:
    """A built dataset: the network plus its summary statistics."""

    name: str
    network: RoadNetwork
    stats: NetworkStats

    def frequent_keywords(self, count: int) -> list[str]:
        """The ``count`` most frequent keywords (useful in examples)."""
        freq = self.network.keyword_frequencies()
        ranked = sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))
        return [kw for kw, _n in ranked[:count]]


def build_dataset(config: DatasetConfig) -> Dataset:
    """Generate the road network, place objects, attach them (paper §6)."""
    junction_net = generate_road_network(config.generator)
    builder = RoadNetworkBuilder(directed=config.generator.directed)
    for node in junction_net.nodes():
        builder.add_junction(junction_net.position(node))
    for u, v, w in junction_net.edges():
        builder.add_edge(u, v, w)

    rng = random.Random(config.object_seed)
    xs = [junction_net.position(n)[0] for n in junction_net.nodes()]
    ys = [junction_net.position(n)[1] for n in junction_net.nodes()]
    area = (min(xs), min(ys), max(xs), max(ys))
    placer = ClusteredKeywordPlacer(config.placement, area)

    specs = []
    for _ in range(config.num_objects):
        # Objects cluster near network nodes (shops sit on streets):
        # jitter around a random junction rather than uniform placement.
        anchor = rng.randrange(junction_net.num_nodes)
        ax, ay = junction_net.position(anchor)
        pos = (ax + rng.uniform(-0.5, 0.5), ay + rng.uniform(-0.5, 0.5))
        specs.append(ObjectSpec(pos, placer.keywords_for(pos)))
    attach_objects(builder, specs)

    network = builder.build()
    return Dataset(name=config.name, network=network, stats=compute_stats(network))


DATASET_PRESETS: dict[str, DatasetConfig] = {
    # ~1/250-scale BRI: dense urban grid, ~8% objects, 576-keyword vocabulary.
    "bri_mini": DatasetConfig(
        name="bri_mini",
        generator=GeneratorConfig(kind="grid", num_nodes=13_800, seed=11),
        num_objects=1_200,
        placement=PlacementConfig(
            vocabulary_size=576, num_clusters=24, topic_size=30, seed=12
        ),
        object_seed=13,
    ),
    # ~1/250-scale AUS: sparser Delaunay web, ~5.7% objects, 187 keywords.
    "aus_mini": DatasetConfig(
        name="aus_mini",
        generator=GeneratorConfig(kind="delaunay", num_nodes=4_600, seed=21),
        num_objects=280,
        placement=PlacementConfig(
            vocabulary_size=187, num_clusters=10, topic_size=24, seed=22
        ),
        object_seed=23,
    ),
    # Small variants for unit/integration tests and quick examples.
    "bri_tiny": DatasetConfig(
        name="bri_tiny",
        generator=GeneratorConfig(kind="grid", num_nodes=1_600, seed=31),
        num_objects=160,
        placement=PlacementConfig(
            vocabulary_size=80, num_clusters=8, topic_size=16, seed=32
        ),
        object_seed=33,
    ),
    "aus_tiny": DatasetConfig(
        name="aus_tiny",
        generator=GeneratorConfig(kind="delaunay", num_nodes=900, seed=41),
        num_objects=90,
        placement=PlacementConfig(
            vocabulary_size=48, num_clusters=6, topic_size=12, seed=42
        ),
        object_seed=43,
    ),
}


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Dataset:
    """Build (and memoise) a preset dataset by name."""
    try:
        config = DATASET_PRESETS[name]
    except KeyError:
        raise DisksError(
            f"unknown dataset {name!r}; presets: {sorted(DATASET_PRESETS)}"
        ) from None
    return build_dataset(config)


def toy_figure1() -> RoadNetwork:
    """The five-node example network of the paper's Fig. 1.

    Nodes: A(school), B(hospital), C(park), D(museum), E(junction),
    with edge weights chosen so the paper's worked examples hold:

    * Example 1: ``SGKQ({museum, school}, 3) = {B, E}``;
    * Example 2: ``RKQ(B, {museum}, 4) = {D}``;
    * Example 3: ``R(school, 3) = {A, B, E}``.
    """
    builder = RoadNetworkBuilder()
    a = builder.add_object({"school"}, position=(0.0, 1.0))  # A = 0
    b = builder.add_object({"hospital"}, position=(1.0, 2.0))  # B = 1
    c = builder.add_object({"park"}, position=(3.0, 2.0))  # C = 2
    d = builder.add_object({"museum"}, position=(2.0, 0.0))  # D = 3
    e = builder.add_junction(position=(1.0, 1.0))  # E = 4
    builder.add_edge(a, e, 2.0)
    builder.add_edge(b, e, 1.0)
    builder.add_edge(b, c, 4.0)
    builder.add_edge(e, d, 2.0)
    builder.add_edge(c, d, 3.0)
    return builder.build()
