"""Standing-subscription workloads for the pub/sub subsystem.

Builds on the §6 query generator: each subscription is an SGKQ or RKQ
drawn by the same frequency-weighted protocol, rendered into the wire
language, plus the knobs a monitoring workload adds on top — the
SGKQ/RKQ mix (RKQs are *scoped*: their coverage ball pins them to a few
fragments, which is what makes delta routing selective) and the
fraction of subscriptions that want ``rescored`` notifications
(distance drift without membership change).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.queries import QClassQuery
from repro.exceptions import DisksError
from repro.graph.road_network import RoadNetwork
from repro.serve.protocol import render_query
from repro.workloads.querygen import QueryGenConfig, QueryGenerator

__all__ = ["SubGenConfig", "SubscriptionSpec", "SubscriptionGenerator"]


@dataclass(frozen=True)
class SubGenConfig:
    """Knobs of the subscription generator.

    ``rkq_fraction`` is the share of standing queries anchored to a
    location (scoped — routable by fragment); ``scored_fraction`` the
    share registered with per-term distance tracking (``rescored``
    notifications).
    """

    seed: int = 0
    num_keywords: int = 2
    radius: float = 4.0
    rkq_fraction: float = 0.5
    scored_fraction: float = 0.0


@dataclass(frozen=True)
class SubscriptionSpec:
    """One generated standing query, ready for the ``subscribe`` op."""

    expression: str
    scored: bool
    kind: str  # "sgkq" | "rkq"

    def to_request(self, request_id=None) -> dict:
        """The wire request registering this subscription."""
        payload: dict = {"id": request_id, "op": "subscribe", "q": self.expression}
        if self.scored:
            payload["scored"] = True
        return payload


class SubscriptionGenerator:
    """Deterministic (seeded) generator of standing-query workloads."""

    def __init__(
        self, network: RoadNetwork, config: SubGenConfig | None = None
    ) -> None:
        self._config = config or SubGenConfig()
        if not 0.0 <= self._config.rkq_fraction <= 1.0:
            raise DisksError("rkq_fraction must lie in [0, 1]")
        if not 0.0 <= self._config.scored_fraction <= 1.0:
            raise DisksError("scored_fraction must lie in [0, 1]")
        self._rng = random.Random(self._config.seed)
        self._queries = QueryGenerator(network, QueryGenConfig(seed=self._config.seed))

    def query(self) -> tuple[QClassQuery, str]:
        """One standing query plus its kind tag."""
        if self._rng.random() < self._config.rkq_fraction:
            return (
                self._queries.rkq(self._config.num_keywords, self._config.radius),
                "rkq",
            )
        return (
            self._queries.sgkq(self._config.num_keywords, self._config.radius),
            "sgkq",
        )

    def queries(self, count: int) -> list[QClassQuery]:
        """``count`` standing queries as query objects (library use)."""
        if count < 1:
            raise DisksError("the subscription stream needs at least one query")
        return [self.query()[0] for _ in range(count)]

    def specs(self, count: int) -> list[SubscriptionSpec]:
        """``count`` wire-ready subscription specs."""
        if count < 1:
            raise DisksError("the subscription stream needs at least one query")
        specs: list[SubscriptionSpec] = []
        for _ in range(count):
            query, kind = self.query()
            specs.append(
                SubscriptionSpec(
                    expression=render_query(query),
                    scored=self._rng.random() < self._config.scored_fraction,
                    kind=kind,
                )
            )
        return specs
