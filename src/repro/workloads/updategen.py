"""Synthetic update streams for the live-update subsystem.

The paper has no update workload — its index is built once — so this
generator models the churn a deployed spatial-keyword service actually
sees, with a composition knob per op kind:

* **keyword adds** attach a keyword drawn frequency-weighted from the
  current vocabulary (popular tags churn most) to a random object;
* **keyword removes** detach a keyword the object currently carries —
  the generator tracks the evolving keyword sets, so every emitted op
  is valid against the network state at its position in the stream;
* **edge reweights** scale a random existing edge's weight by a factor
  drawn uniformly from ``weight_scale_range`` (congestion/relief).

Streams are deterministic per seed, and every op is *applicable*: a
replayed stream never raises validation errors.  Batches group ops the
way an ingest pipeline would (:meth:`UpdateStreamGenerator.batches`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.road_network import RoadNetwork
from repro.live.ops import AddKeyword, RemoveKeyword, SetEdgeWeight, UpdateOp

__all__ = ["UpdateGenConfig", "UpdateStreamGenerator"]


@dataclass(frozen=True)
class UpdateGenConfig:
    """Knobs of the update-stream generator.

    The three mix weights need not sum to one — they are normalised.
    ``vocabulary_growth`` is the chance an add invents a fresh keyword
    (``new0``, ``new1``, ...) instead of reusing an existing one,
    modelling vocabulary drift.
    """

    seed: int = 0
    add_fraction: float = 0.4
    remove_fraction: float = 0.3
    edge_fraction: float = 0.3
    weight_scale_range: tuple[float, float] = (0.5, 2.0)
    vocabulary_growth: float = 0.05


class UpdateStreamGenerator:
    """Deterministic (seeded) generator of valid evolving update streams."""

    def __init__(
        self, network: RoadNetwork, config: UpdateGenConfig | None = None
    ) -> None:
        self._config = config or UpdateGenConfig()
        if not (
            self._config.add_fraction >= 0
            and self._config.remove_fraction >= 0
            and self._config.edge_fraction >= 0
            and self._config.add_fraction
            + self._config.remove_fraction
            + self._config.edge_fraction
            > 0
        ):
            raise GraphError("update mix weights must be non-negative and not all zero")
        lo, hi = self._config.weight_scale_range
        if not (0 < lo <= hi):
            raise GraphError("weight_scale_range must satisfy 0 < low <= high")
        self._rng = random.Random(self._config.seed)
        self._objects = sorted(network.object_nodes())
        if not self._objects:
            raise GraphError("the network has no object nodes to update")
        # Evolving view of per-object keyword sets and edge weights, so
        # consecutive ops stay valid as the stream mutates the network.
        self._keywords: dict[int, set[str]] = {
            node: set(network.keywords(node)) for node in self._objects
        }
        vocabulary = sorted({kw for kws in self._keywords.values() for kw in kws})
        self._frequency: dict[str, int] = {kw: 0 for kw in vocabulary}
        for kws in self._keywords.values():
            for kw in kws:
                self._frequency[kw] += 1
        self._fresh_counter = 0
        self._edges: list[tuple[int, int]] = []
        self._weights: dict[tuple[int, int], float] = {}
        for u in network.nodes():
            for v, w in network.neighbors(u):
                if network.directed or u < v:
                    self._edges.append((u, v))
                    self._weights[(u, v)] = w

    # ------------------------------------------------------------------
    # Op construction
    # ------------------------------------------------------------------
    def _pick_keyword(self) -> str:
        if self._frequency and self._rng.random() >= self._config.vocabulary_growth:
            pool = sorted(self._frequency)
            weights = [self._frequency[kw] + 1 for kw in pool]
            return self._rng.choices(pool, weights=weights, k=1)[0]
        keyword = f"new{self._fresh_counter}"
        self._fresh_counter += 1
        return keyword

    def _next_add(self) -> UpdateOp | None:
        for _ in range(20):
            node = self._rng.choice(self._objects)
            keyword = self._pick_keyword()
            if keyword not in self._keywords[node]:
                self._keywords[node].add(keyword)
                self._frequency[keyword] = self._frequency.get(keyword, 0) + 1
                return AddKeyword(node=node, keyword=keyword)
        return None

    def _next_remove(self) -> UpdateOp | None:
        carriers = [n for n in self._objects if self._keywords[n]]
        if not carriers:
            return None
        node = self._rng.choice(carriers)
        keyword = self._rng.choice(sorted(self._keywords[node]))
        self._keywords[node].discard(keyword)
        self._frequency[keyword] = max(0, self._frequency.get(keyword, 1) - 1)
        return RemoveKeyword(node=node, keyword=keyword)

    def _next_edge(self) -> UpdateOp | None:
        if not self._edges:
            return None
        u, v = self._rng.choice(self._edges)
        lo, hi = self._config.weight_scale_range
        weight = self._weights[(u, v)] * self._rng.uniform(lo, hi)
        self._weights[(u, v)] = weight
        return SetEdgeWeight(u=u, v=v, weight=weight)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def ops(self, count: int) -> list[UpdateOp]:
        """The next ``count`` ops of the stream (valid in sequence)."""
        kinds = ["add", "remove", "edge"]
        weights = [
            self._config.add_fraction,
            self._config.remove_fraction,
            self._config.edge_fraction,
        ]
        produced: list[UpdateOp] = []
        guard = 0
        while len(produced) < count and guard < count * 50:
            guard += 1
            kind = self._rng.choices(kinds, weights=weights, k=1)[0]
            op = {
                "add": self._next_add,
                "remove": self._next_remove,
                "edge": self._next_edge,
            }[kind]()
            if op is not None:
                produced.append(op)
        if len(produced) < count:
            raise GraphError(
                f"could not generate {count} applicable ops (got {len(produced)}); "
                "the network may have run out of removable keywords"
            )
        return produced

    def batches(self, num_batches: int, batch_size: int) -> list[list[UpdateOp]]:
        """``num_batches`` consecutive batches of ``batch_size`` ops each."""
        return [self.ops(batch_size) for _ in range(num_batches)]
