"""repro.ha — the replica-group serving tier.

Promotes the placement/routing core of :mod:`repro.dist.replication`
from simulation into the real multiprocess serving path:

* :class:`HACluster` — forked workers hosting fragment replica groups
  (chained declustering, anti-affine), load-aware per-fragment routing,
  failover re-routing on worker death (exact answers, not degraded
  mode), and epoch-atomic replicated applies.
* :class:`FrontendGuard` — idempotency-keyed update submission and
  per-client token-bucket rate limits, shared across frontends.
* :func:`frontend_group` — several :class:`repro.serve.DisksServer`
  frontends over one cluster, so no single asyncio loop is the
  throughput ceiling.
"""

from repro.ha.cluster import HACluster
from repro.ha.frontend import Frontend, frontend_group
from repro.ha.guard import FrontendGuard, IdempotencyIndex, TokenBucketLimiter

__all__ = [
    "HACluster",
    "Frontend",
    "frontend_group",
    "FrontendGuard",
    "IdempotencyIndex",
    "TokenBucketLimiter",
]
