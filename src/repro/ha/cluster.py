"""Replica-group cluster: load-aware routing and exact failover.

:class:`repro.serve.PipelinedCluster` broadcasts every query to every
worker and flips into *degraded* mode when a worker dies — answers then
silently miss the dead machine's fragments.  :class:`HACluster` keeps
the same multiplexed-pipe substrate but changes the unit of dispatch
from "the whole query" to "one fragment task":

* every fragment is hosted by ``replication_factor`` workers (the
  chained-declustering layout of
  :class:`repro.dist.replication.ReplicaPlacement` — anti-affine by
  construction);
* the coordinator routes each fragment's task to one alive replica,
  either least-busy (``routing="load"``: outstanding tasks, then
  accumulated busy-seconds, then machine id) or round-robin
  (``routing="rr"``, the baseline);
* a worker death re-dispatches the in-flight tasks it owed to surviving
  replicas — the query still returns the **exact** answer.  Only a
  fragment with *no* alive replica left degrades the answer.

Epoch applies ship each changed fragment to **all** its alive replicas.
Torn-epoch prevention extends the pipelined argument to failover: all
fan-outs (query, apply, and failover re-dispatch) happen under one
coordinator-wide re-entrant ``_fanout_lock``, and every apply fan-out
bumps an ``_apply_seq``.  A query snapshots the seq at its own fan-out;
when a worker dies,

* if the seq is unchanged, no apply has been fanned out since, so
  re-dispatching the missing fragment tasks (still under the fan-out
  lock) puts them after exactly the same set of applies on the
  surviving pipes — same epoch, partial results stay mergeable;
* if the seq moved, the partials may predate the swap, so the whole
  query **restarts** under a new attempt number: partials are
  discarded, placement is recomputed, and replies from the old attempt
  are ignored.

Either way a query observes one epoch on all fragments — never a mix.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import traceback
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess

from repro.core.executor import execute_fragment_task
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.network import NetworkModel
from repro.dist.process_cluster import (
    build_worker_runtimes,
    emulate_delivery,
    finish_worker_spans,
    spawn_workers,
    worker_trace_collector,
)
from repro.dist.replication import ROUTING_POLICIES, ReplicaPlacement
from repro.exceptions import ClusterError
from repro.obs.trace import Span, SpanCollector
from repro.serve.pipeline import PendingApply, PendingQuery, PipelinedResponse
from repro.shm import SharedSegmentStore

__all__ = ["HACluster"]

_DEFAULT_TIMEOUT = 120.0


def _ha_worker_main(connection: Connection, payload: bytes) -> None:
    """Replica worker loop: evaluate the fragment subset each task names.

    The pipelined worker evaluates every hosted fragment per query; here
    a query message carries an explicit fragment-id list (the
    coordinator may route different fragments of one query to different
    replicas), plus an ``attempt`` number echoed back so the coordinator
    can discard replies from restarted queries, plus an optional trace
    wire context — traced tasks piggyback their stage spans on the
    reply, exactly like the pipelined worker.  ``config`` messages set
    a per-task artificial delay — the benchmark's skew knob.
    """
    registry = None
    try:
        mode, data, network_model, compiled = pickle.loads(payload)
        registry, runtimes = build_worker_runtimes(mode, data, compiled)
        hosted = {rt.fragment.fragment_id: rt for rt in runtimes}
        machine_delay = 0.0
        connection.send(("ready", len(runtimes)))
        while True:
            raw = connection.recv_bytes()
            kind, body, *meta = pickle.loads(raw)
            if kind == "stop":
                connection.send(("stopped", None))
                return
            if kind == "config":
                machine_delay = float(body.get("machine_delay", machine_delay))
                continue
            emulate_delivery(network_model, meta[0] if meta else None, len(raw))
            if kind == "apply_shm":
                request_id, epoch, manifests = body
                try:
                    started = time.perf_counter()
                    swapped = registry.attach(manifests)
                    runtimes = registry.runtimes()
                    hosted = {rt.fragment.fragment_id: rt for rt in runtimes}
                    elapsed = time.perf_counter() - started
                    connection.send(
                        ("applied", (request_id, epoch, swapped, elapsed),
                         time.perf_counter())
                    )
                except Exception:
                    connection.send(("error", (request_id, traceback.format_exc())))
                continue
            if kind == "apply":
                request_id, epoch, new_pairs = body
                try:
                    started = time.perf_counter()
                    swapped = []
                    for fragment, index in new_pairs:
                        runtime = hosted.get(fragment.fragment_id)
                        if runtime is not None:
                            runtime.refresh(fragment, index)
                            swapped.append(fragment.fragment_id)
                    elapsed = time.perf_counter() - started
                    connection.send(
                        ("applied", (request_id, epoch, swapped, elapsed),
                         time.perf_counter())
                    )
                except Exception:
                    connection.send(("error", (request_id, traceback.format_exc())))
                continue
            if kind == "cache_stats":
                request_id = body
                totals = {"hits": 0, "misses": 0, "skipped": 0}
                for rt in hosted.values():
                    stats = rt.cache_stats
                    totals["hits"] += stats.hits
                    totals["misses"] += stats.misses
                    totals["skipped"] += stats.skipped
                connection.send(("stats", (request_id, totals), time.perf_counter()))
                continue
            if kind != "query":  # pragma: no cover - protocol guard
                connection.send(("error", (None, f"unknown message kind {kind!r}")))
                continue
            received = time.perf_counter()
            request_id, attempt, query, fragment_ids, trace_wire = body
            try:
                collector, parent_id = worker_trace_collector(
                    trace_wire, meta[0] if meta else None, received, len(raw)
                )
                started = time.perf_counter()
                reply = []
                for fragment_id in fragment_ids:
                    runtime = hosted.get(fragment_id)
                    if runtime is None:
                        raise ClusterError(
                            f"task names fragment {fragment_id} not hosted here"
                        )
                    if machine_delay > 0.0:
                        time.sleep(machine_delay)
                    result = execute_fragment_task(
                        runtime, query, collector=collector, parent_id=parent_id
                    )
                    reply.append(
                        (result.fragment_id, set(result.local_result),
                         result.wall_seconds)
                    )
                elapsed = time.perf_counter() - started
                spans = None
                if collector is not None:
                    spans = finish_worker_spans(
                        collector, parent_id, (request_id, attempt, reply), elapsed
                    )
                connection.send(
                    ("results", (request_id, attempt, reply, elapsed, spans),
                     time.perf_counter())
                )
            except Exception:
                connection.send(("error", (request_id, traceback.format_exc())))
    except (EOFError, OSError):  # coordinator went away
        return
    finally:
        if registry is not None:
            registry.release_all()


class _InFlightHA:
    """Coordinator-side state for one query across replica tasks."""

    __slots__ = (
        "future",
        "query",
        "attempt",
        "valid_from",  # replies from attempts before this are discarded
        "awaiting",  # fragment_id -> machine the task is routed to
        "apply_seq",
        "started",
        "degraded",
        "merged",
        "fragment_seconds",
        "machine_seconds",
        "message_bytes",
        "collector",  # SpanCollector when the query is traced, else None
        "root",  # the open "query" span
        "dispatch_spans",  # machine_id -> open dispatch spans
    )

    def __init__(self, query: QClassQuery, awaiting: dict[int, int],
                 apply_seq: int, degraded: bool) -> None:
        self.future: Future[PipelinedResponse] = Future()
        self.query = query
        self.attempt = 0
        self.valid_from = 0
        self.awaiting = awaiting
        self.apply_seq = apply_seq
        self.started = time.perf_counter()
        self.degraded = degraded
        self.merged: set[int] = set()
        self.fragment_seconds: dict[int, float] = {}
        self.machine_seconds: dict[int, float] = {}
        self.message_bytes = 0
        self.collector: SpanCollector | None = None
        self.root: Span | None = None
        self.dispatch_spans: dict[int, list[Span]] = {}


class _InFlightApplyHA:
    """One epoch delta being applied to every replica."""

    __slots__ = ("future", "epoch", "awaiting", "started", "swapped",
                 "message_bytes", "manifests", "acked_machines")

    def __init__(self, epoch: int, awaiting: set[int]) -> None:
        self.future: Future[dict[str, object]] = Future()
        self.epoch = epoch
        self.awaiting = awaiting
        self.started = time.perf_counter()
        self.swapped: set[int] = set()
        self.message_bytes = 0
        self.manifests: dict[int, list] = {}
        self.acked_machines: list[int] = []


class _InFlightStatsHA:
    __slots__ = ("future", "awaiting", "totals")

    def __init__(self, awaiting: set[int]) -> None:
        self.future: Future[dict[str, int]] = Future()
        self.awaiting = awaiting
        self.totals: dict[str, int] = {"hits": 0, "misses": 0, "skipped": 0}


class HACluster:
    """Replica-group worker processes behind a routing coordinator.

    Duck-type compatible with :class:`repro.serve.PipelinedCluster`
    where the serve layer cares (``submit`` / ``execute`` / ``forget`` /
    ``apply_updates`` / ``num_machines`` / ``dead_machines`` /
    ``degraded`` / ``coverage_cache_stats``), plus the HA surface:
    ``kill_worker``, ``ha_stats``, ``routing``.
    """

    def __init__(
        self,
        processes: list[BaseProcess],
        connections: list[Connection],
        placement: ReplicaPlacement,
        network_model: NetworkModel | None = None,
        shm_store: SharedSegmentStore | None = None,
        startup_bytes: list[int] | None = None,
        routing: str = "load",
    ) -> None:
        self._processes = processes
        self._connections = connections
        self._placement = placement
        self._network_model = network_model
        self._shm_store = shm_store
        self.startup_bytes = startup_bytes or []
        self.routing = routing
        self._send_locks = [threading.Lock() for _ in connections]
        # Re-entrant: a fan-out that trips over a broken pipe handles the
        # death (which re-dispatches, i.e. sends) while already holding it.
        self._fanout_lock = threading.RLock()
        self._lock = threading.Lock()
        self._pending: dict[int, _InFlightHA] = {}
        self._pending_applies: dict[int, _InFlightApplyHA] = {}
        self._pending_stats: dict[int, _InFlightStatsHA] = {}
        self._ids = itertools.count()
        self._rr_ids = itertools.count()
        self._dead: set[int] = set()
        self._alive = True
        self._closing = False
        self._dispatchers: list[threading.Thread] = []
        self.current_epoch = 0
        # Bumped under _fanout_lock on every apply fan-out; queries
        # snapshot it to decide reroute-vs-restart on worker death.
        self._apply_seq = 0
        self._outstanding: dict[int, int] = {m: 0 for m in range(len(connections))}
        self._busy: dict[int, float] = {m: 0.0 for m in range(len(connections))}
        self._reroutes = 0
        self._failovers = 0
        self._restarts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        fragments: list[Fragment],
        indexes: list[NPDIndex],
        *,
        num_machines: int,
        replication_factor: int = 2,
        routing: str = "load",
        timeout_seconds: float = _DEFAULT_TIMEOUT,
        network_model: NetworkModel | None = None,
        compiled: bool = True,
        use_shm: bool = False,
        machine_delays: dict[int, float] | None = None,
    ) -> "HACluster":
        """Fork replica-group workers, handshake, start the dispatchers.

        ``machine_delays`` injects an artificial per-task sleep on named
        machines — the skew knob the routing benchmark (and nothing
        else) uses.
        """
        if routing not in ROUTING_POLICIES:
            raise ClusterError(f"unknown routing policy {routing!r}")
        placement = ReplicaPlacement.chained(
            len(fragments), num_machines, replication_factor
        )
        shm_store = SharedSegmentStore() if use_shm else None
        processes, connections, _assignments, startup_bytes = spawn_workers(
            fragments,
            indexes,
            num_machines,
            _ha_worker_main,
            network_model,
            compiled,
            shm_store,
            fragment_assignments=placement.assignments(),
        )
        cluster = cls(
            processes,
            connections,
            placement,
            network_model,
            shm_store,
            startup_bytes,
            routing,
        )
        for machine_id, connection in enumerate(connections):
            if not connection.poll(timeout_seconds):
                cluster.shutdown()
                raise ClusterError(
                    f"worker {machine_id} did not report ready within {timeout_seconds}s"
                )
            try:
                kind, body = connection.recv()
            except (EOFError, OSError):
                cluster.shutdown()
                raise ClusterError(f"worker {machine_id} died during startup") from None
            if kind != "ready":
                cluster.shutdown()
                raise ClusterError(f"worker {machine_id} failed to start: {body}")
        for machine_id, delay in (machine_delays or {}).items():
            if 0 <= machine_id < len(connections) and delay > 0:
                connections[machine_id].send_bytes(
                    pickle.dumps(("config", {"machine_delay": delay}))
                )
        cluster._start_dispatchers()
        return cluster

    def _start_dispatchers(self) -> None:
        for machine_id, connection in enumerate(self._connections):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(machine_id, connection),
                name=f"disks-ha-dispatch-{machine_id}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)

    def __enter__(self) -> "HACluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    @property
    def num_machines(self) -> int:
        return len(self._processes)

    @property
    def num_fragments(self) -> int:
        return self._placement.num_fragments

    @property
    def replication_factor(self) -> int:
        return self._placement.replication_factor

    @property
    def placement(self) -> ReplicaPlacement:
        return self._placement

    @property
    def dead_machines(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._dead)

    @property
    def degraded(self) -> bool:
        """True only once some fragment has lost *all* replicas."""
        with self._lock:
            alive = set(range(len(self._connections))) - self._dead
            return any(
                not any(m in alive for m in machines)
                for machines in self._placement.replicas
            )

    def kill_worker(self, machine_id: int) -> bool:
        """SIGKILL a worker (fault injection). Returns False if already dead."""
        if not (0 <= machine_id < len(self._processes)):
            raise ClusterError(f"no machine {machine_id}")
        with self._lock:
            if machine_id in self._dead:
                return False
        self._processes[machine_id].kill()
        return True

    def ha_stats(self) -> dict[str, object]:
        """Replication state for the ``stats`` op and Prometheus gauges."""
        with self._lock:
            alive = set(range(len(self._connections))) - self._dead
            replicas_alive = [
                sum(1 for m in machines if m in alive)
                for machines in self._placement.replicas
            ]
            return {
                "replication_factor": self._placement.replication_factor,
                "routing": self.routing,
                "machines": len(self._connections),
                "machines_alive": len(alive),
                "dead_machines": sorted(self._dead),
                "replicas_alive_min": min(replicas_alive, default=0),
                "fragments_unservable": sum(1 for n in replicas_alive if n == 0),
                "reroutes": self._reroutes,
                "failovers": self._failovers,
                "restarts": self._restarts,
                "outstanding_tasks": dict(self._outstanding),
                "busy_seconds": {m: round(s, 6) for m, s in self._busy.items()},
            }

    def shutdown(self, timeout_seconds: float = 10.0) -> None:
        """Stop workers and dispatchers; fail anything still pending."""
        if not self._alive:
            return
        self._alive = False
        self._closing = True
        with self._lock:
            dead = set(self._dead)
        for machine_id, connection in enumerate(self._connections):
            if machine_id in dead:
                continue
            try:
                with self._send_locks[machine_id]:
                    connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=timeout_seconds)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        for connection in self._connections:
            connection.close()
        for thread in self._dispatchers:
            thread.join(timeout=timeout_seconds)
        if self._shm_store is not None:
            self._shm_store.unlink_all()
        with self._lock:
            leftover = list(self._pending.values())
            self._pending.clear()
            leftover_applies = list(self._pending_applies.values())
            self._pending_applies.clear()
            leftover_stats = list(self._pending_stats.values())
            self._pending_stats.clear()
        for inflight in leftover:
            if not inflight.future.done():
                inflight.future.set_exception(
                    ClusterError("the cluster was shut down mid-query")
                )
        for apply in leftover_applies:
            if not apply.future.done():
                apply.future.set_exception(
                    ClusterError("the cluster was shut down mid-apply")
                )
        for pending in leftover_stats:
            if not pending.future.done():
                pending.future.set_exception(
                    ClusterError("the cluster was shut down mid-stats")
                )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self, machine_id: int, connection: Connection) -> None:
        while True:
            try:
                raw = connection.recv_bytes()
            except (EOFError, OSError):
                if not self._closing:
                    self._on_worker_death(machine_id)
                return
            kind, body, *meta = pickle.loads(raw)
            if kind == "stopped":
                return
            emulate_delivery(self._network_model, meta[0] if meta else None, len(raw))
            if kind == "error":
                request_id, text = body
                if request_id is not None:
                    self._fail_request(
                        request_id,
                        ClusterError(f"worker {machine_id} failed:\n{text}"),
                    )
                continue
            if kind == "applied":
                request_id, epoch, swapped, _elapsed = body
                self._absorb_apply_ack(machine_id, request_id, swapped, len(raw))
                continue
            if kind == "stats":
                request_id, totals = body
                self._absorb_stats(machine_id, request_id, totals)
                continue
            request_id, attempt, reply, elapsed, spans = body
            self._absorb_reply(
                machine_id, request_id, attempt, reply, elapsed, spans, len(raw)
            )

    def _absorb_reply(
        self,
        machine_id: int,
        request_id: int,
        attempt: int,
        reply: list[tuple[int, set[int], float]],
        elapsed: float,
        spans: list[Span] | None,
        wire_bytes: int,
    ) -> None:
        with self._lock:
            # Load bookkeeping happens even for forgotten/stale replies:
            # the machine really did finish those tasks.
            self._outstanding[machine_id] = max(
                0, self._outstanding.get(machine_id, 0) - len(reply)
            )
            self._busy[machine_id] = self._busy.get(machine_id, 0.0) + elapsed
            inflight = self._pending.get(request_id)
            if inflight is None or attempt < inflight.valid_from:
                return  # timed out, forgotten, or a restarted query's old attempt
            if spans and inflight.collector is not None:
                for span in spans:
                    span.machine_id = machine_id
                inflight.collector.extend(spans)
            for span in inflight.dispatch_spans.pop(machine_id, ()):
                span.finish()
            for fragment_id, nodes, seconds in reply:
                if inflight.awaiting.get(fragment_id) != machine_id:
                    continue  # task was rerouted away; a twin answer is coming
                inflight.merged.update(nodes)
                inflight.fragment_seconds[fragment_id] = seconds
                del inflight.awaiting[fragment_id]
            inflight.machine_seconds[machine_id] = (
                inflight.machine_seconds.get(machine_id, 0.0) + elapsed
            )
            inflight.message_bytes += wire_bytes
            if inflight.awaiting:
                return
            del self._pending[request_id]
        self._complete_query(inflight)

    def _complete_query(self, inflight: _InFlightHA) -> None:
        spans: tuple[Span, ...] = ()
        if inflight.collector is not None:
            for open_spans in inflight.dispatch_spans.values():
                for span in open_spans:
                    span.finish()
            inflight.dispatch_spans.clear()
            if inflight.root is not None:
                inflight.root.finish()
            spans = tuple(inflight.collector.spans)
        response = PipelinedResponse(
            result_nodes=frozenset(inflight.merged),
            fragment_seconds=dict(inflight.fragment_seconds),
            machine_seconds=dict(inflight.machine_seconds),
            wall_seconds=time.perf_counter() - inflight.started,
            message_bytes=inflight.message_bytes,
            degraded=inflight.degraded,
            spans=spans,
            attempt=inflight.attempt,
        )
        if not inflight.future.done():
            inflight.future.set_result(response)

    def _absorb_apply_ack(
        self, machine_id: int, request_id: int, swapped: list[int], wire_bytes: int
    ) -> None:
        with self._lock:
            apply = self._pending_applies.get(request_id)
            if apply is None:
                return
            apply.swapped.update(swapped)
            apply.message_bytes += wire_bytes
            apply.awaiting.discard(machine_id)
            apply.acked_machines.append(machine_id)
            shipped = apply.manifests.get(machine_id)
            done = not apply.awaiting
            if done:
                del self._pending_applies[request_id]
        if shipped is not None and self._shm_store is not None:
            self._shm_store.lease(machine_id, shipped)
        if done:
            self._complete_apply(apply)

    def _complete_apply(self, apply: _InFlightApplyHA) -> None:
        self.current_epoch = max(self.current_epoch, apply.epoch)
        summary = {
            "epoch": apply.epoch,
            "swapped_fragments": sorted(apply.swapped),
            "acked_machines": sorted(apply.acked_machines),
            "total_message_bytes": apply.message_bytes,
            "wall_seconds": time.perf_counter() - apply.started,
        }
        if not apply.future.done():
            apply.future.set_result(summary)

    def _absorb_stats(
        self, machine_id: int, request_id: int, totals: dict[str, int]
    ) -> None:
        with self._lock:
            pending = self._pending_stats.get(request_id)
            if pending is None:
                return
            for name, value in totals.items():
                pending.totals[name] = pending.totals.get(name, 0) + value
            pending.awaiting.discard(machine_id)
            if pending.awaiting:
                return
            del self._pending_stats[request_id]
        if not pending.future.done():
            pending.future.set_result(dict(pending.totals))

    def _fail_request(self, request_id: int, error: ClusterError) -> None:
        with self._lock:
            inflight = self._pending.pop(request_id, None)
            apply = self._pending_applies.pop(request_id, None)
            stats = self._pending_stats.pop(request_id, None)
        if inflight is not None and not inflight.future.done():
            inflight.future.set_exception(error)
        if apply is not None and not apply.future.done():
            apply.future.set_exception(error)
        if stats is not None and not stats.future.done():
            stats.future.set_exception(error)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _on_worker_death(self, machine_id: int) -> None:
        """Reroute (or restart) everything the dead worker still owed.

        Runs entirely under ``_fanout_lock`` so no apply fan-out can
        interleave between the reroute decision and the re-dispatch —
        that window is exactly where a torn epoch could sneak in.
        """
        if self._shm_store is not None:
            self._shm_store.release_machine(machine_id)
        with self._fanout_lock:
            dispatches, applies_done, stats_done, completed = self._plan_failover(
                machine_id
            )
            for target, sends in dispatches.items():
                for request_id, attempt, query, fragment_ids, trace_wire in sends:
                    payload = pickle.dumps(
                        ("query",
                         (request_id, attempt, query, fragment_ids, trace_wire),
                         time.perf_counter())
                    )
                    try:
                        with self._send_locks[target]:
                            self._connections[target].send_bytes(payload)
                    except (BrokenPipeError, OSError):
                        self._on_worker_death(target)
                        break
        for apply in applies_done:
            self._complete_apply(apply)
        for pending in stats_done:
            if not pending.future.done():
                pending.future.set_result(dict(pending.totals))
        for inflight in completed:
            self._complete_query(inflight)

    @staticmethod
    def _open_dispatch_span(
        inflight: _InFlightHA, target: int, rerouted: bool
    ) -> tuple[str, str | None] | None:
        """Open a dispatch span for a (re)dispatch; returns its wire context.

        Caller holds ``_lock``.  Returns ``None`` for untraced queries.
        """
        if inflight.collector is None or inflight.root is None:
            return None
        span = inflight.collector.start(
            "dispatch",
            parent_id=inflight.root.span_id,
            machine_id=target,
            attempt=inflight.attempt,
            **({"rerouted": True} if rerouted else {}),
        )
        inflight.dispatch_spans.setdefault(target, []).append(span)
        return (inflight.collector.trace_id, span.span_id)

    def _plan_failover(self, machine_id: int):
        """Under ``_lock``: mark dead, decide reroute/restart per query."""
        dispatches: dict[
            int,
            list[tuple[int, int, QClassQuery, tuple[int, ...], tuple | None]],
        ] = {}
        applies_done: list[_InFlightApplyHA] = []
        stats_done: list[_InFlightStatsHA] = []
        completed: list[_InFlightHA] = []
        with self._lock:
            if machine_id in self._dead:
                return dispatches, applies_done, stats_done, completed
            self._dead.add(machine_id)
            self._failovers += 1
            self._outstanding[machine_id] = 0
            alive = set(range(len(self._connections))) - self._dead
            for request_id, inflight in list(self._pending.items()):
                owed = [
                    fid for fid, m in inflight.awaiting.items() if m == machine_id
                ]
                if not owed:
                    continue
                # The dead machine's dispatch spans will never see a
                # reply; close them so the trace tree stays well-formed.
                for span in inflight.dispatch_spans.pop(machine_id, ()):
                    span.finish()
                if inflight.apply_seq == self._apply_seq:
                    # No apply fanned out since this query's own fan-out:
                    # surviving replicas serve the same epoch, so only the
                    # dead machine's tasks move.  The attempt number still
                    # bumps (``attempt > 0`` marks every failover-touched
                    # query) but ``valid_from`` stays put, so replies from
                    # the original dispatch remain mergeable.
                    inflight.attempt += 1
                    routed = self._route_tasks(owed, alive, inflight.awaiting)
                    self._reroutes += len(routed)
                    for fid in owed:
                        if fid not in routed:
                            # Every replica of this fragment is gone.
                            inflight.degraded = True
                            del inflight.awaiting[fid]
                    by_machine: dict[int, list[int]] = {}
                    for fid, target in routed.items():
                        inflight.awaiting[fid] = target
                        self._outstanding[target] = (
                            self._outstanding.get(target, 0) + 1
                        )
                        by_machine.setdefault(target, []).append(fid)
                    for target, fids in by_machine.items():
                        wire = self._open_dispatch_span(inflight, target, True)
                        dispatches.setdefault(target, []).append(
                            (request_id, inflight.attempt, inflight.query,
                             tuple(fids), wire)
                        )
                else:
                    # An apply raced this query: partials may span epochs.
                    # Restart the whole query under a fresh attempt and
                    # discard replies from before it (``valid_from``).
                    self._restarts += 1
                    inflight.attempt += 1
                    inflight.valid_from = inflight.attempt
                    inflight.apply_seq = self._apply_seq
                    inflight.merged.clear()
                    inflight.fragment_seconds.clear()
                    inflight.degraded = False
                    if inflight.collector is not None:
                        # Partial spans belong to discarded work; keep only
                        # the root so the restarted tree reads cleanly.
                        for open_spans in inflight.dispatch_spans.values():
                            for span in open_spans:
                                span.finish()
                        inflight.dispatch_spans.clear()
                        inflight.collector.spans[:] = (
                            [inflight.root] if inflight.root is not None else []
                        )
                    all_ids = range(self._placement.num_fragments)
                    routed = self._route_tasks(all_ids, alive, None)
                    inflight.awaiting = dict(routed)
                    if len(routed) < self._placement.num_fragments:
                        inflight.degraded = True
                    by_machine = {}
                    for fid, target in routed.items():
                        self._outstanding[target] = (
                            self._outstanding.get(target, 0) + 1
                        )
                        by_machine.setdefault(target, []).append(fid)
                    for target, fids in by_machine.items():
                        wire = self._open_dispatch_span(inflight, target, True)
                        dispatches.setdefault(target, []).append(
                            (request_id, inflight.attempt, inflight.query,
                             tuple(fids), wire)
                        )
                if not inflight.awaiting:
                    del self._pending[request_id]
                    completed.append(inflight)
            # Applies and stats sweeps complete on the survivors.
            for rid in list(self._pending_applies):
                apply = self._pending_applies[rid]
                apply.awaiting.discard(machine_id)
                if not apply.awaiting:
                    del self._pending_applies[rid]
                    applies_done.append(apply)
            for rid in list(self._pending_stats):
                pending = self._pending_stats[rid]
                pending.awaiting.discard(machine_id)
                if not pending.awaiting:
                    del self._pending_stats[rid]
                    stats_done.append(pending)
        return dispatches, applies_done, stats_done, completed

    def _route_tasks(
        self,
        fragment_ids,
        alive: set[int],
        current: dict[int, int] | None,
    ) -> dict[int, int]:
        """Pick an alive replica per fragment; drop unservable fragments.

        Caller holds ``_lock``.  ``current`` (a fragment→machine map of
        tasks that are staying put) contributes to the load picture so a
        reroute doesn't pile onto an already-loaded survivor.
        """
        load: dict[int, float] = {}
        total_busy = sum(self._busy.values()) + 1.0
        for m in alive:
            load[m] = self._outstanding.get(m, 0) + self._busy.get(m, 0.0) / total_busy
        if current:
            for m in current.values():
                if m in load:
                    load[m] += 1.0
        routed: dict[int, int] = {}
        start = next(self._rr_ids)
        for fid in fragment_ids:
            candidates = [m for m in self._placement.machines_of(fid) if m in alive]
            if not candidates:
                continue
            if self.routing == "rr":
                chosen = candidates[(start + fid) % len(candidates)]
            else:
                chosen = min(candidates, key=lambda m: (load[m], m))
            routed[fid] = chosen
            load[chosen] += 1.0
        return routed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def submit(self, query: QClassQuery, *, trace=None) -> PendingQuery:
        """Route one task per fragment to an alive replica; don't block.

        ``trace`` (a :class:`~repro.obs.trace.TraceContext`) opts into
        end-to-end tracing: the coordinator opens the root ``query``
        span and one ``dispatch`` span per routed machine, workers
        piggyback their stage spans on replies, and failover re-dispatch
        opens fresh ``dispatch`` spans tagged with the new attempt —
        the rerouted work shows up on the surviving machine's row.
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        # The whole route-register-send sequence holds _fanout_lock: if a
        # worker death could interleave between registering the inflight
        # and sending its payloads, _plan_failover would re-dispatch the
        # not-yet-sent tasks and a subsequent apply could slip between
        # the two dispatches — the rerouted fragments would evaluate on
        # the old epoch and the original ones on the new (a torn answer
        # the apply_seq guard cannot see, because the seq was equal at
        # kill time).
        sent_bytes = 0
        with self._fanout_lock:
            with self._lock:
                alive = set(range(len(self._connections))) - self._dead
                if not alive:
                    raise ClusterError(
                        "every worker has died; the cluster cannot serve"
                    )
                routed = self._route_tasks(range(self._placement.num_fragments),
                                           alive, None)
                if not routed:
                    raise ClusterError("no fragment has an alive replica")
                request_id = next(self._ids)
                degraded = len(routed) < self._placement.num_fragments
                inflight = _InFlightHA(query, dict(routed), self._apply_seq,
                                       degraded)
                if trace is not None:
                    inflight.collector = SpanCollector(trace.trace_id)
                    inflight.root = inflight.collector.start(
                        "query", parent_id=trace.span_id
                    )
                self._pending[request_id] = inflight
                # Count the tasks as outstanding *before* anything is sent:
                # a fast worker's reply must never decrement first and leave
                # a phantom task behind.
                for machine_id in routed.values():
                    self._outstanding[machine_id] = (
                        self._outstanding.get(machine_id, 0) + 1
                    )
                by_machine: dict[int, list[int]] = {}
                for fid, m in routed.items():
                    by_machine.setdefault(m, []).append(fid)
                wires = {
                    machine_id: self._open_dispatch_span(
                        inflight, machine_id, False
                    )
                    for machine_id in by_machine
                }
            # _apply_seq only moves under _fanout_lock, which we still
            # hold, so the snapshot taken at registration is the seq the
            # payloads below actually ship under.
            for machine_id, fids in by_machine.items():
                payload = pickle.dumps(
                    ("query",
                     (request_id, inflight.attempt, query, tuple(fids),
                      wires[machine_id]),
                     time.perf_counter())
                )
                try:
                    with self._send_locks[machine_id]:
                        self._connections[machine_id].send_bytes(payload)
                    sent_bytes += len(payload)
                except (BrokenPipeError, OSError):
                    self._on_worker_death(machine_id)
        with self._lock:
            inflight.message_bytes += sent_bytes
        return PendingQuery(request_id=request_id, future=inflight.future)

    def execute(
        self,
        query: QClassQuery,
        *,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
        trace=None,
    ) -> PipelinedResponse:
        """Synchronous convenience wrapper over :meth:`submit`."""
        pending = self.submit(query, trace=trace)
        try:
            return pending.future.result(timeout=timeout_seconds)
        except FutureTimeoutError:
            self.forget(pending.request_id)
            raise ClusterError(
                f"query was not answered within {timeout_seconds}s"
            ) from None

    def forget(self, request_id: int) -> None:
        """Drop a pending query (e.g. after a caller-side timeout)."""
        with self._lock:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def submit_updates(
        self, epoch: int, replacements: list[tuple[Fragment, NPDIndex]]
    ) -> PendingApply:
        """Fan an epoch delta out to *every* alive replica of each fragment.

        The fan-out lock orders the apply identically against every
        query fan-out on all pipes, and the apply-seq bump makes any
        failover that races this apply restart its queries instead of
        mixing epochs.
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        if epoch <= self.current_epoch:
            raise ClusterError(
                f"epoch must advance: cluster at {self.current_epoch}, got {epoch}"
            )
        changed = [fragment.fragment_id for fragment, _index in replacements]
        with self._lock:
            alive = set(range(len(self._connections))) - self._dead
            involved = sorted(
                m
                for m in alive
                if any(m in self._placement.machines_of(fid) for fid in changed)
            )
            request_id = next(self._ids)
            apply = _InFlightApplyHA(epoch, set(involved))
            self._pending_applies[request_id] = apply
        if not involved:
            with self._lock:
                self._pending_applies.pop(request_id, None)
            self._complete_apply(apply)
            return PendingApply(request_id=request_id, epoch=epoch, future=apply.future)
        published: dict[int, object] = {}
        if self._shm_store is not None:
            for fragment, index in replacements:
                published[fragment.fragment_id] = self._shm_store.publish(
                    fragment, index, epoch=epoch
                )
        sent_bytes = 0
        with self._fanout_lock:
            self._apply_seq += 1
            # A send failure here must NOT trigger failover inline: the
            # seq is already bumped, so _plan_failover would take the
            # restart branch and re-dispatch query tasks mid-loop —
            # machines later in `involved` would see the restarted tasks
            # *before* their apply payload and answer on the old epoch
            # (a torn answer).  Collect the dead and fail them over only
            # once every apply payload is on its pipe.
            failed: list[int] = []
            for machine_id in involved:
                mine = [
                    (fragment, index)
                    for fragment, index in replacements
                    if machine_id in self._placement.machines_of(fragment.fragment_id)
                ]
                if self._shm_store is not None:
                    manifests = [
                        published[fragment.fragment_id] for fragment, _index in mine
                    ]
                    apply.manifests[machine_id] = manifests
                    payload = pickle.dumps(
                        ("apply_shm", (request_id, epoch, manifests),
                         time.perf_counter())
                    )
                else:
                    payload = pickle.dumps(
                        ("apply", (request_id, epoch, mine), time.perf_counter())
                    )
                try:
                    with self._send_locks[machine_id]:
                        self._connections[machine_id].send_bytes(payload)
                    sent_bytes += len(payload)
                except (BrokenPipeError, OSError):
                    failed.append(machine_id)
            for machine_id in failed:
                self._on_worker_death(machine_id)
        with self._lock:
            apply.message_bytes += sent_bytes
        return PendingApply(request_id=request_id, epoch=epoch, future=apply.future)

    def apply_updates(
        self,
        epoch: int,
        replacements: list[tuple[Fragment, NPDIndex]],
        *,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
    ) -> dict[str, object]:
        """Synchronous convenience wrapper over :meth:`submit_updates`."""
        pending = self.submit_updates(epoch, replacements)
        try:
            return pending.future.result(timeout=timeout_seconds)
        except FutureTimeoutError:
            with self._lock:
                self._pending_applies.pop(pending.request_id, None)
            raise ClusterError(
                f"epoch {epoch} was not applied within {timeout_seconds}s"
            ) from None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def coverage_cache_stats(
        self, *, timeout_seconds: float = 10.0
    ) -> dict[str, int]:
        """Cluster-wide coverage-cache counters over live workers."""
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        with self._lock:
            live = sorted(set(range(len(self._connections))) - self._dead)
            request_id = next(self._ids)
            pending = _InFlightStatsHA(set(live))
            if live:
                self._pending_stats[request_id] = pending
        if not live:
            return dict(pending.totals)
        payload = pickle.dumps(("cache_stats", request_id, time.perf_counter()))
        with self._fanout_lock:
            for machine_id in live:
                try:
                    with self._send_locks[machine_id]:
                        self._connections[machine_id].send_bytes(payload)
                except (BrokenPipeError, OSError):
                    self._on_worker_death(machine_id)
        try:
            return pending.future.result(timeout=timeout_seconds)
        except FutureTimeoutError:
            with self._lock:
                self._pending_stats.pop(request_id, None)
            raise ClusterError(
                f"coverage cache stats were not collected within {timeout_seconds}s"
            ) from None
