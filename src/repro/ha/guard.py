"""Frontend hardening: idempotency keys and per-client rate limits.

Both pieces are plain thread-safe objects so one instance can be shared
by every frontend thread of a process (see
:func:`repro.ha.frontend.frontend_group`) — that sharing is what makes
"apply exactly once **across** frontends" hold.  Multi-*process*
frontends would need the same state in an external store; the
interfaces here are deliberately tiny (``begin``/``finish``/``fail``,
``allow``) so such a backend can slot in behind them.

* :class:`IdempotencyIndex` — at-most-once update submission.  The
  first frontend to ``begin(key)`` becomes the owner and actually
  applies; concurrent duplicates block until the owner finishes and
  then receive the owner's recorded reply; later duplicates get it
  straight from the (bounded, LRU) replay window.  A failed owner
  clears the key so the client's retry genuinely re-runs.
* :class:`TokenBucketLimiter` — a token bucket per client key.  Burst
  capacity ``burst``, refill ``rate`` tokens/second, monotonic clock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["IdempotencyIndex", "TokenBucketLimiter", "FrontendGuard"]


class IdempotencyIndex:
    """At-most-once bookkeeping for keyed update submissions."""

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._capacity = max(1, capacity)
        self._inflight: dict[str, threading.Event] = {}
        self._replies: OrderedDict[str, dict] = OrderedDict()
        self.deduped = 0
        self.owned = 0

    def begin(self, key: str, timeout_seconds: float = 60.0) -> tuple[bool, dict | None]:
        """Claim ``key``. Returns ``(owner, cached_reply)``.

        ``(True, None)`` — caller owns the key and must ``finish`` or
        ``fail`` it.  ``(False, reply)`` — a twin already completed (or
        completed while we waited); serve its recorded reply.
        ``(False, None)`` — the owner failed or the wait timed out;
        treat as a retryable miss (callers re-``begin``).
        """
        while True:
            with self._lock:
                reply = self._replies.get(key)
                if reply is not None:
                    self._replies.move_to_end(key)
                    self.deduped += 1
                    return False, dict(reply)
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    self.owned += 1
                    return True, None
            if not event.wait(timeout_seconds):
                return False, None
            with self._lock:
                reply = self._replies.get(key)
                if reply is not None:
                    self._replies.move_to_end(key)
                    self.deduped += 1
                    return False, dict(reply)
                if key not in self._inflight:
                    # Owner failed and cleared the key: the caller's own
                    # attempt should re-run, so report a miss.
                    return False, None
            # The event fired but a new owner re-claimed in between —
            # loop and wait on the fresh event.

    def finish(self, key: str, reply: dict) -> None:
        """Record the owner's reply and wake every waiting duplicate."""
        with self._lock:
            self._replies[key] = dict(reply)
            self._replies.move_to_end(key)
            while len(self._replies) > self._capacity:
                self._replies.popitem(last=False)
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def fail(self, key: str) -> None:
        """Clear a failed attempt so a retry with the same key re-runs."""
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def stats(self) -> dict[str, int]:
        """Return counters for owned, deduplicated, and in-flight keys."""
        with self._lock:
            return {
                "owned": self.owned,
                "deduped": self.deduped,
                "inflight": len(self._inflight),
                "replay_window": len(self._replies),
            }


class TokenBucketLimiter:
    """Per-client token buckets: ``burst`` capacity, ``rate``/s refill."""

    def __init__(self, rate: float, burst: float, max_clients: int = 8192) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self._rate = rate
        self._burst = burst
        self._max_clients = max(1, max_clients)
        self._lock = threading.Lock()
        # key -> (tokens, last_refill); LRU-bounded so hostile clients
        # can't grow the table without bound.
        self._buckets: OrderedDict[str, tuple[float, float]] = OrderedDict()
        self.limited = 0

    def allow(self, key: str, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens from ``key``'s bucket; False when exhausted."""
        now = time.monotonic()
        with self._lock:
            tokens, last = self._buckets.get(key, (self._burst, now))
            tokens = min(self._burst, tokens + (now - last) * self._rate)
            allowed = tokens >= cost
            if allowed:
                tokens -= cost
            else:
                self.limited += 1
            self._buckets[key] = (tokens, now)
            self._buckets.move_to_end(key)
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
        return allowed

    def stats(self) -> dict[str, float]:
        """Return the configured rate/burst and throttling counters."""
        with self._lock:
            return {
                "rate": self._rate,
                "burst": self._burst,
                "clients": len(self._buckets),
                "limited": self.limited,
            }


@dataclass
class FrontendGuard:
    """The shared hardening state of a frontend group.

    ``rate_limiter`` is optional (``None`` = unlimited); the idempotency
    index is always on — an unkeyed update simply bypasses it.
    """

    idempotency: IdempotencyIndex = field(default_factory=IdempotencyIndex)
    rate_limiter: TokenBucketLimiter | None = None

    def allow(self, client_key: str) -> bool:
        """Check ``client_key`` against the rate limiter (always True if none)."""
        if self.rate_limiter is None:
            return True
        return self.rate_limiter.allow(client_key)

    def stats(self) -> dict[str, object]:
        """Combined idempotency + rate-limiter stats for the ``ha`` block."""
        out: dict[str, object] = {"idempotency": self.idempotency.stats()}
        if self.rate_limiter is not None:
            out["rate_limiter"] = self.rate_limiter.stats()
        return out
