"""Multi-frontend scale-out: several DisksServers over one cluster.

One :class:`repro.serve.DisksServer` is one asyncio loop — a hard
single-thread ceiling on frame decode, admission, and reply encode, and
its ``max_inflight`` admission gate caps the concurrency one frontend
will push into the workers.  :func:`frontend_group` stands up ``count``
independent frontends (each its own loop thread, port, metrics
registry, and admission gate) over the **same** cluster coordinator,
which is thread-safe by construction.  Closed-loop clients spread
across the group get ``count ×`` the in-flight budget and decode
capacity.

A single shared :class:`repro.ha.FrontendGuard` makes the hardening
semantics group-wide: a duplicate update keyed the same way applies
exactly once no matter which frontend each copy lands on, and a
client's token bucket drains across all of them.

In-process threads are the honest ceiling test on CPython (the loops
share the GIL but worker processes dominate query latency); real
deployments run the same topology as separate frontend processes, which
needs the guard state in an external store — the guard interface is
shaped for that swap.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator

from repro.ha.guard import FrontendGuard
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import DisksServer, ServeConfig, serve_in_thread

__all__ = ["Frontend", "frontend_group"]


@dataclass(frozen=True)
class Frontend:
    """One running frontend of a group: its server plus shared guard."""

    server: DisksServer
    guard: FrontendGuard

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port or 0


@contextlib.contextmanager
def frontend_group(
    cluster,
    count: int = 2,
    *,
    config: ServeConfig | None = None,
    updater=None,
    sub_engine=None,
    guard: FrontendGuard | None = None,
) -> Iterator[list[Frontend]]:
    """Run ``count`` frontends over ``cluster``; yields one per port.

    Each frontend binds its own ephemeral port (any ``port`` in
    ``config`` is ignored beyond the first — ephemeral ports avoid
    collisions) and owns a fresh :class:`MetricsRegistry`; the guard is
    shared, defaulting to a new :class:`FrontendGuard` with no rate
    limit.
    """
    if count < 1:
        raise ValueError("a frontend group needs at least one frontend")
    base = config or ServeConfig()
    shared_guard = guard or FrontendGuard()
    with contextlib.ExitStack() as stack:
        frontends: list[Frontend] = []
        for i in range(count):
            front_config = base if i == 0 else _ephemeral(base)
            server = stack.enter_context(
                serve_in_thread(
                    cluster,
                    config=front_config,
                    metrics=MetricsRegistry(),
                    updater=updater,
                    sub_engine=sub_engine,
                    guard=shared_guard,
                )
            )
            frontends.append(Frontend(server=server, guard=shared_guard))
        yield frontends


def _ephemeral(config: ServeConfig) -> ServeConfig:
    if config.port == 0:
        return config
    from dataclasses import replace

    return replace(config, port=0)
