"""Query-level semantic result cache (epoch-aware, with subsumption).

Layered *above* the per-fragment coverage cache: where that cache
memoises one term's distance map inside one worker, this one memoises
whole query answers at the frontend, keyed by a canonicalized query
shape so that commuted-but-equivalent expressions share an entry.  Two
semantic features make it more than a memo table:

* **subsumption** — a cached ``R(ω, 500)`` answers ``R(ω, 300)`` by
  filtering the stored per-term distance maps (see
  :func:`repro.cache.keys.subsumes` for the exact-safety predicate);
* **epoch-delta invalidation** — the cache rides
  :meth:`repro.live.epochs.EpochManager.subscribe_swaps` and evicts
  only entries whose dependency set (keywords × fragment scope)
  intersects the swap, the same routing the standing-query engine uses.
"""

from repro.cache.keys import CanonicalQuery, canonicalize, filter_answer, subsumes
from repro.cache.store import CacheHit, SemanticResultCache

__all__ = [
    "CanonicalQuery",
    "CacheHit",
    "SemanticResultCache",
    "canonicalize",
    "filter_answer",
    "subsumes",
]
