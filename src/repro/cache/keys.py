"""Canonical query shapes and the radius-subsumption safety predicate.

Two queries that differ only in the *order* of commutative operands
(``A AND B`` vs ``B AND A``) should share one cache entry, and a query
that differs from a cached one only by *smaller* radii on monotone
terms should be answerable by filtering the cached distance maps.  Both
needs reduce to one normal form:

* the expression tree is flattened over same-op chains of the
  commutative operators (∪, ∩), each child canonicalized recursively,
  and siblings sorted by their radius-free shape (radii tie-break);
* ``SUBTRACT`` keeps its operand order (it is not commutative) and
  flips the *polarity* of every leaf under its right side;
* the result is a :class:`CanonicalQuery`: a hashable ``shape`` with
  radii stripped, plus parallel per-leaf vectors of radius, polarity
  and the leaf's index into the original query's term tuple.

``(shape, radii)`` is the exact cache key; ``shape`` alone is the
subsumption bucket — only entries with an identical shape can subsume.

Subsumption safety (the per-d-function predicate): a cached entry with
radii ``rᵉ`` answers a probe with radii ``rᑫ`` iff for every canonical
leaf ``j``

* positive polarity (the leaf's coverage only ever *adds* nodes to the
  answer): ``rᑫⱼ ≤ rᵉⱼ`` — the answer is monotone non-decreasing in a
  positive radius, so the probe's answer is a subset of the entry's,
  and membership is re-decidable from the stored distances (a stored
  distance is exact; ``None`` means the true distance exceeds ``rᵉⱼ``
  and therefore exceeds ``rᑫⱼ``);
* negative polarity (under the right side of a ``SUBTRACT``):
  ``rᑫⱼ = rᵉⱼ`` exactly.  Shrinking a subtracted radius *grows* the
  answer beyond the stored node set, and growing it is undecidable
  from the stored maps (``None`` cannot distinguish "just past rᵉ"
  from "unreachable"), so only equality is exact-safe.

:func:`filter_answer` then re-evaluates the boolean form of the shape
per stored node — set ∪/∩/− are pointwise or/and/and-not — which is
exact under the predicate above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dfunction import DExpression, SetOp
from repro.core.queries import KeywordSource, NodeSource, QClassQuery
from repro.exceptions import QueryError

__all__ = ["CanonicalQuery", "canonicalize", "filter_answer", "subsumes"]


@dataclass(frozen=True)
class CanonicalQuery:
    """A query reduced to the cache's normal form.

    ``shape`` is the radius-free canonical expression (nested tuples —
    hashable, orderable); the remaining fields are parallel per-leaf
    vectors in canonical leaf order.  ``term_indexes[j]`` maps canonical
    leaf ``j`` back to the originating query's ``terms`` tuple, which is
    also the column order of the per-node distance tuples produced by
    :func:`repro.core.executor.execute_fragment_task_explained`.
    """

    shape: tuple
    radii: tuple[float, ...]
    polarities: tuple[int, ...]
    term_indexes: tuple[int, ...]
    keywords: frozenset[str]

    @property
    def key(self) -> tuple:
        """The exact-match cache key: shape plus the radius vector."""
        return (self.shape, self.radii)

    @property
    def radius_dependent(self) -> bool:
        """True if any leaf has a positive radius.

        Radius-0 terms (``HAS(ω)``) depend only on keyword placement,
        never on edge weights, so pure-HAS entries survive topology
        swaps.
        """
        return any(radius > 0 for radius in self.radii)


def _leaf_shape(query: QClassQuery, index: int) -> tuple:
    term = query.terms[index]
    source = term.source
    if isinstance(source, KeywordSource):
        return ("term", ("kw", source.keyword))
    if isinstance(source, NodeSource):
        return ("term", ("node", source.node))
    raise QueryError(f"uncacheable coverage source {source!r}")


def _flatten(expression: DExpression, op: SetOp):
    """Yield the maximal same-op chain's children, left to right."""
    if expression.op is op:
        yield from _flatten(expression.left, op)
        yield from _flatten(expression.right, op)
    else:
        yield expression


def _canon(
    expression: DExpression, sign: int, query: QClassQuery
) -> tuple[tuple, list[tuple[int, int, float]]]:
    """Return ``(shape, leaves)`` with leaves as ``(term_index, sign, radius)``.

    Sorting soundness: siblings of a commutative op are ordered by
    ``(shape, radii)``.  When two siblings tie on shape they reference
    the same sources with the same polarities, so any positional pairing
    between an entry's leaves and a probe's leaves pairs leaves of
    identical source and polarity — the subsumption predicate and the
    filter stay exact even if the radii tie-break ordered them
    differently on the two sides.
    """
    if expression.op is None:
        term = query.terms[expression.index]
        return _leaf_shape(query, expression.index), [
            (expression.index, sign, term.radius)
        ]
    if expression.op is SetOp.SUBTRACT:
        left_shape, left_leaves = _canon(expression.left, sign, query)
        right_shape, right_leaves = _canon(expression.right, -sign, query)
        return ("not", left_shape, right_shape), left_leaves + right_leaves
    tag = "and" if expression.op is SetOp.INTERSECT else "or"
    parts = [_canon(child, sign, query) for child in _flatten(expression, expression.op)]
    parts.sort(key=lambda part: (part[0], tuple(leaf[2] for leaf in part[1])))
    shape = (tag, tuple(child_shape for child_shape, _leaves in parts))
    leaves = [leaf for _shape, child_leaves in parts for leaf in child_leaves]
    return shape, leaves


def canonicalize(query: QClassQuery) -> CanonicalQuery:
    """Reduce ``query`` to its canonical cache form."""
    shape, leaves = _canon(query.expression, +1, query)
    return CanonicalQuery(
        shape=shape,
        radii=tuple(radius for _index, _sign, radius in leaves),
        polarities=tuple(sign for _index, sign, _radius in leaves),
        term_indexes=tuple(index for index, _sign, _radius in leaves),
        keywords=frozenset(query.keywords()),
    )


def subsumes(entry: CanonicalQuery, probe: CanonicalQuery) -> bool:
    """True iff the entry's stored answer can *exactly* answer the probe.

    Requires identical shapes (same sources, operators and polarities),
    then applies the per-leaf radius predicate documented in the module
    docstring.  An exact key match also satisfies this (every leaf
    equal); callers check the exact key first so a subsumption hit
    implies at least one strictly smaller positive radius.
    """
    if entry.shape != probe.shape:
        return False
    for sign, entry_radius, probe_radius in zip(
        entry.polarities, entry.radii, probe.radii
    ):
        if sign > 0:
            if probe_radius > entry_radius:
                return False
        elif probe_radius != entry_radius:
            return False
    return True


def _evaluate(
    shape: tuple,
    position: int,
    distances: tuple,
    term_indexes: tuple[int, ...],
    radii: tuple[float, ...],
) -> tuple[bool, int]:
    """Evaluate the boolean form of ``shape`` for one node.

    ``distances`` is the node's stored per-term tuple (entry term
    order); ``term_indexes`` maps the canonical leaf cursor into it and
    ``radii`` supplies the *probe's* per-leaf radius.  Returns the truth
    value and the advanced leaf cursor.
    """
    tag = shape[0]
    if tag == "term":
        distance = distances[term_indexes[position]]
        return (distance is not None and distance <= radii[position]), position + 1
    if tag == "not":
        left, position = _evaluate(shape[1], position, distances, term_indexes, radii)
        right, position = _evaluate(shape[2], position, distances, term_indexes, radii)
        return (left and not right), position
    if tag == "and":
        value = True
        for child in shape[1]:
            child_value, position = _evaluate(
                child, position, distances, term_indexes, radii
            )
            value = value and child_value
        return value, position
    value = False
    for child in shape[1]:
        child_value, position = _evaluate(
            child, position, distances, term_indexes, radii
        )
        value = value or child_value
    return value, position


def filter_answer(
    entry: CanonicalQuery,
    probe: CanonicalQuery,
    distances: dict[int, tuple],
) -> frozenset[int]:
    """Exact probe answer, filtered from an entry's stored distance maps.

    ``distances`` maps each node of the *entry's* answer to its per-term
    distance tuple.  Sound only when ``subsumes(entry, probe)`` holds:
    shrinking positive radii can only shrink the answer (monotone
    boolean over monotone leaves), so no node outside the stored set
    can enter, and every stored node's membership is re-decidable from
    the stored distances.
    """
    result = set()
    for node, node_distances in distances.items():
        keep, _position = _evaluate(
            entry.shape, 0, node_distances, entry.term_indexes, probe.radii
        )
        if keep:
            result.add(node)
    return frozenset(result)
