"""The semantic result cache: LRU store + epoch-delta invalidation.

Concurrency contract: :meth:`SemanticResultCache.probe` and
:meth:`~SemanticResultCache.admit` run on the serving thread(s);
:meth:`~SemanticResultCache.on_swap` runs on the updater thread as an
:meth:`EpochManager.subscribe_swaps` subscriber — *after* the cluster
has swapped (regular subscribers fire first) and *inside* the apply
lock, so an update ack reaches the client only once invalidation has
completed (read-your-writes).  One internal lock serialises all three.

Epoch recheck at admission: a probe that misses records the epoch it
saw; :meth:`admit` inserts only if that epoch is still current.  The
race this closes: query Q probes at epoch e, an update swaps the
cluster to e+1 while Q's answer is in flight, then Q's (pre- or
post-swap — the fan-out lock makes it one or the other on all
machines) answer returns.  If the swap's invalidation ran first, the
stale answer must not be admitted under e+1 — the epoch check rejects
it.  If admission wins the lock first, the entry lands stamped ``e``
and the swap's eviction scan (or, for entries the swap does not
touch, the fact that the answer is identical at both epochs) makes it
safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.cache.keys import CanonicalQuery, canonicalize, filter_answer, subsumes
from repro.core.queries import QClassQuery
from repro.sub.registry import compute_scope

__all__ = ["AdmissionTicket", "CacheHit", "SemanticResultCache"]

# Deterministic size model (bytes) — an estimate for LRU budgeting, not
# an exact measurement; stable across interpreters so tests can pin it.
_ENTRY_OVERHEAD = 256
_PER_FRAGMENT_OVERHEAD = 64
_PER_NODE = 16
_PER_DISTANCE = 16


@dataclass(frozen=True)
class CacheHit:
    """A served answer: the nodes plus how they were derived."""

    nodes: frozenset[int]
    kind: str  # "exact" | "subsumption"
    epoch: int


@dataclass(frozen=True)
class AdmissionTicket:
    """Returned by a missing probe; presents the miss-time epoch at admit."""

    canonical: CanonicalQuery
    epoch: int
    query: QClassQuery


@dataclass
class _Entry:
    canonical: CanonicalQuery
    answer: frozenset[int]
    # fragment_id -> {node -> per-term distance tuple (entry term order)};
    # None when the cluster cannot explain — the entry then serves exact
    # hits only, never subsumption.
    partials: dict[int, dict[int, tuple]] | None
    epoch: int
    scope: frozenset[int] | None  # None = depends on every fragment
    size_bytes: int = field(default=0)


def _entry_bytes(
    answer: frozenset[int], partials: dict[int, dict[int, tuple]] | None
) -> int:
    total = _ENTRY_OVERHEAD + _PER_NODE * len(answer)
    for nodes in (partials or {}).values():
        total += _PER_FRAGMENT_OVERHEAD
        for distances in nodes.values():
            total += _PER_NODE + _PER_DISTANCE * len(distances)
    return total


class SemanticResultCache:
    """Query-level result cache with subsumption and epoch invalidation.

    ``max_entries``/``max_bytes`` bound the LRU; an entry whose own size
    exceeds ``max_bytes`` is never admitted.  ``subsumption=False``
    degrades the cache to an exact-key memo table (for A/B runs).
    """

    def __init__(
        self,
        *,
        max_entries: int = 1024,
        max_bytes: int = 32 * 1024 * 1024,
        subsumption: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._subsumption = subsumption
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._by_shape: dict[tuple, set[tuple]] = {}
        self._by_keyword: dict[str, set[tuple]] = {}
        self._radius_dependent: set[tuple] = set()
        self._bytes = 0
        self._epoch = 0
        self._updater = None
        self._metrics = None
        self._hits = 0
        self._misses = 0
        self._subsumption_hits = 0
        self._evictions = 0
        self._invalidations = 0
        self._inserts = 0
        self._stale_rejects = 0
        self._oversize_rejects = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, metrics) -> None:
        """Mirror counters/gauges into a MetricsRegistry (Prometheus)."""
        self._metrics = metrics
        metrics.observe_gauge("cache_entries", 0)
        metrics.observe_gauge("cache_bytes", 0)

    def attach(self, updater) -> None:
        """Ride the updater's swap feed; seed the current epoch."""
        self._updater = updater
        with self._lock:
            self._epoch = updater.epoch
        updater.subscribe_swaps(self.on_swap)

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------
    def probe(
        self, query: QClassQuery
    ) -> tuple[CacheHit | None, AdmissionTicket | None]:
        """Look the query up; a miss returns a ticket for later admission."""
        canonical = canonicalize(query)
        with self._lock:
            key = canonical.key
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                self._count("cache_hits")
                return CacheHit(entry.answer, "exact", entry.epoch), None
            if self._subsumption:
                for other_key in self._by_shape.get(canonical.shape, ()):
                    other = self._entries[other_key]
                    if other.partials is None:
                        continue  # no distance maps — exact hits only
                    if not subsumes(other.canonical, canonical):
                        continue
                    nodes: set[int] = set()
                    for partial in other.partials.values():
                        nodes |= filter_answer(other.canonical, canonical, partial)
                    self._entries.move_to_end(other_key)
                    self._subsumption_hits += 1
                    self._count("cache_subsumption_hits")
                    return CacheHit(frozenset(nodes), "subsumption", other.epoch), None
            self._misses += 1
            self._count("cache_misses")
            return None, AdmissionTicket(canonical, self._epoch, query)

    def admit(
        self,
        ticket: AdmissionTicket,
        answer: frozenset[int],
        partials: dict[int, dict[int, tuple]] | None,
    ) -> bool:
        """Insert a computed answer — unless the epoch moved since the probe."""
        return self.admit_outcome(ticket, answer, partials) == "admitted"

    def admit_outcome(
        self,
        ticket: AdmissionTicket,
        answer: frozenset[int],
        partials: dict[int, dict[int, tuple]] | None,
    ) -> str:
        """Like :meth:`admit`, but names the outcome.

        Returns ``"admitted"``, ``"stale"`` (epoch moved since the
        probe — the race window tail-based trace retention keeps),
        ``"oversize"`` or ``"duplicate"``.
        """
        scope = self._compute_scope(ticket.query)
        size = _entry_bytes(answer, partials)
        with self._lock:
            if ticket.epoch != self._epoch:
                self._stale_rejects += 1
                return "stale"
            if size > self._max_bytes:
                self._oversize_rejects += 1
                return "oversize"
            key = ticket.canonical.key
            if key in self._entries:  # concurrent identical miss already landed
                self._entries.move_to_end(key)
                return "duplicate"
            entry = _Entry(
                canonical=ticket.canonical,
                answer=frozenset(answer),
                partials=partials,
                epoch=ticket.epoch,
                scope=scope,
                size_bytes=size,
            )
            self._entries[key] = entry
            self._index(key, entry)
            self._bytes += size
            self._inserts += 1
            while len(self._entries) > self._max_entries or self._bytes > self._max_bytes:
                victim_key, victim = self._entries.popitem(last=False)
                self._unindex(victim_key, victim)
                self._bytes -= victim.size_bytes
                self._evictions += 1
                self._count("cache_evictions")
            self._gauges()
        return "admitted"

    def _compute_scope(self, query: QClassQuery) -> frozenset[int] | None:
        """Fragment-dependency scope, from the updater's current indexes.

        Mirrors the standing-query registry: an out-of-scope fragment
        provably contributes nothing to the restricting terms, so
        keyword churn confined to it cannot change the answer.  Without
        an updater the cache never sees swaps, so the scope is moot.
        """
        if self._updater is None:
            return None
        state = self._updater.state
        return compute_scope(query, state.fragments, state.indexes)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def on_swap(self, state, delta, swap) -> None:
        """Epoch-delta invalidation: evict only what the swap can affect.

        Topology change (any op without a keyword): every
        radius-dependent entry goes — edge weights reach arbitrarily far
        through coverage radii, and a stale fragment scope may even be
        too small.  Pure-HAS entries (all radii 0) survive unless their
        keywords changed.  Keyword churn: an entry goes iff one of its
        keywords changed AND its fragment scope intersects the changed
        fragments (an unscoped entry intersects everything).
        """
        with self._lock:
            victims: set[tuple] = set()
            if swap.topology_changed:
                victims |= self._radius_dependent
            if swap.changed_keywords:
                changed_fragments = set(swap.changed_fragments)
                for keyword in swap.changed_keywords:
                    for key in self._by_keyword.get(keyword, ()):
                        entry = self._entries[key]
                        if entry.scope is None or entry.scope & changed_fragments:
                            victims.add(key)
            for key in victims:
                entry = self._entries.pop(key)
                self._unindex(key, entry)
                self._bytes -= entry.size_bytes
                self._invalidations += 1
                self._count("cache_evictions")
            self._epoch = swap.epoch
            self._gauges()

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._by_shape.clear()
            self._by_keyword.clear()
            self._radius_dependent.clear()
            self._bytes = 0
            self._evictions += dropped
            self._gauges()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def stats(self) -> dict[str, object]:
        """Counter/config snapshot (the ``result_cache`` stats block)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self._hits,
                "misses": self._misses,
                "subsumption_hits": self._subsumption_hits,
                "evictions": self._evictions + self._invalidations,
                "invalidations": self._invalidations,
                "inserts": self._inserts,
                "stale_rejects": self._stale_rejects,
                "oversize_rejects": self._oversize_rejects,
                "epoch": self._epoch,
                "subsumption": self._subsumption,
                "max_entries": self._max_entries,
                "max_bytes": self._max_bytes,
            }

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _index(self, key: tuple, entry: _Entry) -> None:
        self._by_shape.setdefault(entry.canonical.shape, set()).add(key)
        for keyword in entry.canonical.keywords:
            self._by_keyword.setdefault(keyword, set()).add(key)
        if entry.canonical.radius_dependent:
            self._radius_dependent.add(key)

    def _unindex(self, key: tuple, entry: _Entry) -> None:
        bucket = self._by_shape.get(entry.canonical.shape)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._by_shape[entry.canonical.shape]
        for keyword in entry.canonical.keywords:
            bucket = self._by_keyword.get(keyword)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_keyword[keyword]
        self._radius_dependent.discard(key)

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.increment(name)

    def _gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.observe_gauge("cache_entries", len(self._entries))
            self._metrics.observe_gauge("cache_bytes", self._bytes)
