"""Pipelined worker protocol: many queries in flight per worker.

:class:`~repro.dist.process_cluster.ProcessCluster` speaks a lockstep
protocol — the coordinator broadcasts one query and blocks until every
worker has answered, so a second query cannot even be *sent* while the
first is running.  That is fine for validating the simulation
methodology but hopeless as a serving substrate: the paper's motivation
is query *throughput* under concurrent load (§1), which needs the
workers busy continuously.

This module extends the worker loop with **request-id multiplexing**:

* every query message carries a coordinator-assigned ``request_id`` and
  every reply echoes it back, so replies may arrive in any order and
  any interleaving across queries;
* the coordinator runs one **dispatcher thread per worker** that
  matches replies to the :class:`concurrent.futures.Future` registered
  at submit time, instead of the send-all/recv-all lockstep;
* :meth:`PipelinedCluster.submit` therefore returns immediately — any
  number of queries can be in flight, and each worker drains its input
  pipe back-to-back (total time ``max_m Σ_q τ_qm`` rather than the
  lockstep's ``Σ_q max_m τ_qm``).

Worker-crash semantics: a dispatcher that sees EOF on its pipe marks
the worker dead, fails *only the in-flight queries still awaiting that
worker* with :class:`ClusterError`, and flips the cluster into degraded
mode — subsequent queries run on the surviving workers and carry
``degraded=True`` (their answers miss the dead machine's fragments)
instead of hanging the coordinator.

Live updates (:meth:`PipelinedCluster.apply_updates`) ride the same
multiplexed pipes.  Torn-epoch prevention rests on two properties:

* each pipe is FIFO and each worker handles its messages serially, so
  relative to one worker a query runs entirely before or entirely after
  the epoch swap;
* every fan-out (query or apply) happens under one coordinator-wide
  ``_fanout_lock``, so the *order* of a query relative to an apply is
  the same on every pipe.

Together: a concurrent query observes the old epoch on all machines or
the new epoch on all machines — never a mix.  An apply to a worker that
dies mid-swap completes on the survivors (the dead machine's fragments
are unanswerable anyway — degraded mode).
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import traceback
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess

from repro.core.executor import execute_fragment_task, execute_fragment_task_explained
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.network import NetworkModel
from repro.dist.process_cluster import (
    build_worker_runtimes,
    emulate_delivery,
    finish_worker_spans,
    spawn_workers,
    worker_trace_collector,
)
from repro.exceptions import ClusterError
from repro.obs.trace import Span, SpanCollector, TraceContext
from repro.serve import wire
from repro.shm import SharedSegmentStore

__all__ = ["PipelinedResponse", "PendingQuery", "PendingApply", "PipelinedCluster"]

_DEFAULT_TIMEOUT = 120.0


def _pipelined_worker_main(connection: Connection, payload: bytes) -> None:
    """Worker loop: one tagged reply per tagged request, errors included.

    Unlike the lockstep worker, a task failure poisons only its own
    request — the loop keeps serving afterwards.  Requests may arrive
    pickled or as binary pipe frames (:func:`repro.serve.wire.loads_pipe`
    sniffs the first byte); a reply is sent in the encoding its request
    arrived in, so the coordinator can migrate one message class at a
    time.  Traced queries and all control traffic stay pickled.
    """
    registry = None
    try:
        mode, data, network_model, compiled = pickle.loads(payload)
        registry, runtimes = build_worker_runtimes(mode, data, compiled)
        connection.send(("ready", len(runtimes)))
        while True:
            raw = connection.recv_bytes()
            binary = raw[0] != 0x80  # pickle protocol ≥ 2 opcode
            kind, body, *meta = wire.loads_pipe(raw)
            if kind == "stop":
                connection.send(("stopped", None))
                return
            if kind == "apply_shm":
                emulate_delivery(network_model, meta[0] if meta else None, len(raw))
                request_id, epoch, manifests = body
                try:
                    started = time.perf_counter()
                    swapped = registry.attach(manifests)
                    runtimes = registry.runtimes()
                    elapsed = time.perf_counter() - started
                    connection.send_bytes(
                        pickle.dumps(
                            (
                                "applied",
                                (request_id, epoch, swapped, elapsed),
                                time.perf_counter(),
                            )
                        )
                    )
                except Exception:
                    connection.send(("error", (request_id, traceback.format_exc())))
                continue
            if kind == "apply":
                emulate_delivery(network_model, meta[0] if meta else None, len(raw))
                request_id, epoch, new_pairs = body
                try:
                    started = time.perf_counter()
                    hosted = {rt.fragment.fragment_id: rt for rt in runtimes}
                    swapped = []
                    for fragment, index in new_pairs:
                        runtime = hosted.get(fragment.fragment_id)
                        if runtime is not None:
                            runtime.refresh(fragment, index)
                            swapped.append(fragment.fragment_id)
                    elapsed = time.perf_counter() - started
                    connection.send_bytes(
                        pickle.dumps(
                            (
                                "applied",
                                (request_id, epoch, swapped, elapsed),
                                time.perf_counter(),
                            )
                        )
                    )
                except Exception:
                    connection.send(("error", (request_id, traceback.format_exc())))
                continue
            if kind == "cache_stats":
                # Control round-trip: aggregate this worker's per-runtime
                # coverage-cache counters (shm runtimes report zeros).
                request_id = body
                totals = {"hits": 0, "misses": 0, "skipped": 0}
                for rt in runtimes:
                    stats = rt.cache_stats
                    totals["hits"] += stats.hits
                    totals["misses"] += stats.misses
                    totals["skipped"] += stats.skipped
                connection.send_bytes(
                    pickle.dumps(("stats", (request_id, totals), time.perf_counter()))
                )
                continue
            if kind == "explain":
                # Like "query", but each fragment also returns the exact
                # per-term distances of its result nodes — the payload the
                # semantic result cache stores for subsumption filtering.
                # Always pickled: the distance dicts don't fit the binary
                # result frame, and explain traffic is cache-miss-rate only.
                emulate_delivery(network_model, meta[0] if meta else None, len(raw))
                request_id, query = body
                try:
                    started = time.perf_counter()
                    explained = [
                        execute_fragment_task_explained(rt, query) for rt in runtimes
                    ]
                    elapsed = time.perf_counter() - started
                    reply = [
                        (result.fragment_id, explanations, result.wall_seconds)
                        for result, explanations in explained
                    ]
                    connection.send_bytes(
                        pickle.dumps(
                            ("results", (request_id, reply, elapsed), time.perf_counter())
                        )
                    )
                except Exception:
                    connection.send(("error", (request_id, traceback.format_exc())))
                continue
            if kind != "query":  # pragma: no cover - protocol guard
                connection.send(("error", (None, f"unknown message kind {kind!r}")))
                continue
            emulate_delivery(network_model, meta[0] if meta else None, len(raw))
            received = time.perf_counter()
            request_id, query, trace_wire = body
            try:
                collector, parent_id = worker_trace_collector(
                    trace_wire, meta[0] if meta else None, received, len(raw)
                )
                started = time.perf_counter()
                results = [
                    execute_fragment_task(
                        rt, query, collector=collector, parent_id=parent_id
                    )
                    for rt in runtimes
                ]
                elapsed = time.perf_counter() - started
                reply = [
                    (r.fragment_id, set(r.local_result), r.wall_seconds)
                    for r in results
                ]
                if collector is not None:
                    body_out = (
                        request_id,
                        reply,
                        elapsed,
                        finish_worker_spans(collector, parent_id, reply, elapsed),
                    )
                    connection.send_bytes(
                        pickle.dumps(("results", body_out, time.perf_counter()))
                    )
                elif binary:
                    connection.send_bytes(
                        wire.dumps_pipe_results(
                            request_id, reply, elapsed, time.perf_counter()
                        )
                    )
                else:
                    connection.send_bytes(
                        pickle.dumps(
                            ("results", (request_id, reply, elapsed), time.perf_counter())
                        )
                    )
            except Exception:
                connection.send(("error", (request_id, traceback.format_exc())))
    except (EOFError, OSError):  # coordinator went away
        return
    finally:
        if registry is not None:
            registry.release_all()


@dataclass(frozen=True)
class PipelinedResponse:
    """Outcome of one pipelined query.

    ``degraded`` marks answers computed after a worker death: correct
    for the surviving fragments, silent about the dead machine's.
    """

    result_nodes: frozenset[int]
    fragment_seconds: dict[int, float]
    machine_seconds: dict[int, float]
    wall_seconds: float
    message_bytes: int
    degraded: bool = False
    spans: tuple[Span, ...] = ()
    # Explain mode only: fragment_id -> {node -> per-term distances}.
    partials: dict[int, dict[int, tuple]] | None = None
    # HA only: >0 when any failover (reroute or restart) touched this query.
    attempt: int = 0


@dataclass(frozen=True)
class PendingQuery:
    """Handle for an in-flight query: its id plus the result future."""

    request_id: int
    future: "Future[PipelinedResponse]"


@dataclass(frozen=True)
class PendingApply:
    """Handle for an in-flight epoch apply: resolves to an ack summary."""

    request_id: int
    epoch: int
    future: "Future[dict[str, object]]"


class _InFlightApply:
    """Coordinator-side state for one epoch delta being applied."""

    __slots__ = (
        "future",
        "epoch",
        "awaiting",
        "started",
        "swapped",
        "message_bytes",
        "manifests",
    )

    def __init__(self, epoch: int, awaiting: set[int]) -> None:
        self.future: Future[dict[str, object]] = Future()
        self.epoch = epoch
        self.awaiting = awaiting
        self.started = time.perf_counter()
        self.swapped: list[int] = []
        self.message_bytes = 0
        # machine_id -> the segment manifests shipped to it (shm mode);
        # an ack moves that machine's store leases to the new epoch.
        self.manifests: dict[int, list] = {}


class _InFlight:
    """Coordinator-side aggregation state for one request id."""

    __slots__ = (
        "future",
        "awaiting",
        "started",
        "degraded",
        "merged",
        "fragment_seconds",
        "machine_seconds",
        "message_bytes",
        "collector",
        "root",
        "dispatch_spans",
        "partials",
    )

    def __init__(self, awaiting: set[int], degraded: bool) -> None:
        self.future: Future[PipelinedResponse] = Future()
        self.awaiting = awaiting
        self.started = time.perf_counter()
        self.degraded = degraded
        self.merged: set[int] = set()
        self.fragment_seconds: dict[int, float] = {}
        self.machine_seconds: dict[int, float] = {}
        self.message_bytes = 0
        self.collector: SpanCollector | None = None
        self.root: Span | None = None
        self.dispatch_spans: dict[int, Span] = {}
        self.partials: dict[int, dict[int, tuple]] = {}


class _InFlightStats:
    """Coordinator-side aggregation for one coverage-cache stats sweep."""

    __slots__ = ("future", "awaiting", "totals")

    def __init__(self, awaiting: set[int]) -> None:
        self.future: Future[dict[str, int]] = Future()
        self.awaiting = awaiting
        self.totals: dict[str, int] = {"hits": 0, "misses": 0, "skipped": 0}


class PipelinedCluster:
    """Worker processes behind a request-id-multiplexing coordinator.

    Use as a context manager, like :class:`ProcessCluster`::

        with PipelinedCluster.start(fragments, indexes, num_machines=4) as cluster:
            pending = [cluster.submit(q) for q in queries]   # all in flight
            answers = [p.future.result() for p in pending]
    """

    def __init__(
        self,
        processes: list[BaseProcess],
        connections: list[Connection],
        network_model: NetworkModel | None = None,
        fragment_assignments: list[list[int]] | None = None,
        shm_store: SharedSegmentStore | None = None,
        startup_bytes: list[int] | None = None,
        pipe_wire: str = "pickle",
    ) -> None:
        self._processes = processes
        self._connections = connections
        self._network_model = network_model
        self._assignments = fragment_assignments or [[] for _ in processes]
        self._shm_store = shm_store
        self.startup_bytes = startup_bytes or []
        self._pipe_wire = pipe_wire
        self._send_locks = [threading.Lock() for _ in connections]
        # Serialises whole fan-outs (query vs apply) so their relative
        # order is identical on every pipe — the torn-epoch guard.
        self._fanout_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: dict[int, _InFlight] = {}
        self._pending_applies: dict[int, _InFlightApply] = {}
        self._pending_stats: dict[int, _InFlightStats] = {}
        self._ids = itertools.count()
        self._dead: set[int] = set()
        self._alive = True
        self._closing = False
        self._dispatchers: list[threading.Thread] = []
        self.current_epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        fragments: list[Fragment],
        indexes: list[NPDIndex],
        *,
        num_machines: int | None = None,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
        network_model: NetworkModel | None = None,
        compiled: bool = True,
        use_shm: bool = False,
        pipe_wire: str = "binary",
    ) -> "PipelinedCluster":
        """Fork the workers, handshake, then start the dispatchers.

        ``network_model`` makes workers emulate the modelled link by
        sleeping for each message's transfer time (see
        :func:`~repro.dist.process_cluster.spawn_workers`); pipelining
        then overlaps those transfers across in-flight queries, which is
        precisely the dispatch win this class exists for.  ``compiled``
        selects the packed kernel (default) or the dict-based reference
        evaluator in the workers.

        ``use_shm`` hands fragments to workers as shared-memory segment
        manifests (:mod:`repro.shm`) instead of pickled state.
        ``pipe_wire`` selects the encoding of *untraced* query traffic on
        the worker pipes: ``"binary"`` (default — the struct-packed
        frames of :mod:`repro.serve.wire`) or ``"pickle"`` (the legacy
        path, kept for A/B benchmarking).  Workers answer in whichever
        encoding each request arrived in, so the two interoperate.
        """
        if pipe_wire not in ("binary", "pickle"):
            raise ClusterError(f"unknown pipe wire encoding {pipe_wire!r}")
        shm_store = SharedSegmentStore() if use_shm else None
        processes, connections, assignments, startup_bytes = spawn_workers(
            fragments,
            indexes,
            num_machines,
            _pipelined_worker_main,
            network_model,
            compiled,
            shm_store,
        )
        cluster = cls(
            processes,
            connections,
            network_model,
            assignments,
            shm_store,
            startup_bytes,
            pipe_wire,
        )
        for machine_id, connection in enumerate(connections):
            if not connection.poll(timeout_seconds):
                cluster.shutdown()
                raise ClusterError(
                    f"worker {machine_id} did not report ready within {timeout_seconds}s"
                )
            try:
                kind, body = connection.recv()
            except (EOFError, OSError):
                cluster.shutdown()
                raise ClusterError(f"worker {machine_id} died during startup") from None
            if kind != "ready":
                cluster.shutdown()
                raise ClusterError(f"worker {machine_id} failed to start: {body}")
        cluster._start_dispatchers()
        return cluster

    def _start_dispatchers(self) -> None:
        for machine_id, connection in enumerate(self._connections):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(machine_id, connection),
                name=f"disks-dispatch-{machine_id}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)

    def __enter__(self) -> "PipelinedCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    @property
    def num_machines(self) -> int:
        """Worker-process count (dead ones included)."""
        return len(self._processes)

    @property
    def dead_machines(self) -> frozenset[int]:
        """Machine ids whose worker has died."""
        with self._lock:
            return frozenset(self._dead)

    @property
    def degraded(self) -> bool:
        """True once any worker has died; answers are then partial."""
        with self._lock:
            return bool(self._dead)

    def shutdown(self, timeout_seconds: float = 10.0) -> None:
        """Stop workers and dispatchers; fail anything still pending."""
        if not self._alive:
            return
        self._alive = False
        self._closing = True
        with self._lock:
            dead = set(self._dead)
        for machine_id, connection in enumerate(self._connections):
            if machine_id in dead:
                continue
            try:
                with self._send_locks[machine_id]:
                    connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=timeout_seconds)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        for connection in self._connections:
            connection.close()
        for thread in self._dispatchers:
            thread.join(timeout=timeout_seconds)
        if self._shm_store is not None:
            self._shm_store.unlink_all()
        with self._lock:
            leftover = list(self._pending.values())
            self._pending.clear()
            leftover_applies = list(self._pending_applies.values())
            self._pending_applies.clear()
            leftover_stats = list(self._pending_stats.values())
            self._pending_stats.clear()
        for inflight in leftover:
            if not inflight.future.done():
                inflight.future.set_exception(
                    ClusterError("the cluster was shut down mid-query")
                )
        for apply in leftover_applies:
            if not apply.future.done():
                apply.future.set_exception(
                    ClusterError("the cluster was shut down mid-apply")
                )
        for pending in leftover_stats:
            if not pending.future.done():
                pending.future.set_exception(
                    ClusterError("the cluster was shut down mid-stats")
                )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self, machine_id: int, connection: Connection) -> None:
        """Match this worker's replies to pending futures, until EOF."""
        while True:
            try:
                raw = connection.recv_bytes()
            except (EOFError, OSError):
                if not self._closing:
                    self._on_worker_death(machine_id)
                return
            kind, body, *meta = wire.loads_pipe(raw)
            if kind == "stopped":
                return
            emulate_delivery(self._network_model, meta[0] if meta else None, len(raw))
            if kind == "error":
                request_id, text = body
                if request_id is not None:
                    self._fail_request(
                        request_id,
                        ClusterError(f"worker {machine_id} failed:\n{text}"),
                    )
                continue
            if kind == "applied":
                request_id, epoch, swapped, elapsed = body
                self._absorb_apply_ack(machine_id, request_id, swapped, len(raw))
                continue
            if kind == "stats":
                request_id, totals = body
                self._absorb_stats(machine_id, request_id, totals)
                continue
            request_id, reply, elapsed, *extra = body
            self._absorb_reply(
                machine_id,
                request_id,
                reply,
                elapsed,
                len(raw),
                extra[0] if extra else None,
            )

    def _absorb_reply(
        self,
        machine_id: int,
        request_id: int,
        reply: list[tuple[int, set[int], float]],
        elapsed: float,
        wire_bytes: int,
        spans: list[Span] | None = None,
    ) -> None:
        with self._lock:
            inflight = self._pending.get(request_id)
            if inflight is None:  # timed out / forgotten — drop the late reply
                return
            inflight.machine_seconds[machine_id] = elapsed
            inflight.message_bytes += wire_bytes
            for fragment_id, nodes, seconds in reply:
                # Explain replies carry {node -> distances} dicts; plain
                # replies carry node sets.  Either way the keys/elements
                # are the fragment's result nodes.
                if isinstance(nodes, dict):
                    inflight.partials[fragment_id] = nodes
                inflight.merged.update(nodes)
                inflight.fragment_seconds[fragment_id] = seconds
            if spans and inflight.collector is not None:
                for span in spans:
                    span.machine_id = machine_id
                inflight.collector.extend(spans)
            dispatch = inflight.dispatch_spans.get(machine_id)
            if dispatch is not None and dispatch.end is None:
                dispatch.finish()
            inflight.awaiting.discard(machine_id)
            if inflight.awaiting:
                return
            del self._pending[request_id]
            if inflight.root is not None and inflight.root.end is None:
                inflight.root.finish()
        response = PipelinedResponse(
            result_nodes=frozenset(inflight.merged),
            fragment_seconds=dict(inflight.fragment_seconds),
            machine_seconds=dict(inflight.machine_seconds),
            wall_seconds=time.perf_counter() - inflight.started,
            message_bytes=inflight.message_bytes,
            degraded=inflight.degraded,
            spans=tuple(inflight.collector.spans)
            if inflight.collector is not None
            else (),
            partials=dict(inflight.partials) if inflight.partials else None,
        )
        if not inflight.future.done():
            inflight.future.set_result(response)

    def _absorb_apply_ack(
        self, machine_id: int, request_id: int, swapped: list[int], wire_bytes: int
    ) -> None:
        with self._lock:
            apply = self._pending_applies.get(request_id)
            if apply is None:
                return
            apply.swapped.extend(swapped)
            apply.message_bytes += wire_bytes
            apply.awaiting.discard(machine_id)
            shipped = apply.manifests.get(machine_id)
            done = not apply.awaiting
            if done:
                del self._pending_applies[request_id]
        if shipped is not None and self._shm_store is not None:
            # Serial worker + FIFO pipe: this ack proves no in-flight
            # query still reads the superseded epoch on that machine.
            self._shm_store.lease(machine_id, shipped)
        if done:
            self._complete_apply(apply)

    def _complete_apply(self, apply: _InFlightApply) -> None:
        self.current_epoch = max(self.current_epoch, apply.epoch)
        summary = {
            "epoch": apply.epoch,
            "swapped_fragments": sorted(apply.swapped),
            "total_message_bytes": apply.message_bytes,
            "wall_seconds": time.perf_counter() - apply.started,
        }
        if not apply.future.done():
            apply.future.set_result(summary)

    def _absorb_stats(
        self, machine_id: int, request_id: int, totals: dict[str, int]
    ) -> None:
        with self._lock:
            pending = self._pending_stats.get(request_id)
            if pending is None:
                return
            for name, value in totals.items():
                pending.totals[name] = pending.totals.get(name, 0) + value
            pending.awaiting.discard(machine_id)
            if pending.awaiting:
                return
            del self._pending_stats[request_id]
        if not pending.future.done():
            pending.future.set_result(dict(pending.totals))

    def _fail_request(self, request_id: int, error: ClusterError) -> None:
        with self._lock:
            inflight = self._pending.pop(request_id, None)
            apply = self._pending_applies.pop(request_id, None)
            stats = self._pending_stats.pop(request_id, None)
        if inflight is not None and not inflight.future.done():
            inflight.future.set_exception(error)
        if apply is not None and not apply.future.done():
            apply.future.set_exception(error)
        if stats is not None and not stats.future.done():
            stats.future.set_exception(error)

    def _on_worker_death(self, machine_id: int) -> None:
        if self._shm_store is not None:
            # The dead worker's mappings died with it; dropping its
            # leases lets superseded segments retire without waiting on
            # an ack that will never come.
            self._shm_store.release_machine(machine_id)
        with self._lock:
            if machine_id in self._dead:
                return
            self._dead.add(machine_id)
            affected = [
                rid
                for rid, inflight in self._pending.items()
                if machine_id in inflight.awaiting
            ]
            # Applies are not failed by a death: the dead machine's
            # fragments are unanswerable regardless, so the epoch
            # completes on the survivors and serving stays degraded-live.
            finished_applies: list[_InFlightApply] = []
            for rid in list(self._pending_applies):
                apply = self._pending_applies[rid]
                apply.awaiting.discard(machine_id)
                if not apply.awaiting:
                    del self._pending_applies[rid]
                    finished_applies.append(apply)
            # Stats sweeps likewise complete on the survivors' counters.
            finished_stats: list[_InFlightStats] = []
            for rid in list(self._pending_stats):
                pending = self._pending_stats[rid]
                pending.awaiting.discard(machine_id)
                if not pending.awaiting:
                    del self._pending_stats[rid]
                    finished_stats.append(pending)
        for request_id in affected:
            self._fail_request(
                request_id,
                ClusterError(
                    f"worker {machine_id} died mid-query; the cluster is degraded"
                ),
            )
        for apply in finished_applies:
            self._complete_apply(apply)
        for pending in finished_stats:
            if not pending.future.done():
                pending.future.set_result(dict(pending.totals))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def submit(
        self,
        query: QClassQuery,
        *,
        trace: TraceContext | None = None,
        explain: bool = False,
    ) -> PendingQuery:
        """Fan the query out to every live worker; return immediately.

        ``trace`` opts the query into span recording: each worker
        piggybacks its ``queue-wait``/``task``/``eval``/``union``/
        ``serialize`` spans on the reply it was sending anyway, and the
        resolved :class:`PipelinedResponse` carries the assembled tree.
        Traced queries pay one pickle per machine (the dispatch span ids
        differ); untraced queries keep the single shared payload.

        ``explain`` asks each worker for the exact per-term distances of
        its result nodes alongside the node sets (the semantic result
        cache's admission payload); the response then carries
        ``partials``.  Result nodes are identical either way.  Ignored
        for traced queries (trace wins).
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        with self._lock:
            live = [
                machine_id
                for machine_id in range(len(self._connections))
                if machine_id not in self._dead
            ]
            if not live:
                raise ClusterError("every worker has died; the cluster cannot serve")
            request_id = next(self._ids)
            inflight = _InFlight(set(live), degraded=bool(self._dead))
            if trace is not None:
                inflight.collector = SpanCollector(trace.trace_id)
                inflight.root = inflight.collector.start(
                    "query", parent_id=trace.span_id
                )
                for machine_id in live:
                    inflight.dispatch_spans[machine_id] = inflight.collector.start(
                        "dispatch",
                        parent_id=inflight.root.span_id,
                        machine_id=machine_id,
                    )
            self._pending[request_id] = inflight
        if trace is None:
            # The untraced fast path: one shared payload, struct-packed
            # when the pipes speak binary (cheaper to encode and ~2-4×
            # smaller than the pickled tuple on typical queries).
            if explain:
                shared = pickle.dumps(
                    ("explain", (request_id, query), time.perf_counter())
                )
            elif self._pipe_wire == "binary":
                shared = wire.dumps_pipe_query(request_id, query, time.perf_counter())
            else:
                shared = pickle.dumps(
                    ("query", (request_id, query, None), time.perf_counter())
                )
            payloads = {machine_id: shared for machine_id in live}
        else:
            payloads = {
                machine_id: pickle.dumps(
                    (
                        "query",
                        (
                            request_id,
                            query,
                            (
                                trace.trace_id,
                                inflight.dispatch_spans[machine_id].span_id,
                            ),
                        ),
                        time.perf_counter(),
                    )
                )
                for machine_id in live
            }
        sent_bytes = 0
        with self._fanout_lock:
            for machine_id in live:
                try:
                    with self._send_locks[machine_id]:
                        self._connections[machine_id].send_bytes(payloads[machine_id])
                    sent_bytes += len(payloads[machine_id])
                except (BrokenPipeError, OSError):
                    self._on_worker_death(machine_id)
        with self._lock:
            inflight.message_bytes += sent_bytes
        return PendingQuery(request_id=request_id, future=inflight.future)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def submit_updates(
        self, epoch: int, replacements: list[tuple[Fragment, NPDIndex]]
    ) -> PendingApply:
        """Fan an epoch delta out to the owning live workers; no blocking.

        Queries already in every pipe run on the old epoch; queries
        submitted after this call run on the new one (the fan-out lock
        plus per-pipe FIFO make that ordering identical on all
        machines).  The returned future resolves once every involved
        live worker has swapped — or, if one dies mid-apply, once the
        survivors have.
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        if epoch <= self.current_epoch:
            raise ClusterError(
                f"epoch must advance: cluster at {self.current_epoch}, got {epoch}"
            )
        with self._lock:
            involved = [
                machine_id
                for machine_id in range(len(self._connections))
                if machine_id not in self._dead
                and any(
                    fragment.fragment_id in self._assignments[machine_id]
                    for fragment, _index in replacements
                )
            ]
            request_id = next(self._ids)
            apply = _InFlightApply(epoch, set(involved))
            self._pending_applies[request_id] = apply
        if not involved:
            # Nothing to ship (all changed fragments on dead machines, or
            # an empty delta): publish the epoch immediately.
            with self._lock:
                self._pending_applies.pop(request_id, None)
            self._complete_apply(apply)
            return PendingApply(request_id=request_id, epoch=epoch, future=apply.future)
        published: dict[int, object] = {}
        if self._shm_store is not None:
            # Pack each changed fragment once, then ship only manifests.
            for fragment, index in replacements:
                published[fragment.fragment_id] = self._shm_store.publish(
                    fragment, index, epoch=epoch
                )
        sent_bytes = 0
        with self._fanout_lock:
            for machine_id in involved:
                mine = [
                    (fragment, index)
                    for fragment, index in replacements
                    if fragment.fragment_id in self._assignments[machine_id]
                ]
                if self._shm_store is not None:
                    manifests = [
                        published[fragment.fragment_id] for fragment, _index in mine
                    ]
                    apply.manifests[machine_id] = manifests
                    payload = pickle.dumps(
                        (
                            "apply_shm",
                            (request_id, epoch, manifests),
                            time.perf_counter(),
                        )
                    )
                else:
                    payload = pickle.dumps(
                        ("apply", (request_id, epoch, mine), time.perf_counter())
                    )
                try:
                    with self._send_locks[machine_id]:
                        self._connections[machine_id].send_bytes(payload)
                    sent_bytes += len(payload)
                except (BrokenPipeError, OSError):
                    self._on_worker_death(machine_id)
        with self._lock:
            apply.message_bytes += sent_bytes
        return PendingApply(request_id=request_id, epoch=epoch, future=apply.future)

    def apply_updates(
        self,
        epoch: int,
        replacements: list[tuple[Fragment, NPDIndex]],
        *,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
    ) -> dict[str, object]:
        """Synchronous convenience wrapper over :meth:`submit_updates`."""
        pending = self.submit_updates(epoch, replacements)
        try:
            return pending.future.result(timeout=timeout_seconds)
        except FutureTimeoutError:
            with self._lock:
                self._pending_applies.pop(pending.request_id, None)
            raise ClusterError(
                f"epoch {epoch} was not applied within {timeout_seconds}s"
            ) from None

    def forget(self, request_id: int) -> None:
        """Drop a pending query (e.g. after a caller-side timeout)."""
        with self._lock:
            self._pending.pop(request_id, None)

    def coverage_cache_stats(
        self, *, timeout_seconds: float = 10.0
    ) -> dict[str, int]:
        """Cluster-wide coverage-cache counters, summed over live workers.

        Same shape as :meth:`SimulatedCluster.coverage_cache_stats`, so
        the serve layer's ``stats`` op surfaces either cluster kind
        identically.  Rides the multiplexed pipes as a control
        round-trip; dead workers are skipped (their counters died with
        them), and a worker dying mid-sweep completes the sweep on the
        survivors.
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        with self._lock:
            live = [
                machine_id
                for machine_id in range(len(self._connections))
                if machine_id not in self._dead
            ]
            request_id = next(self._ids)
            pending = _InFlightStats(set(live))
            if live:
                self._pending_stats[request_id] = pending
        if not live:
            return dict(pending.totals)
        payload = pickle.dumps(("cache_stats", request_id, time.perf_counter()))
        with self._fanout_lock:
            for machine_id in live:
                try:
                    with self._send_locks[machine_id]:
                        self._connections[machine_id].send_bytes(payload)
                except (BrokenPipeError, OSError):
                    self._on_worker_death(machine_id)
        try:
            return pending.future.result(timeout=timeout_seconds)
        except FutureTimeoutError:
            with self._lock:
                self._pending_stats.pop(request_id, None)
            raise ClusterError(
                f"coverage cache stats were not collected within {timeout_seconds}s"
            ) from None

    def execute(
        self,
        query: QClassQuery,
        *,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
        trace: TraceContext | None = None,
        explain: bool = False,
    ) -> PipelinedResponse:
        """Synchronous convenience wrapper over :meth:`submit`."""
        pending = self.submit(query, trace=trace, explain=explain)
        try:
            return pending.future.result(timeout=timeout_seconds)
        except FutureTimeoutError:
            self.forget(pending.request_id)
            raise ClusterError(
                f"query was not answered within {timeout_seconds}s"
            ) from None
