"""Asyncio TCP frontend over a pipelined cluster.

The server accepts newline-delimited JSON (see
:mod:`repro.serve.protocol`), parses queries with the
:func:`repro.core.language.parse_query` grammar, fans them out through
:class:`~repro.serve.pipeline.PipelinedCluster`, and streams replies —
out of order if faster queries finish first, matched by id.

Robustness controls, per request:

* **admission** — at most ``max_inflight`` queries run concurrently;
  beyond that the server replies ``overloaded`` immediately (load
  shedding) rather than queueing without bound;
* **timeout** — a query that exceeds ``query_timeout_seconds`` gets a
  ``timeout`` reply and is forgotten at the cluster (its late replies
  are dropped);
* **degraded mode** — after a worker crash, answers keep flowing from
  the survivors and carry ``"degraded": true``.

The cluster argument is duck-typed (``submit``/``forget``/
``num_machines``/``degraded``/``dead_machines``), which the tests use
to inject failure modes.

Live updates: constructed with an ``updater`` (an
:class:`~repro.live.epochs.EpochManager`, typically subscribed to push
epoch deltas into the same cluster), the server additionally accepts
``update`` batches — admission-controlled like queries, applied off the
event loop — and the ``epoch`` admin op.  Update observability:
``epoch`` gauge, ``updates`` / ``update_ops`` counters,
``apply_seconds`` / ``swap_seconds`` / ``staleness_seconds`` histograms
(staleness = batch arrival to epoch publication).

Standing queries: constructed with a ``sub_engine`` (a
:class:`~repro.sub.engine.SubscriptionEngine` attached to the same
updater), the server additionally accepts ``subscribe`` /
``unsubscribe`` and pushes ``notify`` frames over the subscribing
connection as epochs change its results.  Each connection owns one
bounded notification queue (``sub_queue_limit``); when a slow consumer
fills it, further notices for that subscription are *dropped* and a
single ``resync`` frame — carrying the full current result — is
delivered once the queue drains, so a stalled reader costs bounded
memory rather than unbounded buffering.  Subscriptions die with their
connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.core.language import parse_query
from repro.exceptions import ClusterError, DisksError, LiveUpdateError, QueryError
from repro.live.ops import op_from_record
from repro.obs.events import global_events
from repro.obs.export import JsonlTraceSink
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import Tracer
from repro.serve.admission import AdmissionController
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import decode_line, encode_line

__all__ = ["ServeConfig", "DisksServer", "serve_in_thread"]


class _SubChannel:
    """One connection's notification path: bounded queue, shed to resync.

    Notices arrive on the *updater's* thread (the engine's sinks run
    inside the epoch-swap callback); frames leave on the server's event
    loop.  The handoff is a plain deque under a threading lock plus a
    ``call_soon_threadsafe`` kick that spawns one drain task at a time.
    When the queue is full the notice is dropped and the subscription
    marked for resync — after the queue drains, one ``resync`` frame
    with the full current result (at a no-earlier epoch) replaces
    everything that was lost.  Clients must treat a ``resync`` as
    authoritative and discard deltas for epochs ≤ its epoch.
    """

    def __init__(self, server: "DisksServer", writer, write_lock, loop, limit: int):
        self._server = server
        self._writer = writer
        self._write_lock = write_lock
        self._loop = loop
        self._limit = limit
        self._lock = threading.Lock()
        self._queue: deque[dict] = deque()
        self._resync: set[str] = set()
        self._dropped: dict[str, int] = {}
        self._draining = False
        self._closed = False
        self.subs: set[str] = set()

    def push(self, notice) -> None:
        """Engine sink: enqueue one notice (updater thread)."""
        with self._lock:
            if self._closed:
                return
            if len(self._queue) >= self._limit:
                self._resync.add(notice.sub_id)
                self._dropped[notice.sub_id] = self._dropped.get(notice.sub_id, 0) + 1
                self._server.metrics.increment("sub_dropped")
            else:
                self._queue.append({"push": "notify", **notice.to_dict()})
            schedule = not self._draining
            if schedule:
                self._draining = True
        if schedule:
            try:
                self._loop.call_soon_threadsafe(self._spawn)
            except RuntimeError:  # the loop is shutting down
                pass

    def close(self) -> None:
        """Stop accepting notices (the connection is going away)."""
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._resync.clear()

    def _spawn(self) -> None:
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        while True:
            resync_id: str | None = None
            with self._lock:
                if self._queue:
                    frame = self._queue.popleft()
                elif self._resync:
                    resync_id = self._resync.pop()
                    frame = None
                else:
                    self._draining = False
                    return
            if frame is None:
                assert resync_id is not None
                dropped = self._dropped.pop(resync_id, 0)
                engine = self._server.sub_engine
                try:
                    snapshot = engine.snapshot(resync_id) if engine else None
                except DisksError:
                    continue  # unsubscribed while the resync was pending
                if snapshot is None:
                    continue
                frame = {"push": "resync", "dropped": dropped, **snapshot}
                self._server.metrics.increment("sub_resyncs")
            await self._server._respond(self._writer, self._write_lock, frame)


@dataclass(frozen=True)
class ServeConfig:
    """Frontend knobs.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`DisksServer.port` after :meth:`DisksServer.start`).
    ``max_radius`` guards queries against exceeding the deployment's
    built ``maxR`` — pass the manifest value when serving from files.

    Tracing knobs: ``trace_sample_rate`` is the probability a query is
    traced end-to-end (0.0 = off, the default — the hot path then only
    carries ``None`` placeholders); sampled traces land in a bounded
    in-memory store (``trace_capacity``) served by the ``trace`` wire
    op, and optionally stream to a rotating JSONL file (``trace_log``).
    Queries slower than ``slow_query_ms`` always enter the slow-query
    ring — with full spans when sampled, as a coarse entry otherwise
    (spans cannot be collected retroactively).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 16
    query_timeout_seconds: float = 30.0
    max_radius: float | None = None
    trace_sample_rate: float = 0.0
    slow_query_ms: float = 250.0
    trace_log: str | None = None
    trace_capacity: int = 256
    sub_queue_limit: int = 256


class DisksServer:
    """The NDJSON query frontend."""

    def __init__(
        self,
        cluster,
        *,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        updater=None,
        sub_engine=None,
    ) -> None:
        self._cluster = cluster
        self._updater = updater
        self.sub_engine = sub_engine
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.admission = AdmissionController(self.config.max_inflight)
        self.tracer = Tracer(
            sample_rate=self.config.trace_sample_rate,
            capacity=self.config.trace_capacity,
        )
        self._trace_sink = (
            JsonlTraceSink(self.config.trace_log) if self.config.trace_log else None
        )
        self._slow_queries: deque[dict] = deque(maxlen=64)
        self._server: asyncio.AbstractServer | None = None
        self.host = self.config.host
        self.port: int | None = None
        if updater is not None:
            self.metrics.observe_gauge("epoch", updater.epoch)
        if sub_engine is not None:
            # The engine shares the server's metrics and tracer so its
            # gauges/histograms/spans land in the same stats snapshot.
            sub_engine.bind(metrics=self.metrics, tracer=self.tracer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "DisksServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ClusterError("the server has already been started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            raise ClusterError("start() the server first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        channel = _SubChannel(
            self,
            writer,
            write_lock,
            asyncio.get_running_loop(),
            self.config.sub_queue_limit,
        )
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock, channel)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, OSError):
            pass
        finally:
            channel.close()
            if channel.subs and self.sub_engine is not None:
                # Subscriptions die with their connection; unregister off
                # the loop (the engine lock may be held by a re-eval).
                for sub_id in list(channel.subs):
                    await asyncio.to_thread(self.sub_engine.unregister, sub_id)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(ConnectionResetError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _respond(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, payload: dict
    ) -> None:
        data = encode_line(payload)
        async with write_lock:
            with contextlib.suppress(ConnectionResetError, OSError):
                writer.write(data)
                await writer.drain()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        channel: _SubChannel,
    ) -> None:
        try:
            request = decode_line(line)
        except ValueError as error:
            self.metrics.increment("bad_requests")
            await self._respond(
                writer,
                write_lock,
                {"id": None, "ok": False, "error": "bad-json", "detail": str(error)},
            )
            return
        request_id = request.get("id")
        op = request.get("op", "query")
        if op == "stats":
            await self._respond(
                writer, write_lock, {"id": request_id, "ok": True, "stats": self.stats()}
            )
        elif op == "info":
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "machines": self._cluster.num_machines,
                    "degraded": self._cluster.degraded,
                    "max_radius": self.config.max_radius,
                    "max_inflight": self.admission.limit,
                },
            )
        elif op == "ping":
            await self._respond(
                writer, write_lock, {"id": request_id, "ok": True, "pong": True}
            )
        elif op == "epoch":
            await self._respond(
                writer,
                write_lock,
                {"id": request_id, "ok": True, "epoch": self._current_epoch()},
            )
        elif op == "trace":
            await self._respond(
                writer, write_lock, self._trace_payload(request_id, request)
            )
        elif op == "metrics":
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "text": render_prometheus(self.metrics.exposition_state()),
                },
            )
        elif op == "update":
            await self._handle_update(request_id, request, writer, write_lock)
        elif op == "subscribe":
            await self._handle_subscribe(request_id, request, writer, write_lock, channel)
        elif op == "unsubscribe":
            await self._handle_unsubscribe(
                request_id, request, writer, write_lock, channel
            )
        elif op == "query":
            await self._handle_query(request_id, request, writer, write_lock)
        else:
            self.metrics.increment("bad_requests")
            await self._respond(
                writer,
                write_lock,
                {"id": request_id, "ok": False, "error": "unknown-op", "detail": op},
            )

    def _current_epoch(self):
        """The served epoch: from the updater, else the cluster, else None."""
        if self._updater is not None:
            return self._updater.epoch
        return getattr(self._cluster, "current_epoch", None)

    async def _handle_update(
        self,
        request_id,
        request: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.metrics.increment("updates_received")
        if self._updater is None:
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "no-live",
                    "detail": "this server was started without live-update support",
                },
            )
            return
        records = request.get("ops")
        if not isinstance(records, list) or not records:
            self.metrics.increment("bad_requests")
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "bad-update",
                    "detail": "the request needs a non-empty op list under 'ops'",
                },
            )
            return
        try:
            ops = [op_from_record(record) for record in records]
        except LiveUpdateError as error:
            self.metrics.increment("update_errors")
            await self._respond(
                writer,
                write_lock,
                {"id": request_id, "ok": False, "error": "bad-update", "detail": str(error)},
            )
            return
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            await self._respond(
                writer, write_lock, {"id": request_id, "ok": False, "error": "overloaded"}
            )
            return
        arrived = time.perf_counter()
        self.metrics.observe_gauge("inflight", self.admission.depth)
        try:
            # EpochManager.apply serialises writers behind its own lock;
            # to_thread keeps the (possibly rebuild-heavy) apply off the
            # event loop so queries keep flowing while the shadow builds.
            try:
                swap = await asyncio.to_thread(self._updater.apply, ops)
            except LiveUpdateError as error:
                self.metrics.increment("update_errors")
                await self._respond(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": "bad-update",
                        "detail": str(error),
                    },
                )
                return
            except ClusterError as error:
                self.metrics.increment("errors")
                await self._respond(
                    writer,
                    write_lock,
                    {"id": request_id, "ok": False, "error": "cluster", "detail": str(error)},
                )
                return
            staleness = time.perf_counter() - arrived
            self.metrics.increment("updates")
            self.metrics.increment("update_ops", by=swap.num_ops)
            self.metrics.observe_gauge("epoch", swap.epoch)
            self.metrics.observe("apply_seconds", swap.apply_seconds)
            self.metrics.observe("swap_seconds", swap.swap_seconds)
            self.metrics.observe("staleness_seconds", staleness)
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "epoch": swap.epoch,
                    "applied": swap.to_dict(),
                    "staleness_ms": staleness * 1000.0,
                },
            )
        finally:
            self.admission.release()
            self.metrics.observe_gauge("inflight", self.admission.depth)

    def _parse_query_text(self, request_id, text):
        """Parse + radius-check a wire query; ``(query, None)`` on success,
        ``(None, error_reply)`` otherwise.  Shared by ``query`` and
        ``subscribe``."""
        if not isinstance(text, str):
            self.metrics.increment("bad_requests")
            return None, {
                "id": request_id,
                "ok": False,
                "error": "bad-request",
                "detail": "the request needs a query string under 'q'",
            }
        try:
            query = parse_query(text)
        except QueryError as error:
            self.metrics.increment("parse_errors")
            return None, {
                "id": request_id,
                "ok": False,
                "error": "parse",
                "detail": str(error),
            }
        if (
            self.config.max_radius is not None
            and query.max_radius > self.config.max_radius
        ):
            self.metrics.increment("radius_rejections")
            return None, {
                "id": request_id,
                "ok": False,
                "error": "radius",
                "detail": (
                    f"radius {query.max_radius:g} exceeds the deployment "
                    f"maxR {self.config.max_radius:g}"
                ),
            }
        return query, None

    async def _handle_subscribe(
        self,
        request_id,
        request: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        channel: _SubChannel,
    ) -> None:
        self.metrics.increment("subscribes_received")
        if self.sub_engine is None:
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "no-sub",
                    "detail": "this server was started without standing-query support",
                },
            )
            return
        query, rejection = self._parse_query_text(request_id, request.get("q"))
        if rejection is not None:
            await self._respond(writer, write_lock, rejection)
            return
        sub_id = request.get("sub")
        if sub_id is not None and not isinstance(sub_id, str):
            self.metrics.increment("bad_requests")
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "bad-subscribe",
                    "detail": "'sub' must be a string when given",
                },
            )
            return
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            await self._respond(
                writer, write_lock, {"id": request_id, "ok": False, "error": "overloaded"}
            )
            return
        try:
            # Registration materializes the initial result (runs every
            # in-scope fragment task), so it goes off the event loop.
            try:
                subscription = await asyncio.to_thread(
                    self.sub_engine.register,
                    query,
                    sub_id=sub_id,
                    sink=channel.push,
                    scored=bool(request.get("scored", False)),
                )
            except DisksError as error:
                self.metrics.increment("update_errors")
                await self._respond(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": "bad-subscribe",
                        "detail": str(error),
                    },
                )
                return
            channel.subs.add(subscription.sub_id)
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": True,
                    "sub": subscription.sub_id,
                    "epoch": subscription.epoch,
                    "scored": subscription.scored,
                    "nodes": sorted(subscription.result),
                },
            )
        finally:
            self.admission.release()

    async def _handle_unsubscribe(
        self,
        request_id,
        request: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        channel: _SubChannel,
    ) -> None:
        if self.sub_engine is None:
            await self._respond(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "no-sub",
                    "detail": "this server was started without standing-query support",
                },
            )
            return
        sub_id = request.get("sub")
        removed = False
        if isinstance(sub_id, str):
            removed = await asyncio.to_thread(self.sub_engine.unregister, sub_id)
            channel.subs.discard(sub_id)
        await self._respond(
            writer,
            write_lock,
            {"id": request_id, "ok": True, "sub": sub_id, "removed": removed},
        )

    async def _handle_query(
        self,
        request_id,
        request: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.metrics.increment("received")
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            await self._respond(
                writer, write_lock, {"id": request_id, "ok": False, "error": "overloaded"}
            )
            return
        arrived = time.perf_counter()
        self.metrics.observe_gauge("inflight", self.admission.depth)
        try:
            text = request.get("q")
            query, rejection = self._parse_query_text(request_id, text)
            if rejection is not None:
                await self._respond(writer, write_lock, rejection)
                return
            trace = self.tracer.maybe_trace()
            try:
                if trace is not None:
                    pending = self._cluster.submit(query, trace=trace)
                else:
                    pending = self._cluster.submit(query)
            except ClusterError as error:
                self.metrics.increment("errors")
                await self._respond(
                    writer,
                    write_lock,
                    {"id": request_id, "ok": False, "error": "cluster", "detail": str(error)},
                )
                return
            try:
                response = await asyncio.wait_for(
                    asyncio.wrap_future(pending.future),
                    self.config.query_timeout_seconds,
                )
            except asyncio.TimeoutError:
                self._cluster.forget(pending.request_id)
                self.metrics.increment("timeouts")
                await self._respond(
                    writer, write_lock, {"id": request_id, "ok": False, "error": "timeout"}
                )
                return
            except ClusterError as error:
                self.metrics.increment("errors")
                await self._respond(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": "cluster",
                        "detail": str(error),
                        "degraded": self._cluster.degraded,
                    },
                )
                return
            latency = time.perf_counter() - arrived
            self.metrics.observe("latency_seconds", latency)
            self.metrics.increment("completed")
            for machine_id, seconds in response.machine_seconds.items():
                self.metrics.add_busy(machine_id, seconds)
            slow = latency * 1000.0 >= self.config.slow_query_ms
            if trace is not None:
                self._finish_trace(trace, text, response, latency, slow)
            elif slow:
                # Unsampled slow query: spans cannot be collected after
                # the fact, so the ring gets a coarse entry instead.
                self.metrics.increment("slow_queries")
                self._slow_queries.append(
                    self._slow_entry(None, text, response, latency)
                )
            reply = {
                "id": request_id,
                "ok": True,
                "nodes": sorted(response.result_nodes),
                "degraded": response.degraded or self._cluster.degraded,
                "timing": {
                    "latency_ms": latency * 1000.0,
                    "wall_ms": response.wall_seconds * 1000.0,
                    "makespan_ms": max(response.machine_seconds.values(), default=0.0)
                    * 1000.0,
                    "message_bytes": response.message_bytes,
                },
            }
            if trace is not None:
                reply["trace_id"] = trace.trace_id
            await self._respond(writer, write_lock, reply)
        finally:
            self.admission.release()
            self.metrics.observe_gauge("inflight", self.admission.depth)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    _STAGE_HISTOGRAMS = {
        "queue-wait": "stage_queue_seconds",
        "eval": "stage_eval_seconds",
        "union": "stage_union_seconds",
        "serialize": "stage_serialize_seconds",
    }

    def _finish_trace(self, trace, text, response, latency, slow) -> None:
        """Store a sampled query's spans; feed stage histograms and sinks."""
        spans = getattr(response, "spans", ())
        for span in spans:
            histogram = self._STAGE_HISTOGRAMS.get(span.name)
            if histogram is not None and span.end is not None:
                self.metrics.observe(histogram, span.duration_seconds)
        record = self.tracer.record(
            trace.trace_id,
            spans,
            query=text,
            latency_ms=latency * 1000.0,
            slow=slow,
            degraded=bool(response.degraded or self._cluster.degraded),
        )
        if slow:
            self.metrics.increment("slow_queries")
            self._slow_queries.append(
                self._slow_entry(trace.trace_id, text, response, latency)
            )
        if self._trace_sink is not None:
            self._trace_sink.write(record)

    @staticmethod
    def _slow_entry(trace_id, text, response, latency) -> dict:
        return {
            "trace_id": trace_id,
            "query": text,
            "latency_ms": latency * 1000.0,
            "wall_ms": response.wall_seconds * 1000.0,
            "degraded": bool(response.degraded),
            "wall_time": time.time(),
        }

    def _trace_payload(self, request_id, request: dict) -> dict:
        """The ``trace`` op: recent traces, slow ring, events, counters."""
        trace_id = request.get("trace_id")
        if isinstance(trace_id, str):
            record = self.tracer.get(trace_id)
            if record is None:
                return {
                    "id": request_id,
                    "ok": False,
                    "error": "unknown-trace",
                    "detail": trace_id,
                }
            return {"id": request_id, "ok": True, "trace": record}
        n = request.get("n", 8)
        if not isinstance(n, int) or n < 0:
            n = 8
        return {
            "id": request_id,
            "ok": True,
            "sampling": {
                "rate": self.tracer.sample_rate,
                **self.tracer.counts,
            },
            "traces": self.tracer.recent(n),
            "slow": list(self._slow_queries)[-n:],
            "events": global_events().tail(n),
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` admin payload: metrics + admission + cluster."""
        snapshot = self.metrics.snapshot()
        snapshot["admission"] = {
            "depth": self.admission.depth,
            "limit": self.admission.limit,
        }
        snapshot["cluster"] = {
            "machines": self._cluster.num_machines,
            "degraded": self._cluster.degraded,
            "dead_machines": sorted(self._cluster.dead_machines),
        }
        # Duck-typed like the rest of the cluster interface: clusters
        # that aggregate per-runtime coverage-cache counters (hits /
        # misses / skipped-by-size) surface them here.
        cache_stats = getattr(self._cluster, "coverage_cache_stats", None)
        if callable(cache_stats):
            snapshot["coverage_cache"] = cache_stats()
        snapshot["tracing"] = {
            "rate": self.tracer.sample_rate,
            **self.tracer.counts,
            "slow_ring": len(self._slow_queries),
        }
        if self.sub_engine is not None:
            snapshot["subscriptions"] = self.sub_engine.stats()
        epoch = self._current_epoch()
        if epoch is not None:
            live: dict = {"epoch": epoch}
            if self._updater is not None:
                history = self._updater.history
                live["applied_batches"] = len(history)
                live["applied_ops"] = sum(swap.num_ops for swap in history)
                # The most recent swaps, for per-epoch apply metrics.
                live["recent_swaps"] = [swap.to_dict() for swap in history[-5:]]
            snapshot["live"] = live
        return snapshot


@contextlib.contextmanager
def serve_in_thread(
    cluster,
    config: ServeConfig | None = None,
    metrics: MetricsRegistry | None = None,
    updater=None,
    sub_engine=None,
) -> Iterator[DisksServer]:
    """Run a :class:`DisksServer` on a background event loop.

    Lets synchronous code (tests, notebooks) stand a server up without
    owning an event loop::

        with serve_in_thread(cluster) as server:
            client = ServeClient(server.host, server.port)
    """
    server = DisksServer(
        cluster, config=config, metrics=metrics, updater=updater, sub_engine=sub_engine
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # surfaced to the caller below
            failure.append(error)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            leftovers = asyncio.all_tasks(loop)
            for task in leftovers:
                task.cancel()
            if leftovers:
                loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=_run, name="disks-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):
        raise ClusterError("the server failed to start within 10s")
    if failure:
        raise ClusterError(f"the server failed to start: {failure[0]}")
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
