"""Asyncio TCP frontend over a pipelined cluster.

The server accepts newline-delimited JSON (see
:mod:`repro.serve.protocol`), parses queries with the
:func:`repro.core.language.parse_query` grammar, fans them out through
:class:`~repro.serve.pipeline.PipelinedCluster`, and streams replies —
out of order if faster queries finish first, matched by id.

Robustness controls, per request:

* **admission** — at most ``max_inflight`` queries run concurrently;
  beyond that the server replies ``overloaded`` immediately (load
  shedding) rather than queueing without bound;
* **timeout** — a query that exceeds ``query_timeout_seconds`` gets a
  ``timeout`` reply and is forgotten at the cluster (its late replies
  are dropped);
* **degraded mode** — after a worker crash, answers keep flowing from
  the survivors and carry ``"degraded": true``.

The cluster argument is duck-typed (``submit``/``forget``/
``num_machines``/``degraded``/``dead_machines``), which the tests use
to inject failure modes.

Live updates: constructed with an ``updater`` (an
:class:`~repro.live.epochs.EpochManager`, typically subscribed to push
epoch deltas into the same cluster), the server additionally accepts
``update`` batches — admission-controlled like queries, applied off the
event loop — and the ``epoch`` admin op.  Update observability:
``epoch`` gauge, ``updates`` / ``update_ops`` counters,
``apply_seconds`` / ``swap_seconds`` / ``staleness_seconds`` histograms
(staleness = batch arrival to epoch publication).

Standing queries: constructed with a ``sub_engine`` (a
:class:`~repro.sub.engine.SubscriptionEngine` attached to the same
updater), the server additionally accepts ``subscribe`` /
``unsubscribe`` and pushes ``notify`` frames over the subscribing
connection as epochs change its results.  Each connection owns one
bounded notification queue (``sub_queue_limit``); when a slow consumer
fills it, further notices for that subscription are *dropped* and a
single ``resync`` frame — carrying the full current result — is
delivered once the queue drains, so a stalled reader costs bounded
memory rather than unbounded buffering.  Subscriptions die with their
connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.cache.store import SemanticResultCache
from repro.core.language import parse_query
from repro.exceptions import ClusterError, DisksError, LiveUpdateError, QueryError
from repro.live.ops import op_from_record
from repro.obs.events import global_events
from repro.obs.export import JsonlTraceSink
from repro.obs.hotspots import HotSpotSketch, render_hotspots
from repro.obs.prometheus import render_prometheus
from repro.obs.slo import SLOEngine, SLOObjectives
from repro.obs.tail import RetentionPolicy
from repro.obs.trace import TraceContext, Tracer, new_trace_id
from repro.serve import wire
from repro.serve.admission import AdmissionController
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import decode_line, encode_line, render_query

__all__ = ["ServeConfig", "DisksServer", "serve_in_thread"]


@dataclass(frozen=True)
class _CachedResponse:
    """A cache hit shaped like a cluster response.

    Mirrors the attributes ``_run_query`` consumers read off a
    :class:`~repro.serve.pipeline.PipelinedResponse`; no dispatch
    happened, so the timing/byte fields are zero and ``cached`` lets
    tests (and the slow-query ring) tell the two apart.
    """

    result_nodes: frozenset[int]
    fragment_seconds: dict = field(default_factory=dict)
    machine_seconds: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    message_bytes: int = 0
    degraded: bool = False
    spans: tuple = ()
    partials: None = None
    cached: bool = True
    attempt: int = 0


class _Connection:
    """One accepted socket: writer, write lock, protocol, sub channel.

    ``binary`` is fixed at accept time by the first byte on the wire
    (``D`` opens a DSKW binary connection, anything else is NDJSON) and
    decides how :meth:`DisksServer._respond` encodes reply dicts —
    NDJSON lines or JSON frames.  Binary-native replies (ANSWER, ERROR,
    UPDATE_ACK frames) bypass ``_respond`` and go straight to
    ``_send_raw``.
    """

    __slots__ = ("writer", "write_lock", "binary", "channel")

    def __init__(self, writer: asyncio.StreamWriter, binary: bool) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.binary = binary
        self.channel: _SubChannel | None = None


class _SubChannel:
    """One connection's notification path: bounded queue, shed to resync.

    Notices arrive on the *updater's* thread (the engine's sinks run
    inside the epoch-swap callback); frames leave on the server's event
    loop.  The handoff is a plain deque under a threading lock plus a
    ``call_soon_threadsafe`` kick that spawns one drain task at a time.
    When the queue is full the notice is dropped and the subscription
    marked for resync — after the queue drains, one ``resync`` frame
    with the full current result (at a no-earlier epoch) replaces
    everything that was lost.  Clients must treat a ``resync`` as
    authoritative and discard deltas for epochs ≤ its epoch.
    """

    def __init__(self, server: "DisksServer", conn: _Connection, loop, limit: int):
        self._server = server
        self._conn = conn
        self._loop = loop
        self._limit = limit
        self._lock = threading.Lock()
        self._queue: deque[dict] = deque()
        self._resync: set[str] = set()
        self._dropped: dict[str, int] = {}
        self._draining = False
        self._closed = False
        self.subs: set[str] = set()

    def push(self, notice) -> None:
        """Engine sink: enqueue one notice (updater thread)."""
        with self._lock:
            if self._closed:
                return
            if len(self._queue) >= self._limit:
                self._resync.add(notice.sub_id)
                self._dropped[notice.sub_id] = self._dropped.get(notice.sub_id, 0) + 1
                self._server.metrics.increment("sub_dropped")
            else:
                self._queue.append({"push": "notify", **notice.to_dict()})
            schedule = not self._draining
            if schedule:
                self._draining = True
        if schedule:
            try:
                self._loop.call_soon_threadsafe(self._spawn)
            except RuntimeError:  # the loop is shutting down
                pass

    def close(self) -> None:
        """Stop accepting notices (the connection is going away)."""
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._resync.clear()

    def _spawn(self) -> None:
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        while True:
            resync_id: str | None = None
            with self._lock:
                if self._queue:
                    frame = self._queue.popleft()
                elif self._resync:
                    resync_id = self._resync.pop()
                    frame = None
                else:
                    self._draining = False
                    return
            if frame is None:
                assert resync_id is not None
                dropped = self._dropped.pop(resync_id, 0)
                engine = self._server.sub_engine
                try:
                    snapshot = engine.snapshot(resync_id) if engine else None
                except DisksError:
                    continue  # unsubscribed while the resync was pending
                if snapshot is None:
                    continue
                frame = {"push": "resync", "dropped": dropped, **snapshot}
                self._server.metrics.increment("sub_resyncs")
            await self._server._respond(self._conn, frame)


@dataclass(frozen=True)
class ServeConfig:
    """Frontend knobs.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`DisksServer.port` after :meth:`DisksServer.start`).
    ``max_radius`` guards queries against exceeding the deployment's
    built ``maxR`` — pass the manifest value when serving from files.

    Tracing knobs: ``trace_sample_rate`` is the probability a query is
    traced end-to-end (0.0 = off, the default — the hot path then only
    carries ``None`` placeholders); sampled traces land in a bounded
    in-memory store (``trace_capacity``) served by the ``trace`` wire
    op, and optionally stream to a rotating JSONL file (``trace_log``).
    Queries slower than ``slow_query_ms`` always enter the slow-query
    ring (sized by ``slow_ring_size``) — with full spans when sampled,
    as a coarse entry otherwise (spans cannot be collected
    retroactively).

    ``tail_sampling=True`` replaces head sampling with tail-based
    retention (:mod:`repro.obs.tail`): every query is traced, and the
    spans are kept only when the completed query turns out interesting
    — slow (dynamic p99 threshold), errored/degraded, HA-rerouted,
    cache stale-reject, epoch-adjacent, or a small uniform reservoir.
    ``trace_sample_rate`` stays available as the head-sampling
    fallback when tail mode is off.

    ``slo=True`` turns on the burn-rate engine (:mod:`repro.obs.slo`):
    per-op availability/latency objectives (``slo_availability_target``
    / ``slo_latency_ms`` / ``slo_latency_target``), multi-window burn
    in the ``slo`` stats block and ``repro_slo_*`` gauges, and
    ``slo_burn`` events when both alert windows run hot.

    Cache knobs: ``cache=True`` layers the epoch-aware semantic result
    cache (:mod:`repro.cache`) in front of dispatch — both NDJSON and
    binary queries consult it, answers stay bit-identical to cache-off.
    ``cache_max_entries``/``cache_max_bytes`` bound the LRU;
    ``cache_subsumption=False`` degrades it to an exact-key memo table.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 16
    query_timeout_seconds: float = 30.0
    max_radius: float | None = None
    trace_sample_rate: float = 0.0
    slow_query_ms: float = 250.0
    slow_ring_size: int = 64
    trace_log: str | None = None
    trace_capacity: int = 256
    tail_sampling: bool = False
    hotspot_capacity: int = 32
    slo: bool = False
    slo_availability_target: float = 0.999
    slo_latency_ms: float = 250.0
    slo_latency_target: float = 0.99
    sub_queue_limit: int = 256
    max_frame_bytes: int = wire.MAX_FRAME_BYTES
    frame_timeout_seconds: float = 5.0
    cache: bool = False
    cache_max_entries: int = 1024
    cache_max_bytes: int = 32 * 1024 * 1024
    cache_subsumption: bool = True
    # Fault injection: lets the `chaos` op kill workers (HA clusters
    # only).  Off by default — enable for chaos drills, never blindly.
    allow_chaos: bool = False


class DisksServer:
    """The NDJSON query frontend."""

    def __init__(
        self,
        cluster,
        *,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        updater=None,
        sub_engine=None,
        guard=None,
    ) -> None:
        self._cluster = cluster
        self._updater = updater
        self.sub_engine = sub_engine
        # A repro.ha.FrontendGuard (idempotency + rate limits), shared
        # across every frontend of a group.  None = no hardening.
        self.guard = guard
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.admission = AdmissionController(self.config.max_inflight)
        self.tracer = Tracer(
            sample_rate=self.config.trace_sample_rate,
            capacity=self.config.trace_capacity,
        )
        self._trace_sink = (
            JsonlTraceSink(self.config.trace_log) if self.config.trace_log else None
        )
        self.retention = (
            RetentionPolicy(slow_ms=self.config.slow_query_ms)
            if self.config.tail_sampling
            else None
        )
        self.hotspots = HotSpotSketch(self.config.hotspot_capacity)
        self.slo = None
        if self.config.slo:
            objectives = SLOObjectives(
                availability_target=self.config.slo_availability_target,
                latency_threshold_ms=self.config.slo_latency_ms,
                latency_target=self.config.slo_latency_target,
            )
            self.slo = SLOEngine(
                {op: objectives for op in ("query", "update", "subscribe")}
            )
        self._last_swap: float | None = None
        if updater is not None and self.retention is not None:
            updater.subscribe_swaps(self._note_swap)
        self.result_cache = None
        self._cluster_explains = False
        if self.config.cache:
            self.result_cache = SemanticResultCache(
                max_entries=self.config.cache_max_entries,
                max_bytes=self.config.cache_max_bytes,
                subsumption=self.config.cache_subsumption,
            )
            self.result_cache.bind(self.metrics)
            if updater is not None:
                self.result_cache.attach(updater)
            # Subsumption needs the per-term distances only explain-mode
            # dispatch returns; clusters without it still get the
            # exact-key memo behaviour.
            try:
                self._cluster_explains = (
                    "explain" in inspect.signature(cluster.submit).parameters
                )
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                self._cluster_explains = False
        self._slow_queries: deque[dict] = deque(
            maxlen=max(1, self.config.slow_ring_size)
        )
        self._server: asyncio.AbstractServer | None = None
        self.host = self.config.host
        self.port: int | None = None
        if updater is not None:
            self.metrics.observe_gauge("epoch", updater.epoch)
        if sub_engine is not None:
            # The engine shares the server's metrics and tracer so its
            # gauges/histograms/spans land in the same stats snapshot.
            sub_engine.bind(metrics=self.metrics, tracer=self.tracer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "DisksServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ClusterError("the server has already been started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            raise ClusterError("start() the server first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # One sniffed byte routes the connection: a DSKW preamble opens
        # the binary protocol, anything else (NDJSON starts with `{`)
        # stays on the line protocol.  No flag, no second port.
        try:
            first = await reader.read(1)
        except (ConnectionResetError, OSError):
            first = b""
        if not first:
            with contextlib.suppress(ConnectionResetError, OSError):
                writer.close()
                await writer.wait_closed()
            return
        conn = _Connection(writer, binary=(first == wire.MAGIC[:1]))
        conn.channel = _SubChannel(
            self, conn, asyncio.get_running_loop(), self.config.sub_queue_limit
        )
        tasks: set[asyncio.Task] = set()
        try:
            if conn.binary:
                self.metrics.increment("binary_connections")
                await self._binary_loop(first, reader, conn, tasks)
            else:
                self.metrics.increment("ndjson_connections")
                await self._ndjson_loop(first, reader, conn, tasks)
        except (ConnectionResetError, OSError):
            pass
        finally:
            conn.channel.close()
            if conn.channel.subs and self.sub_engine is not None:
                # Subscriptions die with their connection; unregister off
                # the loop (the engine lock may be held by a re-eval).
                for sub_id in list(conn.channel.subs):
                    await asyncio.to_thread(self.sub_engine.unregister, sub_id)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(ConnectionResetError, OSError):
                writer.close()
            # A loop shutdown can cancel the handler while it waits for
            # the close handshake; the socket is already closed, so the
            # cancellation is only noise.
            with contextlib.suppress(
                ConnectionResetError, OSError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _ndjson_loop(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        conn: _Connection,
        tasks: set[asyncio.Task],
    ) -> None:
        prefix = first if first.strip() else b""
        while True:
            line = await reader.readline()
            if prefix:
                line, prefix = prefix + line, b""
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(self._handle_line(line, conn))
            tasks.add(task)
            task.add_done_callback(tasks.discard)

    async def _binary_loop(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        conn: _Connection,
        tasks: set[asyncio.Task],
    ) -> None:
        """Negotiate, then read frames until EOF or a protocol error.

        Partial reads (a torn length prefix, a frame that stops arriving
        mid-payload) are bounded by ``frame_timeout_seconds`` — an
        adversarial or broken peer gets an ERROR frame and a closed
        connection, never a hung handler.  Waiting for the *start* of
        the next frame is unbounded: an idle connection is fine.
        """
        timeout = self.config.frame_timeout_seconds
        try:
            rest = await asyncio.wait_for(reader.readexactly(5), timeout)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            self.metrics.increment("wire_errors")
            return
        try:
            features = wire.decode_preamble(first + rest)
        except wire.WireProtocolError as error:
            self.metrics.increment("wire_errors")
            await self._send_raw(conn, wire.encode_error(None, "wire", str(error)))
            return
        await self._send_raw(conn, wire.encode_hello(features))
        while True:
            lead = await reader.read(1)
            if not lead:
                return  # clean EOF between frames
            try:
                header = lead + await asyncio.wait_for(reader.readexactly(3), timeout)
                (length,) = wire.LENGTH_PREFIX.unpack(header)
                if length < 1 or length > self.config.max_frame_bytes:
                    raise wire.WireProtocolError(
                        f"declared frame length {length} out of range"
                    )
                frame = await asyncio.wait_for(reader.readexactly(length), timeout)
                jobs = self._decode_frame_jobs(frame[0], frame[1:], conn)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                self.metrics.increment("wire_errors")
                await self._send_raw(
                    conn, wire.encode_error(None, "wire", "truncated frame")
                )
                return
            except wire.WireProtocolError as error:
                self.metrics.increment("wire_errors")
                await self._send_raw(conn, wire.encode_error(None, "wire", str(error)))
                return
            for job in jobs:
                task = asyncio.create_task(job)
                tasks.add(task)
                task.add_done_callback(tasks.discard)

    def _decode_frame_jobs(self, frame_type: int, payload: bytes, conn: _Connection):
        """Decode one binary frame into handler coroutines.

        Decoding happens inline on the connection loop — a malformed
        frame must kill the connection *before* later frames dispatch —
        while query execution runs as tasks so the connection pipelines.
        """
        if frame_type == wire.FRAME_QUERY:
            request_id, query = wire.decode_query_payload(payload)
            return [self._handle_wire_query(request_id, query, conn)]
        if frame_type == wire.FRAME_BATCH:
            return [self._handle_wire_batch(wire.decode_batch(payload), conn)]
        if frame_type == wire.FRAME_UPDATE:
            request_id, records, idem_key = wire.decode_update(payload)
            return [self._handle_wire_update(request_id, records, conn, idem_key)]
        if frame_type == wire.FRAME_JSON:
            request = wire.decode_json_payload(payload)
            return [self._dispatch_request(request, conn)]
        raise wire.WireProtocolError(
            f"unexpected frame type {frame_type} from a client"
        )

    async def _send_raw(self, conn: _Connection, data: bytes) -> None:
        async with conn.write_lock:
            with contextlib.suppress(ConnectionResetError, OSError):
                conn.writer.write(data)
                await conn.writer.drain()

    async def _respond(self, conn: _Connection, payload: dict) -> None:
        if conn.binary:
            data = wire.encode_json_frame(payload)
        else:
            data = encode_line(payload)
        await self._send_raw(conn, data)

    async def _handle_line(self, line: bytes, conn: _Connection) -> None:
        try:
            request = decode_line(line)
        except ValueError as error:
            self.metrics.increment("bad_requests")
            await self._respond(
                conn,
                {"id": None, "ok": False, "error": "bad-json", "detail": str(error)},
            )
            return
        await self._dispatch_request(request, conn)

    def _client_key(self, request: dict, conn: _Connection) -> str:
        """The rate-limit bucket key: explicit client id, else peer host."""
        client = request.get("client")
        if isinstance(client, str) and client:
            return client
        peer = conn.writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"

    async def _dispatch_request(self, request: dict, conn: _Connection) -> None:
        request_id = request.get("id")
        op = request.get("op", "query")
        if (
            op in ("query", "update")
            and self.guard is not None
            and not self.guard.allow(self._client_key(request, conn))
        ):
            self.metrics.increment("ha_rate_limited")
            await self._respond(
                conn, {"id": request_id, "ok": False, "error": "rate-limited"}
            )
            return
        if op == "stats":
            # Off the loop: collecting cluster-wide coverage-cache
            # counters round-trips the worker pipes behind any queries
            # already queued on them.
            stats = await asyncio.to_thread(self.stats)
            await self._respond(conn, {"id": request_id, "ok": True, "stats": stats})
        elif op == "info":
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": True,
                    "machines": self._cluster.num_machines,
                    "degraded": self._cluster.degraded,
                    "max_radius": self.config.max_radius,
                    "max_inflight": self.admission.limit,
                },
            )
        elif op == "ping":
            await self._respond(conn, {"id": request_id, "ok": True, "pong": True})
        elif op == "epoch":
            await self._respond(
                conn, {"id": request_id, "ok": True, "epoch": self._current_epoch()}
            )
        elif op == "trace":
            await self._respond(conn, self._trace_payload(request_id, request))
        elif op == "metrics":
            self._sync_ha_gauges()
            if self.slo is not None:
                self.slo.sync_gauges(self.metrics)
            text = render_prometheus(self.metrics.exposition_state())
            hotspots = self.hotspots.snapshot()
            if hotspots["evals"]:
                text += render_hotspots(hotspots)
            await self._respond(
                conn, {"id": request_id, "ok": True, "text": text}
            )
        elif op == "update":
            await self._handle_update(request_id, request, conn)
        elif op == "chaos":
            await self._handle_chaos(request_id, request, conn)
        elif op == "subscribe":
            await self._handle_subscribe(request_id, request, conn)
        elif op == "unsubscribe":
            await self._handle_unsubscribe(request_id, request, conn)
        elif op == "query":
            await self._handle_query(request_id, request, conn)
        else:
            self.metrics.increment("bad_requests")
            await self._respond(
                conn,
                {"id": request_id, "ok": False, "error": "unknown-op", "detail": op},
            )

    def _current_epoch(self):
        """The served epoch: from the updater, else the cluster, else None."""
        if self._updater is not None:
            return self._updater.epoch
        return getattr(self._cluster, "current_epoch", None)

    async def _apply_update_records(self, request_id, records) -> dict:
        """Run one update batch; returns the reply dict (not yet sent).

        Shared by the NDJSON ``update`` op and the binary UPDATE frame —
        one admission/metrics/apply path, two encodings of the outcome.
        """
        self.metrics.increment("updates_received")
        if self._updater is None:
            return {
                "id": request_id,
                "ok": False,
                "error": "no-live",
                "detail": "this server was started without live-update support",
            }
        if not isinstance(records, list) or not records:
            self.metrics.increment("bad_requests")
            return {
                "id": request_id,
                "ok": False,
                "error": "bad-update",
                "detail": "the request needs a non-empty op list under 'ops'",
            }
        try:
            ops = [op_from_record(record) for record in records]
        except LiveUpdateError as error:
            self.metrics.increment("update_errors")
            return {
                "id": request_id,
                "ok": False,
                "error": "bad-update",
                "detail": str(error),
            }
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            return {"id": request_id, "ok": False, "error": "overloaded"}
        arrived = time.perf_counter()
        self.metrics.observe_gauge("inflight", self.admission.depth)
        try:
            # EpochManager.apply serialises writers behind its own lock;
            # to_thread keeps the (possibly rebuild-heavy) apply off the
            # event loop so queries keep flowing while the shadow builds.
            try:
                swap = await asyncio.to_thread(self._updater.apply, ops)
            except LiveUpdateError as error:
                self.metrics.increment("update_errors")
                return {
                    "id": request_id,
                    "ok": False,
                    "error": "bad-update",
                    "detail": str(error),
                }
            except ClusterError as error:
                self.metrics.increment("errors")
                return {
                    "id": request_id,
                    "ok": False,
                    "error": "cluster",
                    "detail": str(error),
                }
            staleness = time.perf_counter() - arrived
            self.metrics.increment("updates")
            self.metrics.increment("update_ops", by=swap.num_ops)
            self.metrics.observe_gauge("epoch", swap.epoch)
            self.metrics.observe("apply_seconds", swap.apply_seconds)
            self.metrics.observe("swap_seconds", swap.swap_seconds)
            self.metrics.observe("staleness_seconds", staleness)
            return {
                "id": request_id,
                "ok": True,
                "epoch": swap.epoch,
                "applied": swap.to_dict(),
                "staleness_ms": staleness * 1000.0,
            }
        finally:
            self.admission.release()
            self.metrics.observe_gauge("inflight", self.admission.depth)

    async def _guarded_update(self, request_id, records, idem_key) -> dict:
        """At-most-once wrapper: the idempotency key gates the apply.

        The first submission with a key owns the apply; duplicates —
        concurrent or later, on this frontend or a sibling sharing the
        guard — get the owner's recorded reply with ``deduped: True``.
        A failed owner clears the key, so a retry re-runs for real.
        """
        if self.guard is None or not idem_key:
            return await self._apply_update_records(request_id, records)
        index = self.guard.idempotency
        while True:
            owner, cached = await asyncio.to_thread(index.begin, idem_key)
            if owner:
                break
            if cached is not None:
                self.metrics.increment("ha_deduped_updates")
                reply = dict(cached)
                reply["id"] = request_id
                reply["deduped"] = True
                return reply
            # The previous owner failed (or the wait timed out): loop to
            # claim the key and run the apply ourselves.
        try:
            reply = await self._apply_update_records(request_id, records)
        except BaseException:
            index.fail(idem_key)
            raise
        if reply.get("ok"):
            index.finish(idem_key, reply)
        else:
            index.fail(idem_key)
        return reply

    async def _handle_update(self, request_id, request: dict, conn: _Connection) -> None:
        started = time.perf_counter()
        reply = await self._guarded_update(
            request_id, request.get("ops"), request.get("idem")
        )
        if self.slo is not None:
            self.slo.record(
                "update", bool(reply.get("ok")), time.perf_counter() - started
            )
        await self._respond(conn, reply)

    async def _handle_chaos(self, request_id, request: dict, conn: _Connection) -> None:
        """Fault injection: kill a worker process (``allow_chaos`` only)."""
        if not self.config.allow_chaos:
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "chaos-disabled",
                    "detail": "start the server with allow_chaos to inject faults",
                },
            )
            return
        kill = request.get("kill")
        kill_worker = getattr(self._cluster, "kill_worker", None)
        if not isinstance(kill, int) or not callable(kill_worker):
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "bad-chaos",
                    "detail": "needs an integer 'kill' and a cluster with kill_worker",
                },
            )
            return
        try:
            was_alive = await asyncio.to_thread(kill_worker, kill)
        except ClusterError as error:
            await self._respond(
                conn,
                {"id": request_id, "ok": False, "error": "chaos", "detail": str(error)},
            )
            return
        self.metrics.increment("ha_chaos_kills")
        await self._respond(
            conn,
            {"id": request_id, "ok": True, "killed": kill, "was_alive": was_alive},
        )

    async def _handle_wire_update(
        self, request_id: int, records: list, conn: _Connection, idem_key=None
    ) -> None:
        started = time.perf_counter()
        reply = await self._guarded_update(request_id, records, idem_key)
        if self.slo is not None:
            self.slo.record(
                "update", bool(reply.get("ok")), time.perf_counter() - started
            )
        if reply.get("ok"):
            frame = wire.encode_update_ack(
                request_id,
                epoch=reply["epoch"],
                applied=reply["applied"]["num_ops"],
                staleness_ms=reply["staleness_ms"],
            )
        else:
            frame = wire.encode_error(
                request_id, reply["error"], reply.get("detail", "")
            )
        await self._send_raw(conn, frame)

    def _parse_query_text(self, request_id, text):
        """Parse + radius-check a wire query; ``(query, None)`` on success,
        ``(None, error_reply)`` otherwise.  Shared by ``query`` and
        ``subscribe``."""
        if not isinstance(text, str):
            self.metrics.increment("bad_requests")
            return None, {
                "id": request_id,
                "ok": False,
                "error": "bad-request",
                "detail": "the request needs a query string under 'q'",
            }
        try:
            query = parse_query(text)
        except QueryError as error:
            self.metrics.increment("parse_errors")
            return None, {
                "id": request_id,
                "ok": False,
                "error": "parse",
                "detail": str(error),
            }
        if (
            self.config.max_radius is not None
            and query.max_radius > self.config.max_radius
        ):
            self.metrics.increment("radius_rejections")
            return None, {
                "id": request_id,
                "ok": False,
                "error": "radius",
                "detail": (
                    f"radius {query.max_radius:g} exceeds the deployment "
                    f"maxR {self.config.max_radius:g}"
                ),
            }
        return query, None

    async def _handle_subscribe(
        self, request_id, request: dict, conn: _Connection
    ) -> None:
        channel = conn.channel
        self.metrics.increment("subscribes_received")
        if self.sub_engine is None:
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "no-sub",
                    "detail": "this server was started without standing-query support",
                },
            )
            return
        query, rejection = self._parse_query_text(request_id, request.get("q"))
        if rejection is not None:
            await self._respond(conn, rejection)
            return
        sub_id = request.get("sub")
        if sub_id is not None and not isinstance(sub_id, str):
            self.metrics.increment("bad_requests")
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "bad-subscribe",
                    "detail": "'sub' must be a string when given",
                },
            )
            return
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            if self.slo is not None:
                self.slo.record("subscribe", False, 0.0)
            await self._respond(
                conn, {"id": request_id, "ok": False, "error": "overloaded"}
            )
            return
        started = time.perf_counter()
        try:
            # Registration materializes the initial result (runs every
            # in-scope fragment task), so it goes off the event loop.
            try:
                subscription = await asyncio.to_thread(
                    self.sub_engine.register,
                    query,
                    sub_id=sub_id,
                    sink=channel.push,
                    scored=bool(request.get("scored", False)),
                )
            except DisksError as error:
                self.metrics.increment("update_errors")
                if self.slo is not None:
                    self.slo.record(
                        "subscribe", False, time.perf_counter() - started
                    )
                await self._respond(
                    conn,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": "bad-subscribe",
                        "detail": str(error),
                    },
                )
                return
            channel.subs.add(subscription.sub_id)
            if self.slo is not None:
                self.slo.record("subscribe", True, time.perf_counter() - started)
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": True,
                    "sub": subscription.sub_id,
                    "epoch": subscription.epoch,
                    "scored": subscription.scored,
                    "nodes": sorted(subscription.result),
                },
            )
        finally:
            self.admission.release()

    async def _handle_unsubscribe(
        self, request_id, request: dict, conn: _Connection
    ) -> None:
        if self.sub_engine is None:
            await self._respond(
                conn,
                {
                    "id": request_id,
                    "ok": False,
                    "error": "no-sub",
                    "detail": "this server was started without standing-query support",
                },
            )
            return
        sub_id = request.get("sub")
        removed = False
        if isinstance(sub_id, str):
            removed = await asyncio.to_thread(self.sub_engine.unregister, sub_id)
            conn.channel.subs.discard(sub_id)
        await self._respond(
            conn, {"id": request_id, "ok": True, "sub": sub_id, "removed": removed}
        )

    def _note_swap(self, _state, _delta, _swap) -> None:
        """Swap subscriber: remember when the last epoch published."""
        self._last_swap = time.monotonic()

    def _seconds_since_swap(self) -> float | None:
        last = self._last_swap
        return None if last is None else time.monotonic() - last

    def _query_failed(self, arrived: float) -> None:
        """SLO + retention accounting for a timed-out/errored query."""
        latency = time.perf_counter() - arrived
        if self.slo is not None:
            self.slo.record("query", False, latency)
        if self.retention is not None:
            # Nothing to retain (the spans never came back), but the
            # error still counts against the category counters.
            self.retention.decide(latency, error=True)

    async def _run_query(self, query, text):
        """Submit + await one parsed query; ``(response, trace, latency)``.

        Raises :class:`ClusterError` and :class:`asyncio.TimeoutError`
        for the caller to encode; on success all completion metrics,
        tracing, SLO accounting and the slow ring are already fed.
        Shared by the NDJSON query op and the binary QUERY/BATCH frames,
        which is what makes the two protocol paths answer-identical by
        construction — and what makes the semantic result cache cover
        both with one probe site.

        ``text`` is the query-language rendering for traces and the
        slow-query ring — either a string or a zero-arg callable, so the
        binary path only pays for rendering on the sampled/slow queries
        that actually record it.

        Cache interplay: head-sampled traced queries bypass the cache
        (their spans must describe a real dispatch), degraded clusters
        bypass it (partial answers must be neither served from nor
        admitted to it), and a miss dispatches in explain mode so the
        admission carries the per-term distance maps subsumption
        filters on.  Under tail sampling every query is traced, so the
        cache is probed anyway and a miss dispatches traced — the
        admission then carries no partials (exact-key entry only).  The
        epoch recheck lives in :meth:`SemanticResultCache.admit`.

        Tail mode: the returned ``trace`` is non-``None`` only when the
        retention policy kept the spans — a dropped trace never leaks a
        dangling ``trace_id`` to the client.
        """
        arrived = time.perf_counter()
        tail = self.retention is not None
        if tail:
            trace = TraceContext(trace_id=new_trace_id())
        else:
            trace = self.tracer.maybe_trace()
        cache = self.result_cache
        ticket = None
        if (
            cache is not None
            and (tail or trace is None)
            and not self._cluster.degraded
        ):
            hit, ticket = cache.probe(query)
            if hit is not None:
                latency = time.perf_counter() - arrived
                self.metrics.observe("latency_seconds", latency)
                self.metrics.increment("completed")
                if self.slo is not None:
                    self.slo.record("query", True, latency)
                if tail:
                    # Cache hits feed the latency window (the p99 must
                    # reflect real traffic) but carry no spans to keep.
                    self.retention.decide(latency)
                response = _CachedResponse(
                    result_nodes=hit.nodes, wall_seconds=latency
                )
                return response, None, latency
        try:
            if trace is not None:
                pending = self._cluster.submit(query, trace=trace)
            elif ticket is not None and self._cluster_explains:
                pending = self._cluster.submit(query, explain=True)
            else:
                pending = self._cluster.submit(query)
            try:
                response = await asyncio.wait_for(
                    asyncio.wrap_future(pending.future),
                    self.config.query_timeout_seconds,
                )
            except asyncio.TimeoutError:
                self._cluster.forget(pending.request_id)
                self.metrics.increment("timeouts")
                raise
        except (asyncio.TimeoutError, ClusterError):
            self._query_failed(arrived)
            raise
        latency = time.perf_counter() - arrived
        self.metrics.increment("completed")
        for machine_id, seconds in response.machine_seconds.items():
            self.metrics.add_busy(machine_id, seconds)
        cache_stale = False
        if (
            ticket is not None
            and not response.degraded
            and not self._cluster.degraded
        ):
            outcome = self.result_cache.admit_outcome(
                ticket, response.result_nodes, getattr(response, "partials", None)
            )
            cache_stale = outcome == "stale"
        degraded = bool(response.degraded or self._cluster.degraded)
        attempt = getattr(response, "attempt", 0)
        if self.slo is not None:
            self.slo.record("query", True, latency)
        spans = getattr(response, "spans", ())
        if spans:
            self.hotspots.feed_spans(spans)
        slow = latency * 1000.0 >= self.config.slow_query_ms
        if tail:
            kept = self.retention.decide(
                latency,
                degraded=degraded,
                attempt=attempt,
                cache_stale=cache_stale,
                seconds_since_swap=self._seconds_since_swap(),
            )
            slow = slow or "slow" in kept
            if kept:
                rendered = text() if callable(text) else text
                self._finish_trace(
                    trace, rendered, response, latency, slow, categories=kept
                )
            elif slow:
                rendered = text() if callable(text) else text
                self.metrics.increment("slow_queries")
                self._slow_queries.append(
                    self._slow_entry(None, rendered, response, latency)
                )
            exemplar = trace.trace_id if kept else None
            trace = trace if kept else None
        else:
            exemplar = trace.trace_id if trace is not None else None
            if trace is not None or slow:
                rendered = text() if callable(text) else text
                if trace is not None:
                    self._finish_trace(trace, rendered, response, latency, slow)
                else:
                    # Unsampled slow query: spans cannot be collected after
                    # the fact, so the ring gets a coarse entry instead.
                    self.metrics.increment("slow_queries")
                    self._slow_queries.append(
                        self._slow_entry(None, rendered, response, latency)
                    )
        self.metrics.observe("latency_seconds", latency, exemplar=exemplar)
        return response, trace, latency

    async def _handle_query(self, request_id, request: dict, conn: _Connection) -> None:
        self.metrics.increment("received")
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            if self.slo is not None:
                self.slo.record("query", False, 0.0)
            await self._respond(
                conn, {"id": request_id, "ok": False, "error": "overloaded"}
            )
            return
        self.metrics.observe_gauge("inflight", self.admission.depth)
        try:
            text = request.get("q")
            query, rejection = self._parse_query_text(request_id, text)
            if rejection is not None:
                await self._respond(conn, rejection)
                return
            try:
                response, trace, latency = await self._run_query(query, text)
            except asyncio.TimeoutError:
                await self._respond(
                    conn, {"id": request_id, "ok": False, "error": "timeout"}
                )
                return
            except ClusterError as error:
                self.metrics.increment("errors")
                await self._respond(
                    conn,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": "cluster",
                        "detail": str(error),
                        "degraded": self._cluster.degraded,
                    },
                )
                return
            reply = {
                "id": request_id,
                "ok": True,
                "nodes": sorted(response.result_nodes),
                "degraded": response.degraded or self._cluster.degraded,
                "timing": {
                    "latency_ms": latency * 1000.0,
                    "wall_ms": response.wall_seconds * 1000.0,
                    "makespan_ms": max(response.machine_seconds.values(), default=0.0)
                    * 1000.0,
                    "message_bytes": response.message_bytes,
                },
            }
            if trace is not None:
                reply["trace_id"] = trace.trace_id
            await self._respond(conn, reply)
        finally:
            self.admission.release()
            self.metrics.observe_gauge("inflight", self.admission.depth)

    async def _wire_query_reply(self, request_id: int, query) -> bytes:
        """Run one binary query; return its ANSWER or ERROR frame bytes."""
        self.metrics.increment("received")
        if not self.admission.try_acquire():
            self.metrics.increment("shed")
            if self.slo is not None:
                self.slo.record("query", False, 0.0)
            return wire.encode_error(request_id, "overloaded")
        self.metrics.observe_gauge("inflight", self.admission.depth)
        try:
            if (
                self.config.max_radius is not None
                and query.max_radius > self.config.max_radius
            ):
                self.metrics.increment("radius_rejections")
                return wire.encode_error(
                    request_id,
                    "radius",
                    f"radius {query.max_radius:g} exceeds the deployment "
                    f"maxR {self.config.max_radius:g}",
                )
            try:
                response, _trace, latency = await self._run_query(
                    query, lambda: render_query(query)
                )
            except asyncio.TimeoutError:
                return wire.encode_error(request_id, "timeout")
            except ClusterError as error:
                self.metrics.increment("errors")
                return wire.encode_error(request_id, "cluster", str(error))
            return wire.encode_answer(
                request_id,
                response.result_nodes,
                degraded=bool(response.degraded or self._cluster.degraded),
                latency_ms=latency * 1000.0,
                wall_ms=response.wall_seconds * 1000.0,
                makespan_ms=max(response.machine_seconds.values(), default=0.0)
                * 1000.0,
                message_bytes=response.message_bytes,
            )
        finally:
            self.admission.release()
            self.metrics.observe_gauge("inflight", self.admission.depth)

    async def _handle_wire_query(
        self, request_id: int, query, conn: _Connection
    ) -> None:
        """One binary QUERY: ANSWER frame or ERROR frame."""
        await self._send_raw(conn, await self._wire_query_reply(request_id, query))

    async def _handle_wire_batch(self, entries, conn: _Connection) -> None:
        """One BATCH frame: run every entry concurrently, reply in one write.

        Entries still pass admission control individually (a batch
        larger than the inflight budget sheds its excess), but their
        ANSWER/ERROR frames are concatenated into a single socket write
        — the response-side half of the batching amortisation.
        """
        frames = await asyncio.gather(
            *(self._wire_query_reply(request_id, query) for request_id, query in entries)
        )
        await self._send_raw(conn, b"".join(frames))

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    _STAGE_HISTOGRAMS = {
        "queue-wait": "stage_queue_seconds",
        "eval": "stage_eval_seconds",
        "union": "stage_union_seconds",
        "serialize": "stage_serialize_seconds",
    }

    def _finish_trace(
        self, trace, text, response, latency, slow, categories=()
    ) -> None:
        """Store a retained query's spans; feed stage histograms and sinks."""
        spans = getattr(response, "spans", ())
        for span in spans:
            histogram = self._STAGE_HISTOGRAMS.get(span.name)
            if histogram is not None and span.end is not None:
                self.metrics.observe(histogram, span.duration_seconds)
        meta = {}
        if categories:
            meta["retained_by"] = list(categories)
        record = self.tracer.record(
            trace.trace_id,
            spans,
            query=text,
            latency_ms=latency * 1000.0,
            slow=slow,
            degraded=bool(response.degraded or self._cluster.degraded),
            **meta,
        )
        if slow:
            self.metrics.increment("slow_queries")
            self._slow_queries.append(
                self._slow_entry(trace.trace_id, text, response, latency)
            )
        if self._trace_sink is not None:
            self._trace_sink.write(record)

    def _slow_entry(self, trace_id, text, response, latency) -> dict:
        # Epoch and degraded/attempt flags stamp even the coarse
        # unsampled entries, so tail retention (and `repro top`) can
        # triage them without the full span tree.
        return {
            "trace_id": trace_id,
            "query": text,
            "latency_ms": latency * 1000.0,
            "wall_ms": response.wall_seconds * 1000.0,
            "degraded": bool(response.degraded),
            "attempt": getattr(response, "attempt", 0),
            "epoch": self._current_epoch(),
            "wall_time": time.time(),
        }

    def _trace_payload(self, request_id, request: dict) -> dict:
        """The ``trace`` op: recent traces, slow ring, events, counters."""
        trace_id = request.get("trace_id")
        if isinstance(trace_id, str):
            record = self.tracer.get(trace_id)
            if record is None:
                return {
                    "id": request_id,
                    "ok": False,
                    "error": "unknown-trace",
                    "detail": trace_id,
                }
            return {"id": request_id, "ok": True, "trace": record}
        n = request.get("n", 8)
        if not isinstance(n, int) or n < 0:
            n = 8
        return {
            "id": request_id,
            "ok": True,
            "sampling": {
                "rate": self.tracer.sample_rate,
                **self.tracer.counts,
            },
            "traces": self.tracer.recent(n),
            "slow": list(self._slow_queries)[-n:],
            "events": global_events().tail(n),
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _ha_block(self) -> dict | None:
        """Replication + guard state, when either is present (duck-typed)."""
        block: dict = {}
        ha_stats = getattr(self._cluster, "ha_stats", None)
        if callable(ha_stats):
            block.update(ha_stats())
        if self.guard is not None:
            block["guard"] = self.guard.stats()
        return block or None

    def _sync_ha_gauges(self) -> None:
        """Mirror replication state into ``repro_ha_*`` gauges."""
        ha_stats = getattr(self._cluster, "ha_stats", None)
        if callable(ha_stats):
            state = ha_stats()
            self.metrics.observe_gauge("ha_machines_alive", state["machines_alive"])
            self.metrics.observe_gauge(
                "ha_replicas_alive_min", state["replicas_alive_min"]
            )
            self.metrics.observe_gauge("ha_reroutes", state["reroutes"])
            self.metrics.observe_gauge("ha_failovers", state["failovers"])
            self.metrics.observe_gauge("ha_restarts", state["restarts"])
        if self.guard is not None:
            guard_stats = self.guard.stats()
            idem = guard_stats.get("idempotency", {})
            self.metrics.observe_gauge("ha_deduped_total", idem.get("deduped", 0))
            limiter = guard_stats.get("rate_limiter")
            if limiter:
                self.metrics.observe_gauge(
                    "ha_rate_limited_total", limiter.get("limited", 0)
                )

    def stats(self) -> dict:
        """The ``stats`` admin payload: metrics + admission + cluster."""
        self._sync_ha_gauges()
        snapshot = self.metrics.snapshot()
        snapshot["admission"] = {
            "depth": self.admission.depth,
            "limit": self.admission.limit,
        }
        snapshot["cluster"] = {
            "machines": self._cluster.num_machines,
            "degraded": self._cluster.degraded,
            "dead_machines": sorted(self._cluster.dead_machines),
        }
        # Duck-typed like the rest of the cluster interface: clusters
        # that aggregate per-runtime coverage-cache counters (hits /
        # misses / skipped-by-size) surface them here.
        cache_stats = getattr(self._cluster, "coverage_cache_stats", None)
        if callable(cache_stats):
            try:
                snapshot["coverage_cache"] = cache_stats()
            except ClusterError:
                # A dying cluster should not take the stats op with it.
                pass
        if self.result_cache is not None:
            snapshot["result_cache"] = self.result_cache.stats()
        snapshot["tracing"] = {
            "mode": "tail" if self.retention is not None else "head",
            "rate": self.tracer.sample_rate,
            **self.tracer.counts,
            "slow_ring": len(self._slow_queries),
        }
        if self.retention is not None:
            snapshot["tracing"]["retention"] = self.retention.snapshot()
        if self.slo is not None:
            snapshot["slo"] = self.slo.snapshot()
        hotspots = self.hotspots.snapshot()
        if hotspots["evals"]:
            snapshot["hotspots"] = hotspots
        if self.sub_engine is not None:
            snapshot["subscriptions"] = self.sub_engine.stats()
        ha_block = self._ha_block()
        if ha_block is not None:
            snapshot["ha"] = ha_block
        epoch = self._current_epoch()
        if epoch is not None:
            live: dict = {"epoch": epoch}
            if self._updater is not None:
                history = self._updater.history
                live["applied_batches"] = len(history)
                live["applied_ops"] = sum(swap.num_ops for swap in history)
                # The most recent swaps, for per-epoch apply metrics.
                live["recent_swaps"] = [swap.to_dict() for swap in history[-5:]]
            snapshot["live"] = live
        return snapshot


@contextlib.contextmanager
def serve_in_thread(
    cluster,
    config: ServeConfig | None = None,
    metrics: MetricsRegistry | None = None,
    updater=None,
    sub_engine=None,
    guard=None,
) -> Iterator[DisksServer]:
    """Run a :class:`DisksServer` on a background event loop.

    Lets synchronous code (tests, notebooks) stand a server up without
    owning an event loop::

        with serve_in_thread(cluster) as server:
            client = ServeClient(server.host, server.port)
    """
    server = DisksServer(
        cluster,
        config=config,
        metrics=metrics,
        updater=updater,
        sub_engine=sub_engine,
        guard=guard,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # surfaced to the caller below
            failure.append(error)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            leftovers = asyncio.all_tasks(loop)
            for task in leftovers:
                task.cancel()
            if leftovers:
                loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=_run, name="disks-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):
        raise ClusterError("the server failed to start within 10s")
    if failure:
        raise ClusterError(f"the server failed to start: {failure[0]}")
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
