"""Admission control: a bounded in-flight budget with load shedding.

The frontend admits at most ``limit`` queries at once.  Past the
high-water mark it *sheds*: the caller gets an immediate ``overloaded``
rejection instead of queueing unboundedly — under saturation a fast
"no" preserves the latency of the queries that are admitted (the
classic open-loop collapse the workload driver in
:mod:`repro.workloads.driver` demonstrates).

The controller is a plain counting gate, safe from both asyncio
callbacks and dispatcher threads.
"""

from __future__ import annotations

import threading

from repro.exceptions import ClusterError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Thread-safe bounded admission gate."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ClusterError("the admission limit must be at least 1")
        self._limit = limit
        self._depth = 0
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        """The high-water mark."""
        return self._limit

    @property
    def depth(self) -> int:
        """Currently admitted queries."""
        with self._lock:
            return self._depth

    def try_acquire(self) -> bool:
        """Admit one query, or refuse (shed) if the budget is spent."""
        with self._lock:
            if self._depth >= self._limit:
                return False
            self._depth += 1
            return True

    def release(self) -> None:
        """Return one admission slot."""
        with self._lock:
            if self._depth == 0:
                raise ClusterError("release() without a matching try_acquire()")
            self._depth -= 1
