"""The serving layer: concurrent query serving over a process cluster.

This subpackage turns the reproduction into a *server* — the deployment
shape the paper's throughput story (§1, §5) actually implies:

* :mod:`repro.serve.pipeline` — the pipelined worker protocol
  (request-id multiplexing, dispatcher threads, worker-crash
  detection + degraded mode);
* :mod:`repro.serve.server` — the asyncio TCP frontend (NDJSON and the
  DSKW binary protocol on one port, routed by first-byte sniff) with
  admission control, load shedding and per-query timeouts;
* :mod:`repro.serve.wire` — the binary frame grammar shared by the TCP
  frontend and the coordinator↔worker pipes (the fast data plane);
* :mod:`repro.serve.admission` / :mod:`repro.serve.metrics` — the
  robustness and observability substrate (``stats`` admin command);
* :mod:`repro.serve.client` — a blocking client plus the closed-loop
  load generator behind ``python -m repro loadgen``;
* :mod:`repro.serve.protocol` — the wire format and the
  query-object→query-language renderer.

Standing queries: pass a :class:`~repro.sub.engine.SubscriptionEngine`
as ``sub_engine`` (server constructor or :func:`serve_in_thread`) and
the frontend additionally speaks ``subscribe``/``unsubscribe``, pushing
``notify``/``resync`` frames to subscribing connections as live updates
change their results (see :mod:`repro.sub`).

Quick start::

    from repro.serve import PipelinedCluster, ServeConfig, serve_in_thread, ServeClient

    cluster = PipelinedCluster.start(fragments, indexes, num_machines=4)
    with serve_in_thread(cluster, ServeConfig(max_inflight=8)) as server:
        with ServeClient(server.host, server.port) as client:
            print(client.query("NEAR(kw0001, 5) AND NEAR(kw0002, 5)"))
    cluster.shutdown()
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import (
    BinaryServeClient,
    LoadgenReport,
    ServeClient,
    generate_expressions,
    run_loadgen,
)
from repro.serve.metrics import LatencyHistogram, MetricsRegistry
from repro.serve.pipeline import PendingQuery, PipelinedCluster, PipelinedResponse
from repro.serve.protocol import decode_line, encode_line, render_query
from repro.serve.server import DisksServer, ServeConfig, serve_in_thread

__all__ = [
    "PipelinedCluster",
    "PipelinedResponse",
    "PendingQuery",
    "DisksServer",
    "ServeConfig",
    "serve_in_thread",
    "AdmissionController",
    "MetricsRegistry",
    "LatencyHistogram",
    "ServeClient",
    "BinaryServeClient",
    "LoadgenReport",
    "generate_expressions",
    "run_loadgen",
    "render_query",
    "encode_line",
    "decode_line",
]
