"""Blocking client and closed-loop load generator for the serving layer.

:class:`ServeClient` is the minimal synchronous counterpart of the
NDJSON protocol — one socket, one JSON object per line, replies matched
by id (so a single client can pipeline bursts with
:meth:`ServeClient.send` + :meth:`ServeClient.read_reply`).

:func:`run_loadgen` drives a server *closed-loop*: ``num_clients``
threads each hold one connection and issue their share of the query
stream back-to-back, which is the standard way to measure sustained
throughput and tail latency of a concurrent server (offered load adapts
to capacity, so the numbers are not inflated by queueing fantasy).
Query text comes from :func:`generate_expressions`, which reuses the
paper's §6 generator (:class:`~repro.workloads.querygen.QueryGenerator`)
and renders its queries into the wire language.
"""

from __future__ import annotations

import math
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.core.language import parse_query
from repro.exceptions import ClusterError, DisksError
from repro.graph.road_network import RoadNetwork
from repro.serve import wire
from repro.serve.protocol import encode_line, decode_line, render_query
from repro.workloads.querygen import QueryGenConfig, QueryGenerator

__all__ = [
    "ServeClient",
    "BinaryServeClient",
    "LoadgenReport",
    "generate_expressions",
    "run_loadgen",
]


class ServeClient:
    """A synchronous NDJSON client for :class:`~repro.serve.DisksServer`.

    One connection carries both request/response traffic and — once
    :meth:`subscribe` has registered a standing query — server-pushed
    ``notify`` / ``resync`` frames.  The client demultiplexes on the
    ``push`` key: :meth:`read_reply` skips pushed frames (parking them
    for :meth:`notifications`), and :meth:`notifications` parks replies
    it encounters for the next :meth:`read_reply`.  The transport is an
    explicit receive buffer, so a timed-out wait in
    :meth:`notifications` never corrupts a partially received line.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7474, *, timeout_seconds: float = 30.0
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_seconds)
        except OSError as error:
            raise ClusterError(f"cannot reach server at {host}:{port}: {error}") from None
        self._timeout = timeout_seconds
        self._buffer = bytearray()
        self._pushes: deque[dict] = deque()
        self._replies: deque[dict] = deque()

    # Transport ---------------------------------------------------------
    def send(self, payload: dict) -> None:
        """Write one request line without waiting for the reply."""
        self._sock.sendall(encode_line(payload))

    def _read_frame(self, timeout_seconds: float | None = None) -> dict:
        """The next decoded frame, waiting at most ``timeout_seconds``.

        ``None`` waits with the connection's default timeout.  On a
        timed-out wait the partial line stays in the buffer and
        ``TimeoutError`` propagates — the stream remains consistent.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                if line.strip():
                    return decode_line(line)
                continue
            if timeout_seconds is not None:
                self._sock.settimeout(timeout_seconds)
            try:
                chunk = self._sock.recv(65536)
            except (TimeoutError, BlockingIOError):
                raise TimeoutError("no frame within the wait window") from None
            finally:
                if timeout_seconds is not None:
                    self._sock.settimeout(self._timeout)
            if not chunk:
                raise ClusterError("the server closed the connection")
            self._buffer.extend(chunk)

    def read_reply(self) -> dict:
        """Read the next reply line (not necessarily for the last send).

        Pushed ``notify``/``resync`` frames encountered on the way are
        parked for :meth:`notifications`.
        """
        if self._replies:
            return self._replies.popleft()
        while True:
            frame = self._read_frame()
            if "push" in frame:
                self._pushes.append(frame)
                continue
            return frame

    def request(self, payload: dict) -> dict:
        """One synchronous round trip."""
        self.send(payload)
        return self.read_reply()

    # Convenience -------------------------------------------------------
    def query(self, expression: str, request_id=None) -> dict:
        """Submit one query-language expression."""
        return self.request({"id": request_id, "q": expression})

    def stats(self) -> dict:
        """The server's metrics snapshot."""
        reply = self.request({"op": "stats"})
        if not reply.get("ok"):
            raise ClusterError(f"stats failed: {reply}")
        return reply["stats"]

    def info(self) -> dict:
        """Cluster shape and limits."""
        reply = self.request({"op": "info"})
        if not reply.get("ok"):
            raise ClusterError(f"info failed: {reply}")
        return reply

    def epoch(self) -> int | None:
        """The index epoch the server is currently serving."""
        reply = self.request({"op": "epoch"})
        if not reply.get("ok"):
            raise ClusterError(f"epoch failed: {reply}")
        return reply["epoch"]

    def trace(self, *, trace_id: str | None = None, n: int = 8) -> dict:
        """Recent sampled traces, the slow-query ring, and obs events.

        With ``trace_id`` the reply carries that single stored trace
        under ``"trace"``; otherwise ``"traces"`` (newest last),
        ``"slow"``, ``"events"`` and the ``"sampling"`` counters.
        """
        payload: dict = {"op": "trace", "n": n}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        reply = self.request(payload)
        if not reply.get("ok"):
            raise ClusterError(f"trace failed: {reply}")
        return reply

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        reply = self.request({"op": "metrics"})
        if not reply.get("ok"):
            raise ClusterError(f"metrics failed: {reply}")
        return reply["text"]

    def update(self, ops, request_id=None, *, idempotency_key: str | None = None) -> dict:
        """Apply one live-update batch.

        ``ops`` may be :class:`~repro.live.ops.UpdateOp` objects or
        already-encoded op records (dicts).  ``idempotency_key`` makes
        the submission at-most-once on guarded servers: a retry (or a
        duplicate through another frontend) with the same key returns
        the original reply with ``deduped: True`` instead of
        re-applying.
        """
        records = [
            op.to_record() if hasattr(op, "to_record") else op for op in ops
        ]
        payload: dict = {"id": request_id, "op": "update", "ops": records}
        if idempotency_key is not None:
            payload["idem"] = idempotency_key
        return self.request(payload)

    def chaos_kill(self, machine_id: int, request_id=None) -> dict:
        """Ask an ``allow_chaos`` server to kill a worker (fault drill)."""
        return self.request({"id": request_id, "op": "chaos", "kill": machine_id})

    # Standing queries --------------------------------------------------
    def subscribe(
        self, expression: str, request_id=None, *, sub_id: str | None = None,
        scored: bool = False,
    ) -> dict:
        """Register a standing query on this connection.

        The reply carries the subscription id under ``"sub"`` and the
        full initial result under ``"nodes"``; subsequent changes
        arrive as pushed frames via :meth:`notifications`.
        """
        payload: dict = {"id": request_id, "op": "subscribe", "q": expression}
        if sub_id is not None:
            payload["sub"] = sub_id
        if scored:
            payload["scored"] = True
        return self.request(payload)

    def unsubscribe(self, sub_id: str, request_id=None) -> dict:
        """Drop a standing query registered on this connection."""
        return self.request({"id": request_id, "op": "unsubscribe", "sub": sub_id})

    def notifications(self, *, timeout_seconds: float = 0.0) -> Iterator[dict]:
        """Yield pushed frames until a wait for the next one expires.

        Each frame is a dict with ``frame["push"]`` either ``"notify"``
        (incremental ``added``/``removed``/``rescored`` lists) or
        ``"resync"`` (the full ``nodes`` list after queue shedding —
        discard deltas for epochs ≤ its epoch).  ``timeout_seconds`` is
        the per-frame wait: the default ``0.0`` drains only what has
        already arrived.  Reply frames encountered while waiting are
        parked for :meth:`read_reply`, so notifications can be consumed
        mid-conversation on a connection that also issues requests.
        """
        while True:
            if self._pushes:
                yield self._pushes.popleft()
                continue
            try:
                frame = self._read_frame(timeout_seconds)
            except TimeoutError:
                return
            if "push" in frame:
                yield frame
            else:
                self._replies.append(frame)

    def close(self) -> None:
        """Close the connection."""
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class BinaryServeClient:
    """A synchronous client for the DSKW binary protocol.

    Connects, sends the 6-byte preamble, and expects the server's HELLO
    frame before anything else.  Queries travel as QUERY/BATCH frames
    and come back as ANSWER frames decoded into the same reply-dict
    shape the NDJSON client produces — callers can swap protocols
    without changing how they read results.  Admin ops (``stats``,
    ``trace``, ...) ride in JSON frames on the same connection.

    :meth:`prepare` parses + encodes a query expression once; the hot
    loop then pays one 8-byte id pack per send instead of a parse and a
    JSON encode.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7474, *, timeout_seconds: float = 30.0
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_seconds)
        except OSError as error:
            raise ClusterError(f"cannot reach server at {host}:{port}: {error}") from None
        self._timeout = timeout_seconds
        self._decoder = wire.FrameDecoder()
        self._pushes: deque[dict] = deque()
        self._next_id = 0
        self._sock.sendall(wire.encode_preamble())
        frame_type, payload = self._read_frame()
        if frame_type != wire.FRAME_HELLO:
            raise ClusterError(f"expected a HELLO frame, got type {frame_type}")
        self.version, self.features = wire.decode_hello(payload)

    # Transport ---------------------------------------------------------
    def _read_frame(self) -> tuple[int, bytes]:
        while True:
            try:
                frame = self._decoder.next_frame()
            except wire.WireProtocolError as error:
                raise ClusterError(f"protocol error from the server: {error}") from None
            if frame is not None:
                return frame
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ClusterError("the server closed the connection")
            self._decoder.feed(chunk)

    def _allocate_id(self, request_id: int | None) -> int:
        if request_id is not None:
            return request_id
        self._next_id += 1
        return self._next_id

    def prepare(self, expression: str) -> bytes:
        """Parse + encode one query expression into a reusable body."""
        return wire.encode_query_body(parse_query(expression))

    def send_query(self, prepared: bytes | str, request_id: int | None = None) -> int:
        """Fire one QUERY frame without waiting; returns its id."""
        if isinstance(prepared, str):
            prepared = self.prepare(prepared)
        request_id = self._allocate_id(request_id)
        self._sock.sendall(
            wire.encode_frame(
                wire.FRAME_QUERY, request_id.to_bytes(8, "little") + prepared
            )
        )
        return request_id

    def read_reply(self) -> dict:
        """The next non-push reply, as an NDJSON-shaped dict."""
        while True:
            frame_type, payload = self._read_frame()
            if frame_type == wire.FRAME_ANSWER:
                return wire.decode_answer(payload)
            if frame_type == wire.FRAME_ERROR:
                return wire.decode_error(payload)
            if frame_type == wire.FRAME_UPDATE_ACK:
                return wire.decode_update_ack(payload)
            if frame_type == wire.FRAME_JSON:
                reply = wire.decode_json_payload(payload)
                if "push" in reply:
                    self._pushes.append(reply)
                    continue
                return reply
            raise ClusterError(f"unexpected frame type {frame_type} from the server")

    def query(self, expression: str, request_id: int | None = None) -> dict:
        """One synchronous round trip over the binary path."""
        self.send_query(expression, request_id)
        return self.read_reply()

    def query_batch(self, prepared: list[bytes], first_id: int | None = None) -> list[dict]:
        """Send one BATCH frame; replies returned in request-id order."""
        if not prepared:
            return []
        base = self._allocate_id(first_id)
        self._next_id = max(self._next_id, base + len(prepared) - 1)
        entries = [(base + i, body) for i, body in enumerate(prepared)]
        self._sock.sendall(wire.encode_batch(entries))
        replies = {reply["id"]: reply for reply in (self.read_reply() for _ in entries)}
        return [replies[request_id] for request_id, _ in entries]

    def update(
        self,
        ops,
        request_id: int | None = None,
        *,
        idempotency_key: str | None = None,
    ) -> dict:
        """Apply one live-update batch over an UPDATE frame."""
        records = [op.to_record() if hasattr(op, "to_record") else op for op in ops]
        request_id = self._allocate_id(request_id)
        self._sock.sendall(
            wire.encode_update(request_id, records, idempotency_key=idempotency_key)
        )
        return self.read_reply()

    def request(self, payload: dict) -> dict:
        """One admin round trip in a JSON frame."""
        self._sock.sendall(wire.encode_json_frame(payload))
        return self.read_reply()

    def stats(self) -> dict:
        """The server's metrics snapshot."""
        reply = self.request({"op": "stats"})
        if not reply.get("ok"):
            raise ClusterError(f"stats failed: {reply}")
        return reply["stats"]

    def close(self) -> None:
        """Close the connection."""
        self._sock.close()

    def __enter__(self) -> "BinaryServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def generate_expressions(
    network: RoadNetwork,
    *,
    count: int,
    radius: float,
    num_keywords: int = 2,
    rkq_fraction: float = 0.25,
    seed: int = 0,
    zipf: float | None = None,
) -> list[str]:
    """A reproducible stream of wire-language queries (§6 protocol).

    ``zipf`` switches the keyword selection to Zipf(s) skew over the
    global frequency rank (see :class:`QueryGenConfig.zipf_exponent`);
    ``None`` keeps the paper's frequency-proportional default.
    """
    if count < 1:
        raise DisksError("the expression stream needs at least one query")
    generator = QueryGenerator(network, QueryGenConfig(seed=seed, zipf_exponent=zipf))
    rng = random.Random(seed)
    expressions: list[str] = []
    for _ in range(count):
        if rng.random() < rkq_fraction:
            query = generator.rkq(num_keywords, radius)
        else:
            query = generator.sgkq(num_keywords, radius)
        expressions.append(render_query(query))
    return expressions


@dataclass(frozen=True)
class LoadgenReport:
    """Outcome of one closed-loop run."""

    sent: int
    ok: int
    shed: int
    errors: int
    wall_seconds: float
    latencies_seconds: tuple[float, ...]

    @property
    def throughput_qps(self) -> float:
        """Completed (ok) queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return math.inf
        return self.ok / self.wall_seconds

    def percentile(self, fraction: float) -> float:
        """Latency percentile over successful queries, seconds."""
        if not (0.0 <= fraction <= 1.0):
            raise DisksError("percentile fraction must lie in [0, 1]")
        ordered = sorted(self.latencies_seconds)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]

    @property
    def p50_ms(self) -> float:
        """Median latency, milliseconds."""
        return self.percentile(0.50) * 1000.0

    @property
    def p95_ms(self) -> float:
        """95th-percentile latency, milliseconds."""
        return self.percentile(0.95) * 1000.0

    @property
    def p99_ms(self) -> float:
        """99th-percentile latency, milliseconds."""
        return self.percentile(0.99) * 1000.0


def run_loadgen(
    host: str,
    port: int,
    expressions: list[str],
    *,
    num_clients: int = 4,
    timeout_seconds: float = 60.0,
    protocol: str = "ndjson",
    batch: int = 1,
    kill_workers: list[tuple[int, float]] | None = None,
) -> LoadgenReport:
    """Replay ``expressions`` closed-loop from ``num_clients`` connections.

    ``protocol`` picks the wire: ``"ndjson"`` (the default, one JSON
    line per query) or ``"binary"`` (DSKW frames with queries prepared
    once per connection).  ``batch`` > 1 packs that many queries into
    each BATCH frame on the binary path — per-query latency is then the
    batch round trip divided by its size.

    ``kill_workers`` schedules fault injection: each ``(machine_id,
    at_seconds)`` sends a ``chaos`` kill op that long after the run
    starts (the server must be started with ``allow_chaos``).  The kill
    itself is fire-and-forget; its effect shows up in the outcome
    counts — on an HA cluster with live replicas, ``errors`` should
    stay at zero.
    """
    if not expressions:
        raise DisksError("the load generator needs a non-empty query stream")
    if num_clients < 1:
        raise DisksError("the load generator needs at least one client")
    if protocol not in ("ndjson", "binary"):
        raise DisksError(f"unknown loadgen protocol {protocol!r}")
    if batch < 1:
        raise DisksError("the batch size must be at least 1")
    if batch > 1 and protocol != "binary":
        raise DisksError("query batching needs the binary protocol")
    num_clients = min(num_clients, len(expressions))
    shards: list[list[str]] = [[] for _ in range(num_clients)]
    for i, expression in enumerate(expressions):
        shards[i % num_clients].append(expression)

    lock = threading.Lock()
    outcomes = {"ok": 0, "shed": 0, "errors": 0}
    latencies: list[float] = []

    def _absorb(reply: dict, elapsed: float) -> None:
        with lock:
            if reply.get("ok"):
                outcomes["ok"] += 1
                latencies.append(elapsed)
            elif reply.get("error") == "overloaded":
                outcomes["shed"] += 1
            else:
                outcomes["errors"] += 1

    def _drive_ndjson(shard: list[str]) -> None:
        with ServeClient(host, port, timeout_seconds=timeout_seconds) as client:
            for expression in shard:
                started = time.perf_counter()
                try:
                    reply = client.query(expression)
                except ClusterError:
                    with lock:
                        outcomes["errors"] += 1
                    continue
                _absorb(reply, time.perf_counter() - started)

    def _drive_binary(shard: list[str]) -> None:
        with BinaryServeClient(host, port, timeout_seconds=timeout_seconds) as client:
            prepared = [client.prepare(expression) for expression in shard]
            for start in range(0, len(prepared), batch):
                chunk = prepared[start : start + batch]
                started = time.perf_counter()
                try:
                    replies = client.query_batch(chunk)
                except ClusterError:
                    with lock:
                        outcomes["errors"] += len(chunk)
                    continue
                per_query = (time.perf_counter() - started) / len(chunk)
                for reply in replies:
                    _absorb(reply, per_query)

    def _drive(shard: list[str]) -> None:
        try:
            if protocol == "binary":
                _drive_binary(shard)
            else:
                _drive_ndjson(shard)
        except ClusterError:
            with lock:
                outcomes["errors"] += len(shard)

    def _kill(machine_id: int) -> None:
        try:
            with ServeClient(host, port, timeout_seconds=timeout_seconds) as client:
                client.chaos_kill(machine_id)
        except (ClusterError, OSError):
            pass  # the drill is best-effort; the report tells the story

    threads = [
        threading.Thread(target=_drive, args=(shard,), name=f"loadgen-{i}")
        for i, shard in enumerate(shards)
    ]
    timers = [
        threading.Timer(at_seconds, _kill, args=(machine_id,))
        for machine_id, at_seconds in (kill_workers or [])
    ]
    started = time.perf_counter()
    for timer in timers:
        timer.daemon = True
        timer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for timer in timers:
        timer.cancel()
    wall = time.perf_counter() - started
    return LoadgenReport(
        sent=len(expressions),
        ok=outcomes["ok"],
        shed=outcomes["shed"],
        errors=outcomes["errors"],
        wall_seconds=wall,
        latencies_seconds=tuple(latencies),
    )
