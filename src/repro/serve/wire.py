"""Binary wire format: the fast half of the serving data plane.

The NDJSON protocol (:mod:`repro.serve.protocol`) stays — it is the
admin/debug surface and the compatibility path for old clients — but a
query crossing it costs a regex parse, two JSON codec passes and a
text-framed socket write.  This module defines the compact
length-prefixed struct-packed frames that carry query/answer/update
payloads on both the TCP frontend and the coordinator↔worker pipes.

TCP negotiation (first bytes on a fresh connection)::

    client -> b"DSKW" + u8 version + u8 feature bits     (6 bytes)
    server -> HELLO frame (u8 version + u8 feature bits)

NDJSON requests begin with ``{`` (0x7B) — never ``D`` — so the server
sniffs one byte and routes each connection to the right handler; no
flag, no separate port.

Frame grammar (all integers little-endian)::

    frame   := u32 length | u8 type | payload        length = 1 + len(payload)
    HELLO   (1)  u8 version | u8 features
    QUERY   (2)  u64 id | query
    ANSWER  (3)  u64 id | u8 flags(bit0 degraded) | u32 n | n×u64 nodes
                 | f64 latency_ms | f64 wall_ms | f64 makespan_ms
                 | u64 message_bytes
    ERROR   (4)  u8 has_id | u64 id | str error | str detail
    JSON    (5)  utf-8 JSON object (admin ops, pushes, anything NDJSON says)
    BATCH   (6)  u32 count | count × (u32 len | QUERY-payload)
    UPDATE  (7)  u64 id | u32 count | count × op
    UPDATE_ACK (8) u64 id | u64 epoch | u32 applied | f64 staleness_ms

    query   := u16 nterms | nterms × term | expr | str label
    term    := u8 kind(0 kw, 1 node) | (str keyword | u64 node) | f64 radius
    expr    := u16 nops | nops × (u8 0 leaf + u16 index | u8 1 ∪ | 2 ∩ | 3 −)
               — postfix; decoded with an explicit stack
    op      := u8 1 add_keyword    | u64 node | str keyword
             | u8 2 remove_keyword | u64 node | str keyword
             | u8 3 set_edge_weight| u64 u | u64 v | f64 weight
    str     := u16 len | utf-8 bytes

``f64`` is IEEE-754 binary64: radii, distances and timings round-trip
bit-exactly (including infinities), which is what lets the differential
suite demand bit-identical answers from both protocol paths.

Every decode error — truncated payload, trailing garbage, bad opcode,
undecodable UTF-8, a declared length beyond :data:`MAX_FRAME_BYTES` —
raises :class:`WireProtocolError`.  Transports treat that as a protocol
error: reply with an ERROR frame and close.  :class:`FrameDecoder` is
the sans-IO incremental parser (feed bytes, pop frames) used by the
client and the fuzz tests.

The same payload codecs run on the worker pipes: pickle frames start
with 0x80 (protocol ≥ 2 opcode) and binary pipe frames with the tags
``Q``/``R``, so :func:`loads_pipe` sniffs one byte and returns the
exact ``(kind, body, sent_at)`` tuples the pickled protocol produced —
workers and dispatchers accept both encodings on one pipe, no flag day.
"""

from __future__ import annotations

import json
import pickle
import struct

from repro.core.dfunction import DExpression, SetOp
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.exceptions import QueryError

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "LENGTH_PREFIX",
    "FRAME_HELLO",
    "FRAME_QUERY",
    "FRAME_ANSWER",
    "FRAME_ERROR",
    "FRAME_JSON",
    "FRAME_BATCH",
    "FRAME_UPDATE",
    "FRAME_UPDATE_ACK",
    "WireProtocolError",
    "FrameDecoder",
    "encode_frame",
    "encode_preamble",
    "decode_preamble",
    "encode_hello",
    "decode_hello",
    "encode_query_payload",
    "decode_query_payload",
    "encode_query_body",
    "encode_answer",
    "decode_answer",
    "encode_error",
    "decode_error",
    "encode_json_frame",
    "decode_json_payload",
    "encode_batch",
    "decode_batch",
    "encode_update",
    "decode_update",
    "encode_update_ack",
    "decode_update_ack",
    "dumps_pipe_query",
    "dumps_pipe_results",
    "loads_pipe",
]

MAGIC = b"DSKW"
WIRE_VERSION = 1
MAX_FRAME_BYTES = 16 * 1024 * 1024

FRAME_HELLO = 1
FRAME_QUERY = 2
FRAME_ANSWER = 3
FRAME_ERROR = 4
FRAME_JSON = 5
FRAME_BATCH = 6
FRAME_UPDATE = 7
FRAME_UPDATE_ACK = 8

_FRAME_TYPES = frozenset(
    (
        FRAME_HELLO,
        FRAME_QUERY,
        FRAME_ANSWER,
        FRAME_ERROR,
        FRAME_JSON,
        FRAME_BATCH,
        FRAME_UPDATE,
        FRAME_UPDATE_ACK,
    )
)

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
# The u32 frame-length prefix, exported for transports that read the
# header themselves (the asyncio server) instead of using FrameDecoder.
LENGTH_PREFIX = _U32
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_HEADER = struct.Struct("<IB")

_PIPE_QUERY_TAG = 0x51  # 'Q'
_PIPE_RESULTS_TAG = 0x52  # 'R'
_PICKLE_OPCODE = 0x80  # every pickle protocol ≥ 2 stream starts with this

_OPCODE_LEAF = 0
_OPCODES = {1: SetOp.UNION, 2: SetOp.INTERSECT, 3: SetOp.SUBTRACT}
_OPCODE_OF = {op: code for code, op in _OPCODES.items()}


class WireProtocolError(ValueError):
    """A frame or payload violates the binary wire grammar."""


# ----------------------------------------------------------------------
# Primitive readers/writers
# ----------------------------------------------------------------------
class _Reader:
    """Bounds-checked cursor over one payload; truncation is an error."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes | memoryview) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise WireProtocolError(
                f"payload truncated: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = bytes(self.data[self.pos : end])
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireProtocolError(f"undecodable string: {error}") from None

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise WireProtocolError(
                f"{len(self.data) - self.pos} trailing garbage bytes after payload"
            )


def _put_string(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireProtocolError(f"string too long for the wire ({len(raw)} bytes)")
    out += _U16.pack(len(raw))
    out += raw


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One complete frame: u32 length, u8 type, payload."""
    length = 1 + len(payload)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(length, frame_type) + payload


class FrameDecoder:
    """Incremental frame parser: feed arbitrary chunks, pop whole frames.

    Sans-IO so the same logic serves the blocking client, the tests and
    the fuzzer.  A declared length of zero (no type byte) or beyond
    ``max_frame_bytes`` raises immediately — a reader must never
    allocate or wait on an adversarial length prefix.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes to the reassembly buffer."""
        self._buffer += data

    def next_frame(self) -> tuple[int, bytes] | None:
        """``(frame_type, payload)`` if a whole frame is buffered, else None."""
        if len(self._buffer) < 4:
            return None
        (length,) = _U32.unpack(self._buffer[:4])
        if length < 1:
            raise WireProtocolError("frame length must cover the type byte")
        if length > self._max:
            raise WireProtocolError(f"declared frame length {length} exceeds {self._max}")
        if len(self._buffer) < 4 + length:
            return None
        frame_type = self._buffer[4]
        payload = bytes(self._buffer[5 : 4 + length])
        del self._buffer[: 4 + length]
        if frame_type not in _FRAME_TYPES:
            raise WireProtocolError(f"unknown frame type {frame_type}")
        return frame_type, payload

    @property
    def buffered(self) -> int:
        return len(self._buffer)


def encode_preamble(features: int = 0) -> bytes:
    """The 6 bytes a binary client sends first."""
    return MAGIC + bytes((WIRE_VERSION, features & 0xFF))


def decode_preamble(raw: bytes) -> int:
    """Validate a client preamble; returns the feature bits."""
    if len(raw) != 6 or raw[:4] != MAGIC:
        raise WireProtocolError("bad magic: not a DSKW binary connection")
    if raw[4] != WIRE_VERSION:
        raise WireProtocolError(f"unsupported wire version {raw[4]}")
    return raw[5]


def encode_hello(features: int = 0) -> bytes:
    """The server's HELLO frame acknowledging a binary connection."""
    return encode_frame(FRAME_HELLO, bytes((WIRE_VERSION, features & 0xFF)))


def decode_hello(payload: bytes) -> tuple[int, int]:
    """``(version, features)`` from a HELLO payload; checks the version."""
    reader = _Reader(payload)
    version = reader.u8()
    features = reader.u8()
    reader.finish()
    if version != WIRE_VERSION:
        raise WireProtocolError(f"server speaks wire version {version}, not {WIRE_VERSION}")
    return version, features


# ----------------------------------------------------------------------
# Query payloads
# ----------------------------------------------------------------------
def encode_query_body(query: QClassQuery) -> bytes:
    """The id-less query encoding — prepend a u64 id at send time.

    Split out so clients can *prepare* a query once and reuse the body
    across sends; the hot loop then does one 8-byte pack per request.
    """
    out = bytearray()
    terms = query.terms
    if len(terms) > 0xFFFF:
        raise WireProtocolError(f"too many terms for the wire ({len(terms)})")
    out += _U16.pack(len(terms))
    for term in terms:
        source = term.source
        if isinstance(source, KeywordSource):
            out.append(0)
            _put_string(out, source.keyword)
        else:
            assert isinstance(source, NodeSource)
            out.append(1)
            out += _U64.pack(source.node)
        out += _F64.pack(term.radius)
    opcodes = bytearray()
    count = _postfix(query.expression, opcodes)
    out += _U16.pack(count)
    out += opcodes
    _put_string(out, query.label)
    return bytes(out)


def _postfix(expr: DExpression, out: bytearray) -> int:
    if expr.op is None:
        out.append(_OPCODE_LEAF)
        out += _U16.pack(expr.index)
        return 1
    count = _postfix(expr.left, out)
    count += _postfix(expr.right, out)
    out.append(_OPCODE_OF[expr.op])
    return count + 1


def encode_query_payload(request_id: int, query: QClassQuery) -> bytes:
    """A full QUERY payload: u64 request id + the query body."""
    return _U64.pack(request_id) + encode_query_body(query)


def decode_query_payload(payload: bytes) -> tuple[int, QClassQuery]:
    """``(request_id, query)`` from a QUERY payload."""
    reader = _Reader(payload)
    request_id = reader.u64()
    query = _read_query(reader)
    reader.finish()
    return request_id, query


def _read_query(reader: _Reader) -> QClassQuery:
    nterms = reader.u16()
    terms = []
    try:
        for _ in range(nterms):
            kind = reader.u8()
            if kind == 0:
                source = KeywordSource(reader.string())
            elif kind == 1:
                source = NodeSource(reader.u64())
            else:
                raise WireProtocolError(f"unknown term kind {kind}")
            terms.append(CoverageTerm(source, reader.f64()))
        nops = reader.u16()
        stack: list[DExpression] = []
        for _ in range(nops):
            opcode = reader.u8()
            if opcode == _OPCODE_LEAF:
                stack.append(DExpression(index=reader.u16()))
            else:
                op = _OPCODES.get(opcode)
                if op is None:
                    raise WireProtocolError(f"unknown expression opcode {opcode}")
                if len(stack) < 2:
                    raise WireProtocolError("expression stack underflow")
                right = stack.pop()
                left = stack.pop()
                stack.append(DExpression(op=op, left=left, right=right))
        if len(stack) != 1:
            raise WireProtocolError(
                f"expression stream left {len(stack)} values on the stack, wanted 1"
            )
        label = reader.string()
        return QClassQuery(tuple(terms), stack[0], label)
    except QueryError as error:
        raise WireProtocolError(f"invalid query: {error}") from None


# ----------------------------------------------------------------------
# Answers / errors / JSON / batches
# ----------------------------------------------------------------------
def encode_answer(
    request_id: int,
    nodes,
    *,
    degraded: bool,
    latency_ms: float,
    wall_ms: float,
    makespan_ms: float,
    message_bytes: int,
) -> bytes:
    """An ANSWER frame: sorted result nodes plus the timing block."""
    out = bytearray(_U64.pack(request_id))
    out.append(1 if degraded else 0)
    ordered = sorted(nodes)
    out += _U32.pack(len(ordered))
    out += struct.pack(f"<{len(ordered)}Q", *ordered) if ordered else b""
    out += _F64.pack(latency_ms)
    out += _F64.pack(wall_ms)
    out += _F64.pack(makespan_ms)
    out += _U64.pack(message_bytes)
    return encode_frame(FRAME_ANSWER, bytes(out))


def decode_answer(payload: bytes) -> dict:
    """An ANSWER payload as the NDJSON reply dict shape."""
    reader = _Reader(payload)
    request_id = reader.u64()
    flags = reader.u8()
    n = reader.u32()
    nodes = list(struct.unpack(f"<{n}Q", reader.take(n * 8))) if n else []
    latency_ms = reader.f64()
    wall_ms = reader.f64()
    makespan_ms = reader.f64()
    message_bytes = reader.u64()
    reader.finish()
    return {
        "id": request_id,
        "ok": True,
        "nodes": nodes,
        "degraded": bool(flags & 1),
        "timing": {
            "latency_ms": latency_ms,
            "wall_ms": wall_ms,
            "makespan_ms": makespan_ms,
            "message_bytes": message_bytes,
        },
    }


def encode_error(request_id: int | None, error: str, detail: str = "") -> bytes:
    """An ERROR frame; ``request_id`` is None for connection-level faults."""
    out = bytearray()
    out.append(0 if request_id is None else 1)
    out += _U64.pack(request_id or 0)
    _put_string(out, error)
    _put_string(out, detail)
    return encode_frame(FRAME_ERROR, bytes(out))


def decode_error(payload: bytes) -> dict:
    """An ERROR payload as the NDJSON error reply dict shape."""
    reader = _Reader(payload)
    has_id = reader.u8()
    request_id = reader.u64()
    error = reader.string()
    detail = reader.string()
    reader.finish()
    reply = {"id": request_id if has_id else None, "ok": False, "error": error}
    if detail:
        reply["detail"] = detail
    return reply


def encode_json_frame(payload: dict) -> bytes:
    """A JSON escape-hatch frame for requests with no packed encoding."""
    return encode_frame(
        FRAME_JSON, json.dumps(payload, separators=(",", ":")).encode("utf-8")
    )


def decode_json_payload(payload: bytes) -> dict:
    """The dict carried by a JSON frame; rejects non-object payloads."""
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireProtocolError(f"bad JSON frame: {error}") from None
    if not isinstance(decoded, dict):
        raise WireProtocolError("a JSON frame must carry an object")
    return decoded


def encode_batch(entries: list[tuple[int, bytes]]) -> bytes:
    """A BATCH frame from ``(request_id, prepared query body)`` pairs."""
    out = bytearray(_U32.pack(len(entries)))
    for request_id, body in entries:
        item = _U64.pack(request_id) + body
        out += _U32.pack(len(item))
        out += item
    return encode_frame(FRAME_BATCH, bytes(out))


def decode_batch(payload: bytes) -> list[tuple[int, QClassQuery]]:
    """The ``(request_id, query)`` entries packed in a BATCH frame."""
    reader = _Reader(payload)
    count = reader.u32()
    if count > 0xFFFF:
        raise WireProtocolError(f"batch of {count} queries is unreasonable")
    queries = []
    for _ in range(count):
        queries.append(decode_query_payload(reader.take(reader.u32())))
    reader.finish()
    return queries


# ----------------------------------------------------------------------
# Updates
# ----------------------------------------------------------------------
_OP_KINDS = {"add_keyword": 1, "remove_keyword": 2, "set_edge_weight": 3}
_OP_NAMES = {code: name for name, code in _OP_KINDS.items()}


def encode_update(
    request_id: int,
    op_records: list[dict],
    *,
    idempotency_key: str | None = None,
) -> bytes:
    """An UPDATE frame from :mod:`repro.live.ops` ``to_record`` dicts.

    ``idempotency_key`` is an optional trailing string — decoders that
    predate it simply never read past the op list, and its absence
    leaves the frame byte-identical to the pre-key encoding.
    """
    out = bytearray(_U64.pack(request_id))
    out += _U32.pack(len(op_records))
    for record in op_records:
        code = _OP_KINDS.get(record.get("op"))
        if code is None:
            raise WireProtocolError(f"unknown update kind {record.get('op')!r}")
        out.append(code)
        if code in (1, 2):
            out += _U64.pack(record["node"])
            _put_string(out, record["keyword"])
        else:
            out += _U64.pack(record["u"])
            out += _U64.pack(record["v"])
            out += _F64.pack(record["weight"])
    if idempotency_key is not None:
        _put_string(out, idempotency_key)
    return encode_frame(FRAME_UPDATE, bytes(out))


def decode_update(payload: bytes) -> tuple[int, list[dict], str | None]:
    """``(request_id, op records, idempotency key)`` from an UPDATE payload."""
    reader = _Reader(payload)
    request_id = reader.u64()
    count = reader.u32()
    if count > 0xFFFFF:
        raise WireProtocolError(f"update batch of {count} ops is unreasonable")
    records = []
    for _ in range(count):
        code = reader.u8()
        name = _OP_NAMES.get(code)
        if name is None:
            raise WireProtocolError(f"unknown update opcode {code}")
        if code in (1, 2):
            records.append(
                {"op": name, "node": reader.u64(), "keyword": reader.string()}
            )
        else:
            records.append(
                {
                    "op": name,
                    "u": reader.u64(),
                    "v": reader.u64(),
                    "weight": reader.f64(),
                }
            )
    idempotency_key = None
    if reader.pos < len(reader.data):
        idempotency_key = reader.string()
    reader.finish()
    return request_id, records, idempotency_key


def encode_update_ack(
    request_id: int, *, epoch: int, applied: int, staleness_ms: float
) -> bytes:
    """An UPDATE_ACK frame reporting the epoch the batch landed in."""
    out = bytearray(_U64.pack(request_id))
    out += _U64.pack(epoch)
    out += _U32.pack(applied)
    out += _F64.pack(staleness_ms)
    return encode_frame(FRAME_UPDATE_ACK, bytes(out))


def decode_update_ack(payload: bytes) -> dict:
    """An UPDATE_ACK payload as the NDJSON update reply dict shape."""
    reader = _Reader(payload)
    request_id = reader.u64()
    epoch = reader.u64()
    applied = reader.u32()
    staleness_ms = reader.f64()
    reader.finish()
    return {
        "id": request_id,
        "ok": True,
        "epoch": epoch,
        "applied": applied,
        "staleness_ms": staleness_ms,
    }


# ----------------------------------------------------------------------
# Worker-pipe payloads (coexist with pickle on the same pipes)
# ----------------------------------------------------------------------
def dumps_pipe_query(request_id: int, query: QClassQuery, sent_at: float) -> bytes:
    """Binary pipe frame for one untraced query request."""
    return (
        bytes((_PIPE_QUERY_TAG,))
        + _F64.pack(sent_at)
        + _U64.pack(request_id)
        + encode_query_body(query)
    )


def dumps_pipe_results(
    request_id: int,
    reply: list[tuple[int, set[int], float]],
    elapsed: float,
    sent_at: float,
) -> bytes:
    """Binary pipe frame for one result reply (fragment→nodes sets)."""
    out = bytearray((_PIPE_RESULTS_TAG,))
    out += _F64.pack(sent_at)
    out += _U64.pack(request_id)
    out += _F64.pack(elapsed)
    out += _U32.pack(len(reply))
    for fragment_id, nodes, seconds in reply:
        out += _U32.pack(fragment_id)
        out += _F64.pack(seconds)
        ordered = sorted(nodes)
        out += _U32.pack(len(ordered))
        if ordered:
            out += struct.pack(f"<{len(ordered)}Q", *ordered)
    return bytes(out)


def loads_pipe(raw: bytes):
    """Decode one pipe payload, binary or pickled, by first-byte sniff.

    Returns the exact ``(kind, body, sent_at)`` tuples the pickled
    protocol uses, so both worker loops and both dispatcher loops stay
    encoding-agnostic:

    * ``("query", (request_id, query, None), sent_at)``
    * ``("results", (request_id, reply, elapsed), sent_at)``
    """
    first = raw[0]
    if first == _PICKLE_OPCODE:
        return pickle.loads(raw)
    reader = _Reader(raw)
    tag = reader.u8()
    sent_at = reader.f64()
    if tag == _PIPE_QUERY_TAG:
        request_id = reader.u64()
        query = _read_query(reader)
        reader.finish()
        return "query", (request_id, query, None), sent_at
    if tag == _PIPE_RESULTS_TAG:
        request_id = reader.u64()
        elapsed = reader.f64()
        nfrag = reader.u32()
        reply = []
        for _ in range(nfrag):
            fragment_id = reader.u32()
            seconds = reader.f64()
            n = reader.u32()
            nodes = set(struct.unpack(f"<{n}Q", reader.take(n * 8))) if n else set()
            reply.append((fragment_id, nodes, seconds))
        reader.finish()
        return "results", (request_id, reply, elapsed), sent_at
    raise WireProtocolError(f"unknown pipe payload tag {tag:#x}")
