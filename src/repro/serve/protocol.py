"""Wire protocol of the serving layer: newline-delimited JSON.

One request per line, one reply per line, ids echoed back so a single
connection can pipeline many queries::

    -> {"id": 1, "q": "NEAR(kw0001, 5) AND NEAR(kw0002, 5)"}
    -> {"id": 2, "op": "stats"}
    <- {"id": 1, "ok": true, "nodes": [3, 17], "timing": {...}}
    <- {"id": 2, "ok": true, "stats": {...}}

Admin operations: ``stats`` (the metrics snapshot), ``info`` (cluster
shape), ``ping``, ``epoch`` (the currently served index epoch).  Live
updates ride the same connection: ``{"op": "update", "ops": [<op
record>, ...]}`` applies one batch through the server's
:class:`~repro.live.epochs.EpochManager` (op records are the
``to_record`` form of :mod:`repro.live.ops`) and replies with the
published :class:`~repro.live.epochs.EpochSwap` summary.

Standing queries (:mod:`repro.sub`) also ride the same connection:
``{"op": "subscribe", "q": <expression>, "scored": <bool>?, "sub":
<id>?}`` registers a long-lived query and replies with its id and full
initial result (``{"ok": true, "sub": "s1", "epoch": 0, "nodes":
[...]}``); ``{"op": "unsubscribe", "sub": "s1"}`` drops it.  Result
changes arrive as *pushed* frames — no ``id``, identified by a
``push`` key — interleaved with replies on the subscribing connection:
``{"push": "notify", "sub": "s1", "epoch": 3, "added": [...],
"removed": [...], "rescored": [...]}`` carries one epoch's diff, and
``{"push": "resync", "sub": "s1", "epoch": 5, "nodes": [...],
"dropped": 2}`` replaces the subscription's state wholesale after the
server shed notifications to a slow consumer (clients must discard
deltas for epochs ≤ the resync epoch).  Subscriptions die with the
connection.

Error replies are ``{"ok": false, "error": <kind>}`` with kinds
``overloaded`` (shed), ``parse``, ``radius``, ``timeout``, ``cluster``,
``bad-json``, ``bad-request``, ``unknown-op``, ``no-live`` (the server
was started without an updater), ``bad-update`` (a malformed or invalid
op batch), ``no-sub`` (the server was started without standing-query
support), ``bad-subscribe`` (a malformed or duplicate subscription).

This module also renders :class:`QClassQuery` objects back into the
query language of :mod:`repro.core.language`, which is how the load
generator turns :class:`~repro.workloads.querygen.QueryGenerator`
output into wire requests.
"""

from __future__ import annotations

import json
import re

from repro.core.dfunction import DExpression, SetOp
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery

__all__ = ["encode_line", "decode_line", "render_query", "query_semantics_key"]

_BARE_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_GRAMMAR_KEYWORDS = {"AND", "OR", "NOT", "NEAR", "HAS", "WITHIN", "OF"}

_OP_WORDS = {
    SetOp.INTERSECT: "AND",
    SetOp.UNION: "OR",
    SetOp.SUBTRACT: "NOT",
}


def encode_line(payload: dict) -> bytes:
    """One protocol message as a compact JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("a protocol message must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# QClassQuery -> query-language text
# ----------------------------------------------------------------------
def _render_number(value: float) -> str:
    # The grammar's number token has no exponent form, so avoid repr's
    # scientific notation for very small/large radii.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    text = repr(float(value))
    if "e" in text or "E" in text:
        text = f"{value:.12f}".rstrip("0")
    return text


def _render_keyword(keyword: str) -> str:
    if _BARE_WORD_RE.fullmatch(keyword) and keyword.upper() not in _GRAMMAR_KEYWORDS:
        return keyword
    escaped = keyword.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _render_term(coverage: CoverageTerm) -> str:
    source = coverage.source
    if isinstance(source, NodeSource):
        return f"WITHIN({_render_number(coverage.radius)} OF #{source.node})"
    assert isinstance(source, KeywordSource)
    if coverage.radius == 0.0:
        return f"HAS({_render_keyword(source.keyword)})"
    return f"NEAR({_render_keyword(source.keyword)}, {_render_number(coverage.radius)})"


def _render_expr(expr: DExpression, terms: tuple[CoverageTerm, ...]) -> str:
    if expr.op is None:
        assert expr.index is not None
        return _render_term(terms[expr.index])
    assert expr.left is not None and expr.right is not None
    left = _render_expr(expr.left, terms)
    right = _render_expr(expr.right, terms)
    return f"({left} {_OP_WORDS[expr.op]} {right})"


def render_query(query: QClassQuery) -> str:
    """Render a query as text that ``parse_query`` accepts.

    The rendering round-trips semantically: parsing it back yields a
    query that evaluates identically (term indexes may be renumbered in
    encounter order, which changes nothing).
    """
    text = _render_expr(query.expression, query.terms)
    # Strip one redundant outer parenthesis pair for readability.
    if text.startswith("(") and text.endswith(")"):
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i < len(text) - 1:
                    return text  # the outer parens close early: keep them
        return text[1:-1]
    return text


def query_semantics_key(query: QClassQuery):
    """A hashable semantic fingerprint, used by round-trip tests.

    Two queries with equal keys evaluate identically on any input: the
    expression tree with leaves replaced by their *coverage terms*
    (rather than positional indexes) is exactly the evaluated object.
    """

    def _walk(expr: DExpression):
        if expr.op is None:
            assert expr.index is not None
            return query.terms[expr.index]
        assert expr.left is not None and expr.right is not None
        return (expr.op, _walk(expr.left), _walk(expr.right))

    return _walk(query.expression)
