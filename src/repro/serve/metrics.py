"""Observability registry: counters, gauges, latency histograms, busy time.

Everything the ``stats`` admin command reports lives here.  The
registry is deliberately dependency-free and thread-safe: the asyncio
frontend increments from the event loop while dispatcher threads and
the load generator may read snapshots concurrently.

Histograms keep a bounded window of the most recent observations (plus
exact count/sum/max), so long-running servers get stable p50/p95/p99
over recent traffic without unbounded memory.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.exceptions import DisksError

__all__ = ["LatencyHistogram", "MetricsRegistry"]


class LatencyHistogram:
    """Sliding-window latency distribution with exact totals.

    Samples may carry an *exemplar* trace id; the histogram keeps the
    ``exemplar_capacity`` slowest ``(seconds, trace_id)`` pairs so the
    exposition can link its tail quantiles to concrete retained traces.
    """

    def __init__(self, capacity: int = 8192, exemplar_capacity: int = 4) -> None:
        if capacity < 1:
            raise DisksError("histogram capacity must be positive")
        self._capacity = capacity
        self._window: list[float] = []
        self._cursor = 0
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._exemplar_capacity = exemplar_capacity
        self._exemplars: list[tuple[float, str]] = []
        self._lock = threading.Lock()

    def observe(self, seconds: float, trace_id: str | None = None) -> None:
        """Record one latency sample (seconds), optionally with a trace id."""
        with self._lock:
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._window) < self._capacity:
                self._window.append(seconds)
            else:  # ring buffer: overwrite the oldest sample
                self._window[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self._capacity
            if trace_id is not None and self._exemplar_capacity > 0:
                if len(self._exemplars) < self._exemplar_capacity:
                    self._exemplars.append((seconds, trace_id))
                else:
                    floor = min(range(len(self._exemplars)),
                                key=lambda i: self._exemplars[i][0])
                    if seconds > self._exemplars[floor][0]:
                        self._exemplars[floor] = (seconds, trace_id)

    @property
    def count(self) -> int:
        """Total samples ever observed."""
        with self._lock:
            return self._count

    @staticmethod
    def _rank(ordered: list[float], fraction: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
        return ordered[index]

    def percentile(self, fraction: float) -> float:
        """Windowed percentile, e.g. ``percentile(0.95)`` (seconds).

        Only the window *copy* happens under the lock; the O(n log n)
        sort runs outside it, so a slow percentile read never stalls
        the hot ``observe`` path.
        """
        if not (0.0 <= fraction <= 1.0):
            raise DisksError("percentile fraction must lie in [0, 1]")
        with self._lock:
            window = list(self._window)
        return self._rank(sorted(window), fraction)

    def percentiles(self, fractions: tuple[float, ...]) -> tuple[float, ...]:
        """Several windowed percentiles from a single copy-and-sort."""
        for fraction in fractions:
            if not (0.0 <= fraction <= 1.0):
                raise DisksError("percentile fraction must lie in [0, 1]")
        with self._lock:
            window = list(self._window)
        ordered = sorted(window)
        return tuple(self._rank(ordered, fraction) for fraction in fractions)

    def state(self) -> dict:
        """Exact totals plus windowed quantiles, in base seconds.

        This is the exposition-friendly view: one lock hold for the
        totals and the window copy, one sort for every quantile.
        """
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
            window = list(self._window)
            exemplars = sorted(self._exemplars, reverse=True)
        ordered = sorted(window)
        return {
            "count": count,
            "sum": total,
            "max": peak,
            "quantiles": {
                "0.5": self._rank(ordered, 0.50),
                "0.95": self._rank(ordered, 0.95),
                "0.99": self._rank(ordered, 0.99),
            },
            "exemplars": [
                {"seconds": seconds, "trace_id": trace_id}
                for seconds, trace_id in exemplars
            ],
        }

    def snapshot(self) -> dict:
        """JSON-able summary (milliseconds for human readability)."""
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
            window = list(self._window)
        ordered = sorted(window)
        p50, p95, p99 = (
            self._rank(ordered, 0.50),
            self._rank(ordered, 0.95),
            self._rank(ordered, 0.99),
        )
        return {
            "count": count,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "p50_ms": p50 * 1000.0,
            "p95_ms": p95 * 1000.0,
            "p99_ms": p99 * 1000.0,
            "max_ms": peak * 1000.0,
        }


class MetricsRegistry:
    """Named counters, peak-tracking gauges, histograms, per-machine busy time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._gauges: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._busy_seconds: dict[int, float] = defaultdict(float)

    # Counters ----------------------------------------------------------
    def increment(self, name: str, by: int = 1) -> None:
        """Bump a counter."""
        with self._lock:
            self._counters[name] += by

    def counter(self, name: str) -> int:
        """Current counter value (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    # Gauges ------------------------------------------------------------
    def observe_gauge(self, name: str, value: float) -> None:
        """Set a gauge's current value, tracking its peak."""
        with self._lock:
            gauge = self._gauges.setdefault(name, {"current": 0.0, "peak": 0.0})
            gauge["current"] = value
            if value > gauge["peak"]:
                gauge["peak"] = value

    def gauge(self, name: str) -> dict[str, float]:
        """``{"current", "peak"}`` for one gauge (zeros if unknown)."""
        with self._lock:
            return dict(self._gauges.get(name, {"current": 0.0, "peak": 0.0}))

    # Histograms --------------------------------------------------------
    def observe(self, name: str, seconds: float, exemplar: str | None = None) -> None:
        """Record a sample into the named histogram (created on demand)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
        histogram.observe(seconds, trace_id=exemplar)

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram (created on demand)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            return histogram

    # Busy time ---------------------------------------------------------
    def add_busy(self, machine_id: int, seconds: float) -> None:
        """Accumulate measured worker compute time for one machine."""
        with self._lock:
            self._busy_seconds[machine_id] += seconds

    # Snapshot ----------------------------------------------------------
    def exposition_state(self) -> dict:
        """Everything in base units (seconds), shaped for exporters.

        :func:`repro.obs.prometheus.render_prometheus` consumes exactly
        this structure; keeping the registry exporter-agnostic means
        ``obs`` stays importable without ``serve`` and vice versa.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = {name: dict(g) for name, g in self._gauges.items()}
            histograms = list(self._histograms.items())
            busy = {str(machine): seconds for machine, seconds in self._busy_seconds.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {name: h.state() for name, h in histograms},
            "busy_seconds": busy,
        }

    def snapshot(self) -> dict:
        """One JSON-able view of everything, for the ``stats`` command."""
        with self._lock:
            counters = dict(self._counters)
            gauges = {name: dict(g) for name, g in self._gauges.items()}
            histograms = list(self._histograms.items())
            busy = {str(machine): seconds for machine, seconds in self._busy_seconds.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {name: h.snapshot() for name, h in histograms},
            "busy_seconds": busy,
        }
