"""Delta-driven incremental re-evaluation of standing queries.

The :class:`SubscriptionEngine` hangs off an
:class:`~repro.live.epochs.EpochManager` swap subscription.  On each
published epoch it:

1. refreshes its fragment runtimes from the swap's ``delta`` (only the
   changed ``(fragment, index)`` pairs are touched);
2. asks the :class:`~repro.sub.registry.SubscriptionRegistry` which
   subscriptions the delta can affect (term ∩ fragment routing);
3. recomputes each affected subscription's *partial* results only on
   the changed fragments inside its scope — Lemma 1 makes per-fragment
   local results independent, so unchanged fragments keep their cached
   partials verbatim;
4. diffs the re-unioned result against the last materialized one and
   pushes an ``added`` / ``removed`` / ``rescored`` notice to the
   subscription's sink.

Exactness rests on two facts.  A fragment's local result is a pure
function of its ``(fragment, index)`` pair and the query, and the epoch
delta names exactly the pairs that changed — so partials at unchanged
fragments are bitwise reusable.  And keyword maintenance touches only
that keyword's postings/DL entries, so a keyword-only swap cannot move
a subscription that references none of the changed keywords.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.coverage import FragmentRuntime
from repro.core.executor import execute_fragment_task, execute_fragment_task_explained
from repro.core.queries import QClassQuery
from repro.exceptions import DisksError
from repro.live.epochs import EpochManager, EpochState, EpochSwap
from repro.obs.events import emit as emit_event
from repro.obs.trace import SpanCollector
from repro.sub.registry import (
    Subscription,
    SubscriptionRegistry,
    compute_scope,
    fragment_in_scope,
    node_source_terms,
    query_keywords,
)

__all__ = ["SubscriptionEngine", "SubscriptionNotice"]

NoticeSink = Callable[["SubscriptionNotice"], None]


@dataclass(frozen=True)
class SubscriptionNotice:
    """One incremental result change pushed to a subscriber.

    ``added`` / ``removed`` are membership changes versus the last
    materialized result; ``rescored`` lists nodes that stayed members
    but whose per-term distances moved (scored subscriptions only —
    e.g. an edge reweight that shortens a path without changing
    coverage membership).
    """

    sub_id: str
    epoch: int
    added: tuple[int, ...]
    removed: tuple[int, ...]
    rescored: tuple[int, ...] = ()

    def is_empty(self) -> bool:
        """Whether the re-evaluation found no observable change."""
        return not (self.added or self.removed or self.rescored)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for the ``notify`` wire frame."""
        return {
            "sub": self.sub_id,
            "epoch": self.epoch,
            "added": list(self.added),
            "removed": list(self.removed),
            "rescored": list(self.rescored),
        }


class SubscriptionEngine:
    """Registry + incremental re-evaluation, attached to an EpochManager.

    Thread safety: a single re-entrant lock guards the registry, the
    runtime pool and the materialized results.  ``_on_swap`` runs on
    the updater's thread (inside the manager's apply lock);
    ``register`` / ``unregister`` arrive from serve-connection threads.
    Whichever wins the lock sees a consistent (epoch, runtimes,
    registry) triple — a subscription registered concurrently with a
    swap is either evaluated directly on the new epoch or re-routed by
    the swap like any other.
    """

    def __init__(
        self,
        manager: EpochManager,
        *,
        metrics=None,
        tracer=None,
        compiled: bool = True,
    ) -> None:
        self._manager = manager
        self._metrics = metrics
        self._tracer = tracer
        self._lock = threading.RLock()
        self.registry = SubscriptionRegistry()
        self._sinks: dict[str, NoticeSink] = {}
        state = manager.state
        self._epoch = state.epoch
        self._fragments = list(state.fragments)
        self._indexes = list(state.indexes)
        self._runtimes = [
            FragmentRuntime(fragment, index, compiled=compiled)
            for fragment, index in zip(self._fragments, self._indexes)
        ]
        manager.subscribe_swaps(self._on_swap)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the manager; no further swaps are processed."""
        self._manager.unsubscribe(self._on_swap)

    def bind(self, *, metrics=None, tracer=None) -> None:
        """Late-bind observability sinks (the serve layer shares its
        :class:`~repro.serve.metrics.MetricsRegistry` and tracer so the
        engine's gauges and spans land in the server's snapshot)."""
        if metrics is not None:
            self._metrics = metrics
            self._gauge()
        if tracer is not None:
            self._tracer = tracer

    def __enter__(self) -> "SubscriptionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        query: QClassQuery,
        *,
        sub_id: str | None = None,
        sink: NoticeSink | None = None,
        scored: bool = False,
    ) -> Subscription:
        """Register a standing query; materializes its initial result.

        The returned subscription carries the full current result (for
        the subscribe reply); subsequent changes arrive as
        :class:`SubscriptionNotice` diffs on ``sink``.
        """
        with self._lock:
            sid = sub_id if sub_id is not None else self.registry.new_id()
            scope = compute_scope(query, self._fragments, self._indexes)
            subscription = Subscription(
                sub_id=sid,
                query=query,
                keywords=query_keywords(query),
                scope=scope,
                epoch=self._epoch,
                scored=scored,
            )
            fragment_ids = (
                sorted(scope) if scope is not None else range(len(self._fragments))
            )
            for fragment_id in fragment_ids:
                self._eval_partial(subscription, fragment_id)
            self._materialize(subscription)
            self.registry.add(subscription)
            if sink is not None:
                self._sinks[sid] = sink
            self._gauge()
            return subscription

    def unregister(self, sub_id: str) -> bool:
        """Drop a subscription; returns whether it existed."""
        with self._lock:
            removed = self.registry.remove(sub_id)
            self._sinks.pop(sub_id, None)
            self._gauge()
            return removed is not None

    def set_sink(self, sub_id: str, sink: NoticeSink | None) -> None:
        """Attach or detach the delivery sink of a live subscription."""
        with self._lock:
            if sub_id not in self.registry:
                raise DisksError(f"unknown subscription {sub_id!r}")
            if sink is None:
                self._sinks.pop(sub_id, None)
            else:
                self._sinks[sub_id] = sink

    def snapshot(self, sub_id: str) -> dict[str, object]:
        """Full current result of one subscription (resync payload)."""
        with self._lock:
            subscription = self.registry.get(sub_id)
            if subscription is None:
                raise DisksError(f"unknown subscription {sub_id!r}")
            return {
                "sub": sub_id,
                "epoch": subscription.epoch,
                "nodes": sorted(subscription.result),
            }

    def stats(self) -> dict[str, int]:
        """Registry shape counters for the serve ``stats`` op."""
        return self.registry.stats()

    @property
    def epoch(self) -> int:
        """The epoch the engine's materialized results reflect."""
        return self._epoch

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval_partial(self, subscription: Subscription, fragment_id: int) -> None:
        """Recompute one fragment's share of a subscription's answer."""
        runtime = self._runtimes[fragment_id]
        if subscription.scored:
            task, explained = execute_fragment_task_explained(
                runtime, subscription.query
            )
            if explained:
                subscription.partials[fragment_id] = dict(explained)
            else:
                subscription.partials.pop(fragment_id, None)
        else:
            task = execute_fragment_task(runtime, subscription.query)
            if task.local_result:
                subscription.partials[fragment_id] = task.local_result
            else:
                subscription.partials.pop(fragment_id, None)

    def _materialize(self, subscription: Subscription) -> None:
        """Re-union the partials into ``result`` (and ``scores``)."""
        nodes: set[int] = set()
        scores: dict[int, tuple[float | None, ...]] = {}
        for partial in subscription.partials.values():
            if isinstance(partial, Mapping):
                scores.update(partial)
                nodes.update(partial)
            else:
                nodes.update(partial)
        subscription.result = frozenset(nodes)
        subscription.scores = scores
        subscription.epoch = self._epoch

    def _reevaluate(
        self, subscription: Subscription, fragment_ids: set[int]
    ) -> SubscriptionNotice:
        """Recompute the given fragments' partials and diff the union."""
        before_nodes = subscription.result
        before_scores = subscription.scores
        scope = subscription.scope
        for fragment_id in sorted(fragment_ids):
            if scope is not None and fragment_id not in scope:
                # Fell out of scope: its local coverage is provably
                # empty under the new index, no need to execute.
                subscription.partials.pop(fragment_id, None)
            else:
                self._eval_partial(subscription, fragment_id)
        self._materialize(subscription)
        added = tuple(sorted(subscription.result - before_nodes))
        removed = tuple(sorted(before_nodes - subscription.result))
        rescored: tuple[int, ...] = ()
        if subscription.scored:
            rescored = tuple(
                sorted(
                    node
                    for node in subscription.result & before_nodes
                    if subscription.scores.get(node) != before_scores.get(node)
                )
            )
        return SubscriptionNotice(
            sub_id=subscription.sub_id,
            epoch=self._epoch,
            added=added,
            removed=removed,
            rescored=rescored,
        )

    def _rescope(self, changed: set[int]) -> set[str]:
        """Re-check scope candidacy of the changed fragments.

        Only needed on topology swaps: a rebuilt index can gain or lose
        node DL entries, moving a fragment in or out of a subscription's
        coverage ball.  Unchanged fragments keep their candidacy — their
        indexes are the same objects.  Returns the subscriptions whose
        scope moved: a shrink drops the fragment from the routing index
        *before* ``affected()`` consults it, so the caller must force
        those into the re-evaluation set to clear stale partials.
        """
        moved: set[str] = set()
        for sub_id in self.registry.ids():
            subscription = self.registry.get(sub_id)
            if subscription is None or subscription.scope is None:
                continue
            terms = node_source_terms(subscription.query)
            in_scope = {
                fragment_id
                for fragment_id in changed
                if all(
                    fragment_in_scope(
                        term,
                        self._fragments[fragment_id],
                        self._indexes[fragment_id],
                    )
                    for term in terms
                )
            }
            new_scope = frozenset((subscription.scope - changed) | in_scope)
            if new_scope != subscription.scope:
                moved.add(sub_id)
                self.registry.rescope(sub_id, new_scope)
        return moved

    def _on_swap(
        self,
        state: EpochState,
        delta: dict,
        swap: EpochSwap,
    ) -> None:
        started = time.perf_counter()
        with self._lock:
            for fragment_id, (fragment, index) in delta.items():
                self._fragments[fragment_id] = fragment
                self._indexes[fragment_id] = index
                self._runtimes[fragment_id].refresh(fragment, index)
            self._epoch = state.epoch
            changed = set(delta)
            rescoped: set[str] = set()
            if swap.topology_changed:
                rescoped = self._rescope(changed)
            affected = (
                self.registry.affected(
                    changed, swap.changed_keywords, swap.topology_changed
                )
                | rescoped
            )
            notices = self._run_affected(affected, changed)
        elapsed = time.perf_counter() - started
        self._observe(swap.epoch, len(affected), notices, elapsed, incremental=True)

    def _run_affected(
        self, affected: set[str], changed: set[int]
    ) -> list[SubscriptionNotice]:
        collector = self._collector()
        notices: list[SubscriptionNotice] = []
        for sub_id in sorted(affected):
            subscription = self.registry.get(sub_id)
            if subscription is None:  # pragma: no cover - unregistered mid-swap
                continue
            scope = subscription.scope
            if scope is None:
                fragment_ids = set(changed)
            else:
                # Changed fragments currently in scope, plus those still
                # holding a stale partial from before they fell out.
                fragment_ids = changed & (scope | set(subscription.partials))
            if collector is not None:
                with collector.span(
                    "sub-reeval", sub_id=sub_id, fragments=len(fragment_ids)
                ):
                    notice = self._reevaluate(subscription, fragment_ids)
            else:
                notice = self._reevaluate(subscription, fragment_ids)
            if not notice.is_empty():
                notices.append(notice)
                self._deliver(notice)
        if collector is not None:
            self._tracer.record(
                collector.trace_id,
                collector.spans,
                kind="sub-reeval",
                epoch=self._epoch,
                affected=len(affected),
                notified=len(notices),
            )
        return notices

    def _deliver(self, notice: SubscriptionNotice) -> None:
        if self._metrics is not None:
            self._metrics.increment("sub_notifications")
        sink = self._sinks.get(notice.sub_id)
        if sink is None:
            return
        try:
            sink(notice)
        except Exception as exc:
            emit_event(
                "sub_sink_error",
                sub_id=notice.sub_id,
                epoch=notice.epoch,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _collector(self) -> SpanCollector | None:
        if self._tracer is None:
            return None
        context = self._tracer.maybe_trace()
        if context is None:
            return None
        return SpanCollector(context.trace_id)

    def _observe(
        self,
        epoch: int,
        affected: int,
        notices: list[SubscriptionNotice],
        seconds: float,
        *,
        incremental: bool,
    ) -> None:
        if self._metrics is not None:
            self._metrics.observe("sub_reeval_seconds", seconds)
        emit_event(
            "sub_reeval",
            epoch=epoch,
            affected=affected,
            notified=len(notices),
            seconds=seconds,
            incremental=incremental,
        )

    # ------------------------------------------------------------------
    # Naive baseline
    # ------------------------------------------------------------------
    def reevaluate_all(self) -> list[SubscriptionNotice]:
        """Re-run every subscription on every scoped fragment from scratch.

        The naive alternative to delta routing — recomputes all partials
        regardless of what changed.  Used as the benchmark baseline and
        as a self-check (its result must always match the incremental
        state).  Notices are delivered exactly as in the incremental
        path.
        """
        started = time.perf_counter()
        with self._lock:
            state = self._manager.state
            for fragment_id, (fragment, index) in enumerate(
                zip(state.fragments, state.indexes)
            ):
                if (
                    self._fragments[fragment_id] is not fragment
                    or self._indexes[fragment_id] is not index
                ):
                    self._fragments[fragment_id] = fragment
                    self._indexes[fragment_id] = index
                    self._runtimes[fragment_id].refresh(fragment, index)
            self._epoch = state.epoch
            all_fragments = set(range(len(self._fragments)))
            self._rescope(all_fragments)
            notices: list[SubscriptionNotice] = []
            affected = self.registry.ids()
            for sub_id in affected:
                subscription = self.registry.get(sub_id)
                if subscription is None:  # pragma: no cover
                    continue
                scope = subscription.scope
                fragment_ids = (
                    all_fragments
                    if scope is None
                    else set(scope) | set(subscription.partials)
                )
                notice = self._reevaluate(subscription, fragment_ids)
                if not notice.is_empty():
                    notices.append(notice)
                    self._deliver(notice)
        elapsed = time.perf_counter() - started
        self._observe(
            self._epoch, len(affected), notices, elapsed, incremental=False
        )
        return notices

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.observe_gauge("subscriptions", len(self.registry))
