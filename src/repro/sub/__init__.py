"""repro.sub — standing spatial-keyword queries (location-aware pub/sub).

The paper's SGKQ/RKQ queries are one-shot; this package makes them
*standing*: a client registers a long-lived query once and is pushed
``added`` / ``removed`` / ``rescored`` diffs whenever live updates
(:mod:`repro.live`) change its answer, in the spirit of distributed
spatial-keyword kNN monitoring systems for location-aware pub/sub.

The pieces:

* :class:`~repro.sub.registry.SubscriptionRegistry` — the subscription
  store plus a per-fragment × per-term inverted routing index, so one
  epoch delta maps to exactly the affected subscription set;
* :class:`~repro.sub.engine.SubscriptionEngine` — delta-driven
  incremental re-evaluation: on each
  :class:`~repro.live.epochs.EpochManager` swap, only the subscriptions
  touched by the changed-fragment delta re-run, and only on the changed
  fragments (Lemma 1 makes per-fragment partial results independently
  maintainable), then diff against the last materialized result;
* push delivery rides the serve layer (:mod:`repro.serve.server`
  ``subscribe`` / ``unsubscribe`` wire ops, ``notify`` push frames with
  bounded per-client queues that shed to a resync marker).
"""

from repro.sub.engine import SubscriptionEngine, SubscriptionNotice
from repro.sub.registry import (
    Subscription,
    SubscriptionRegistry,
    compute_scope,
    restricting_terms,
)

__all__ = [
    "Subscription",
    "SubscriptionRegistry",
    "SubscriptionEngine",
    "SubscriptionNotice",
    "compute_scope",
    "restricting_terms",
]
