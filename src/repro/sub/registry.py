"""Subscription store + per-fragment × per-term inverted routing index.

Routing answers one question on every epoch swap: *which standing
queries could the changed fragments possibly have affected?*  Getting
it exact matters twice over — a missed subscription is a correctness
bug (a client silently serves stale results), a spurious one burns the
re-evaluation budget the whole subsystem exists to save.

The index has three sides:

* **per term** — ``keyword -> subscriptions`` over every keyword any
  term of the query references (including subtracted terms: removing a
  keyword from an excluded zone can *add* results).  A keyword-only
  batch affects a subscription iff one of its keywords changed, because
  keyword maintenance touches exactly that keyword's postings and DL
  entries (fragment-local results for other keywords are bitwise
  unchanged).
* **per fragment** — ``fragment -> subscriptions scoped to it``.  A
  subscription whose D-expression provably confines results inside a
  node-source coverage ``R(l, r)`` (an RKQ's range) is *scoped* to the
  fragments that ball intersects: ``l``'s home fragment plus every
  fragment whose DL node entries reach ``l`` within ``r``.  Changes in
  fragments outside the scope cannot touch the answer.
* **unscoped** — subscriptions with no confining node-source term
  (plain SGKQs): any fragment may contribute, so they route purely by
  term.

A fragment's scope membership depends only on node DL entries and the
(static) partition, so it can only move when that fragment's index is
rebuilt — i.e. on a topology (edge-weight) delta, where the engine
re-checks candidacy of exactly the changed fragments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.dfunction import DExpression, SetOp
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.exceptions import DisksError

__all__ = [
    "Subscription",
    "SubscriptionRegistry",
    "compute_scope",
    "fragment_in_scope",
    "restricting_terms",
]


def restricting_terms(expression: DExpression) -> frozenset[int]:
    """Term indexes ``t`` with ``eval(expr) ⊆ coverage(t)`` for any input.

    Structural induction over the D-expression: a leaf restricts to
    itself, an intersection restricts to either side's restrictors, a
    subtraction keeps only the left side's, a union only those common
    to both branches.
    """
    if expression.op is None:
        assert expression.index is not None
        return frozenset((expression.index,))
    assert expression.left is not None and expression.right is not None
    left = restricting_terms(expression.left)
    if expression.op is SetOp.SUBTRACT:
        return left
    right = restricting_terms(expression.right)
    if expression.op is SetOp.INTERSECT:
        return left | right
    assert expression.op is SetOp.UNION
    return left & right


def fragment_in_scope(
    term: CoverageTerm, fragment: Fragment, index: NPDIndex
) -> bool:
    """Whether ``R(node, r)`` can reach any member of ``fragment``.

    True iff the source node lives in the fragment or the fragment's DL
    node entries reach it within the radius — exactly the seed
    condition of Alg. 2, so an out-of-scope fragment's local coverage
    is empty by construction.
    """
    source = term.source
    assert isinstance(source, NodeSource)
    if source.node in fragment.members:
        return True
    return bool(index.node_seeds(source.node, term.radius))


def compute_scope(
    query: QClassQuery,
    fragments: Iterable[Fragment],
    indexes: Iterable[NPDIndex],
) -> frozenset[int] | None:
    """The fragment ids that can contribute to ``query``'s answer.

    ``None`` means "all fragments" — the query has no restricting
    node-source term, so no spatial pruning applies.  Otherwise the
    scope is the intersection of the candidate fragment sets of every
    restricting node-source term (the answer lies inside each of their
    coverage balls).
    """
    restricting = restricting_terms(query.expression)
    node_terms = [
        query.terms[i]
        for i in sorted(restricting)
        if isinstance(query.terms[i].source, NodeSource)
    ]
    if not node_terms:
        return None
    scope: set[int] | None = None
    pairs = list(zip(fragments, indexes))
    for term in node_terms:
        candidates = {
            fragment.fragment_id
            for fragment, index in pairs
            if fragment_in_scope(term, fragment, index)
        }
        scope = candidates if scope is None else scope & candidates
    assert scope is not None
    return frozenset(scope)


@dataclass
class Subscription:
    """One standing query and its materialized state.

    ``partials`` holds the per-fragment local results (disjoint by
    Lemma 1 — fragments partition the node set), keyed by fragment id;
    their union is ``result``.  Scored subscriptions store each node's
    per-term distance tuple instead of a bare set, so distance drift
    under edge reweights surfaces as a ``rescored`` notification even
    when membership is unchanged.

    ``keywords`` / ``scope`` are the routing features maintained by the
    registry; ``scope=None`` routes the subscription to every fragment.
    """

    sub_id: str
    query: QClassQuery
    keywords: frozenset[str]
    scope: frozenset[int] | None
    epoch: int = 0
    scored: bool = False
    partials: dict[int, dict[int, tuple[float | None, ...]] | frozenset[int]] = field(
        default_factory=dict
    )
    result: frozenset[int] = frozenset()
    scores: dict[int, tuple[float | None, ...]] = field(default_factory=dict)

    def has_node_terms(self) -> bool:
        """Whether any restricting term is a node source (scopable)."""
        return self.scope is not None


class SubscriptionRegistry:
    """Thread-safe subscription store with the inverted routing index."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subscriptions: dict[str, Subscription] = {}
        self._by_keyword: dict[str, set[str]] = {}
        self._by_fragment: dict[int, set[str]] = {}
        self._unscoped: set[str] = set()
        self._counter = 0

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def __contains__(self, sub_id: str) -> bool:
        with self._lock:
            return sub_id in self._subscriptions

    def get(self, sub_id: str) -> Subscription | None:
        """The subscription with this id, if registered."""
        with self._lock:
            return self._subscriptions.get(sub_id)

    def ids(self) -> list[str]:
        """Registered subscription ids, in registration order."""
        with self._lock:
            return list(self._subscriptions)

    def new_id(self) -> str:
        """A fresh subscription id (``s1``, ``s2``, ...)."""
        with self._lock:
            self._counter += 1
            return f"s{self._counter}"

    def add(self, subscription: Subscription) -> Subscription:
        """Register a subscription and index its routing features."""
        with self._lock:
            if subscription.sub_id in self._subscriptions:
                raise DisksError(
                    f"subscription id {subscription.sub_id!r} already registered"
                )
            self._subscriptions[subscription.sub_id] = subscription
            for keyword in subscription.keywords:
                self._by_keyword.setdefault(keyword, set()).add(subscription.sub_id)
            self._index_scope(subscription)
            return subscription

    def remove(self, sub_id: str) -> Subscription | None:
        """Unregister; returns the removed subscription (None if absent)."""
        with self._lock:
            subscription = self._subscriptions.pop(sub_id, None)
            if subscription is None:
                return None
            for keyword in subscription.keywords:
                members = self._by_keyword.get(keyword)
                if members is not None:
                    members.discard(sub_id)
                    if not members:
                        del self._by_keyword[keyword]
            self._unindex_scope(subscription)
            return subscription

    def _index_scope(self, subscription: Subscription) -> None:
        if subscription.scope is None:
            self._unscoped.add(subscription.sub_id)
            return
        for fragment_id in subscription.scope:
            self._by_fragment.setdefault(fragment_id, set()).add(subscription.sub_id)

    def _unindex_scope(self, subscription: Subscription) -> None:
        self._unscoped.discard(subscription.sub_id)
        for fragment_id in subscription.scope or ():
            members = self._by_fragment.get(fragment_id)
            if members is not None:
                members.discard(subscription.sub_id)
                if not members:
                    del self._by_fragment[fragment_id]

    def rescope(self, sub_id: str, scope: frozenset[int] | None) -> None:
        """Replace a subscription's fragment scope (after index rebuilds)."""
        with self._lock:
            subscription = self._subscriptions.get(sub_id)
            if subscription is None:
                return
            if scope == subscription.scope:
                return
            self._unindex_scope(subscription)
            subscription.scope = scope
            self._index_scope(subscription)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def affected(
        self,
        changed_fragments: Iterable[int],
        changed_keywords: Iterable[str],
        topology_changed: bool,
    ) -> set[str]:
        """Subscription ids one epoch delta may have touched.

        A subscription qualifies iff a changed fragment lies in its
        scope **and** the delta can move one of its terms: any term
        when topology changed (distances shifted), else only matching
        changed keywords.  Scope *growth* under topology deltas is the
        engine's job (it re-checks candidacy of the changed fragments
        against the new indexes before calling this).
        """
        with self._lock:
            frag_hit: set[str] = set(self._unscoped)
            for fragment_id in changed_fragments:
                frag_hit.update(self._by_fragment.get(fragment_id, ()))
            if topology_changed:
                return frag_hit
            term_hit: set[str] = set()
            for keyword in changed_keywords:
                term_hit.update(self._by_keyword.get(keyword, ()))
            return frag_hit & term_hit

    def routed_by_keyword(self, keyword: str) -> set[str]:
        """Subscription ids indexed under one keyword (for tests/stats)."""
        with self._lock:
            return set(self._by_keyword.get(keyword, ()))

    def routed_by_fragment(self, fragment_id: int) -> set[str]:
        """Scoped subscription ids indexed under one fragment."""
        with self._lock:
            return set(self._by_fragment.get(fragment_id, ()))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Routing-index shape counters for the ``stats`` op."""
        with self._lock:
            return {
                "subscriptions": len(self._subscriptions),
                "scoped": len(self._subscriptions) - len(self._unscoped),
                "unscoped": len(self._unscoped),
                "keywords_indexed": len(self._by_keyword),
                "fragment_routes": sum(
                    len(members) for members in self._by_fragment.values()
                ),
            }


def query_keywords(query: QClassQuery) -> frozenset[str]:
    """Every keyword any term references (routing feature)."""
    return frozenset(
        term.source.keyword
        for term in query.terms
        if isinstance(term.source, KeywordSource)
    )


def node_source_terms(query: QClassQuery) -> list[CoverageTerm]:
    """The restricting node-source terms (scope contributors)."""
    restricting = restricting_terms(query.expression)
    return [
        query.terms[i]
        for i in sorted(restricting)
        if isinstance(query.terms[i].source, NodeSource)
    ]
