"""DiSKS — Distributed Spatial Keyword Search on road networks.

A complete reproduction of *"Distributed Spatial Keyword Querying on
Road Networks"* (EDBT 2014): the NPD-index, the keyword-coverage /
D-function query framework, and every substrate the paper's evaluation
depends on (road networks, partitioning, a simulated share-nothing
cluster, baselines, workload generators).

Quick start::

    from repro import DisksEngine, EngineConfig, sgkq
    from repro.workloads import load_dataset

    network = load_dataset("aus_mini").network
    engine = DisksEngine.build(network, EngineConfig(num_fragments=8))
    report = engine.execute(sgkq(["kw0001", "kw0004"], radius=12.0))
    print(report.num_results, report.response_seconds)
"""

from repro.core import (
    BiLevelIndex,
    CoverageTerm,
    DFunction,
    DisksEngine,
    DLNodePolicy,
    EngineConfig,
    Fragment,
    KeywordSource,
    NodeSource,
    NPDBuildConfig,
    NPDIndex,
    QClassQuery,
    QueryReport,
    SetOp,
    build_all_indexes,
    build_fragments,
    build_npd_index,
    rkq,
    sgkq,
    sgkq_extended,
)
from repro.exceptions import DisksError
from repro.live import (
    AddKeyword,
    EpochManager,
    EpochState,
    EpochSwap,
    RemoveKeyword,
    SetEdgeWeight,
    UpdateLog,
    UpdateOp,
)
from repro.graph import (
    GeneratorConfig,
    NodeKind,
    RoadNetwork,
    RoadNetworkBuilder,
    generate_road_network,
)
from repro.partition import (
    BfsPartitioner,
    MultilevelPartitioner,
    Partition,
    RandomPartitioner,
    SpatialPartitioner,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DisksError",
    # graph
    "NodeKind",
    "RoadNetwork",
    "RoadNetworkBuilder",
    "GeneratorConfig",
    "generate_road_network",
    # partitioning
    "Partition",
    "MultilevelPartitioner",
    "BfsPartitioner",
    "SpatialPartitioner",
    "RandomPartitioner",
    # core
    "Fragment",
    "build_fragments",
    "NPDIndex",
    "NPDBuildConfig",
    "DLNodePolicy",
    "BiLevelIndex",
    "build_npd_index",
    "build_all_indexes",
    "SetOp",
    "DFunction",
    "CoverageTerm",
    "KeywordSource",
    "NodeSource",
    "QClassQuery",
    "sgkq",
    "sgkq_extended",
    "rkq",
    "DisksEngine",
    "EngineConfig",
    "QueryReport",
    # live updates
    "UpdateOp",
    "AddKeyword",
    "RemoveKeyword",
    "SetEdgeWeight",
    "UpdateLog",
    "EpochManager",
    "EpochState",
    "EpochSwap",
]
