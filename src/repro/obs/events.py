"""Structured event log: bounded, thread-safe, process-global by default.

Spans cover *queries*; events cover everything else worth interleaving
with them — epoch swaps, worker deaths, admission decisions.  An
:class:`EventLog` is a bounded ring of :class:`Event` records, each
carrying both a wall-clock timestamp (for humans and JSONL sinks) and a
``perf_counter`` timestamp (comparable with span timings).

A process-global default log (:func:`global_events` / :func:`emit`)
exists so producers that predate the serve layer — notably
:class:`repro.live.epochs.EpochManager` — can publish events without
any wiring; the serve layer's ``trace`` op drains it alongside traces,
which is how ``repro trace`` shows epoch swaps interleaved with
queries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Event", "EventLog", "global_events", "emit"]


@dataclass(frozen=True)
class Event:
    """One structured occurrence."""

    kind: str
    wall_time: float  # time.time()
    monotonic: float  # time.perf_counter(), comparable with span times
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able form."""
        return {
            "kind": self.kind,
            "wall_time": self.wall_time,
            "monotonic": self.monotonic,
            **self.fields,
        }


class EventLog:
    """A bounded, thread-safe ring of events."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("event-log capacity must be positive")
        self._events: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._total = 0

    def emit(self, kind: str, **fields) -> Event:
        """Append one event (oldest entries roll off at capacity)."""
        event = Event(
            kind=kind,
            wall_time=time.time(),
            monotonic=time.perf_counter(),
            fields=fields,
        )
        with self._lock:
            self._events.append(event)
            self._total += 1
        return event

    @property
    def total(self) -> int:
        """Events ever emitted (including ones that rolled off)."""
        with self._lock:
            return self._total

    def tail(self, n: int = 32) -> list[dict]:
        """The most recent ``n`` events as dicts, oldest first."""
        with self._lock:
            events = list(self._events)
        return [event.to_dict() for event in events[-max(0, n):]]

    def clear(self) -> None:
        """Drop every retained event (counters keep their totals)."""
        with self._lock:
            self._events.clear()


_GLOBAL = EventLog()


def global_events() -> EventLog:
    """The process-global event log."""
    return _GLOBAL


def emit(kind: str, **fields) -> Event:
    """Emit onto the process-global log."""
    return _GLOBAL.emit(kind, **fields)
