"""repro.obs — end-to-end observability for the distributed query path.

The paper's cost model (Theorem 5) says a query's distributed cost is
the makespan of per-fragment local evaluations plus two coordinator
transfers; this subpackage makes that claim *measurable on live
traffic* rather than only derivable from ``core/report.py``:

* :mod:`repro.obs.trace` — dependency-free trace context, spans, a
  thread-safe bounded :class:`Tracer`, trace-tree assembly;
* :mod:`repro.obs.events` — structured event log (epoch swaps, worker
  deaths) with a process-global default;
* :mod:`repro.obs.export` — JSONL trace sink with rotation and Chrome
  trace-event (``chrome://tracing`` / Perfetto) export;
* :mod:`repro.obs.prometheus` — Prometheus text-format exposition of
  the serve layer's :class:`~repro.serve.metrics.MetricsRegistry`;
* :mod:`repro.obs.tail` — tail-based (decide-after-completion) trace
  retention with per-category token buckets;
* :mod:`repro.obs.slo` — multi-window SLO burn-rate engine with
  ``slo_burn`` alert events;
* :mod:`repro.obs.hotspots` — Space-Saving heavy-hitter attribution of
  eval time to keywords, fragments, and pairs.

Layering: ``obs`` imports nothing from the rest of the package, so
``core``, ``dist``, ``serve`` and ``live`` may all use it freely.
"""

from repro.obs.events import Event, EventLog, emit, global_events
from repro.obs.export import JsonlTraceSink, chrome_trace_events, write_chrome_trace
from repro.obs.hotspots import HotSpotSketch, SpaceSaving, render_hotspots
from repro.obs.prometheus import (
    escape_label_value,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.slo import SLOEngine, SLOObjectives, SLOTracker
from repro.obs.tail import LatencyThreshold, RetentionPolicy, TokenBucket
from repro.obs.trace import (
    Span,
    SpanCollector,
    TraceContext,
    Tracer,
    assemble_tree,
    format_trace,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "TraceContext",
    "Span",
    "SpanCollector",
    "Tracer",
    "assemble_tree",
    "format_trace",
    "new_trace_id",
    "new_span_id",
    "Event",
    "EventLog",
    "emit",
    "global_events",
    "JsonlTraceSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "render_prometheus",
    "parse_prometheus_text",
    "escape_label_value",
    "RetentionPolicy",
    "LatencyThreshold",
    "TokenBucket",
    "SLOEngine",
    "SLOTracker",
    "SLOObjectives",
    "HotSpotSketch",
    "SpaceSaving",
    "render_hotspots",
]
