"""SLO objectives, multi-window burn rates, and ``slo_burn`` alerts.

An SLO here is two objectives per operation (query / update /
subscribe):

* **availability** — the fraction of requests that succeed (not shed,
  not timed out, not errored) must stay above a target, e.g. 99.9%;
* **latency** — the fraction of *successful* requests answered under a
  threshold must stay above a target, e.g. 99% under 250 ms.

Each objective grants an error budget ``1 - target``.  The **burn
rate** over a window is ``bad_fraction / error_budget`` — 1.0 means the
budget is being consumed exactly as provisioned; 10 means it will be
gone in a tenth of the period.  Burn is computed over three windows
(1m / 5m / 1h by default) from a ring of per-second buckets, so a
long-running server pays O(window) integer sums per read and O(1) per
request recorded.

Alerting follows the multi-window rule: an alert fires only when
*both* a short and a long window burn fast (the short window proves
the problem is current, the long one proves it is material), emitted
as an ``slo_burn`` event through :func:`repro.obs.events.emit` with a
per-objective cooldown so a sustained incident does not flood the log.

The module is clock-injectable and dependency-free below ``serve``;
:class:`~repro.serve.server.DisksServer` feeds it from the single
``_run_query`` choke point and mirrors burn rates into ``repro_slo_*``
gauges.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.events import emit

__all__ = ["SLOObjectives", "SLOTracker", "SLOEngine", "DEFAULT_WINDOWS"]

# (label, seconds); the first two drive the multi-window alert rule.
DEFAULT_WINDOWS: tuple[tuple[str, int], ...] = (
    ("1m", 60),
    ("5m", 300),
    ("1h", 3600),
)


@dataclass(frozen=True)
class SLOObjectives:
    """Targets for one operation.

    ``availability_target`` bounds the failure fraction;
    ``latency_target`` bounds the fraction of successes slower than
    ``latency_threshold_ms``.  ``alert_burn`` is the short-window burn
    that (together with ``alert_burn_long`` on the next-longer window)
    fires an ``slo_burn`` event.
    """

    availability_target: float = 0.999
    latency_threshold_ms: float = 250.0
    latency_target: float = 0.99
    alert_burn: float = 10.0
    alert_burn_long: float = 2.0
    alert_cooldown_seconds: float = 60.0

    def __post_init__(self) -> None:
        for name in ("availability_target", "latency_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must lie strictly between 0 and 1")


class _BucketRing:
    """Per-second (total, avail_bad, latency_bad) buckets, ring-indexed.

    Sized to the longest window; a bucket is valid only if its stamp
    matches the second being read, so stale laps cost nothing to skip.
    """

    __slots__ = ("_size", "_stamp", "_total", "_avail_bad", "_latency_bad")

    def __init__(self, size: int) -> None:
        self._size = size
        self._stamp = [-1] * size
        self._total = [0] * size
        self._avail_bad = [0] * size
        self._latency_bad = [0] * size

    def record(self, second: int, avail_bad: bool, latency_bad: bool) -> None:
        index = second % self._size
        if self._stamp[index] != second:
            self._stamp[index] = second
            self._total[index] = 0
            self._avail_bad[index] = 0
            self._latency_bad[index] = 0
        self._total[index] += 1
        if avail_bad:
            self._avail_bad[index] += 1
        if latency_bad:
            self._latency_bad[index] += 1

    def sums(self, now_second: int, window: int) -> tuple[int, int, int]:
        """``(total, avail_bad, latency_bad)`` over the last ``window`` s."""
        total = avail_bad = latency_bad = 0
        span = min(window, self._size)
        for second in range(now_second - span + 1, now_second + 1):
            index = second % self._size
            if self._stamp[index] == second:
                total += self._total[index]
                avail_bad += self._avail_bad[index]
                latency_bad += self._latency_bad[index]
        return total, avail_bad, latency_bad


class SLOTracker:
    """Burn-rate accounting for one operation's objectives."""

    def __init__(
        self,
        op: str,
        objectives: SLOObjectives | None = None,
        *,
        windows: tuple[tuple[str, int], ...] = DEFAULT_WINDOWS,
        clock=time.monotonic,
    ) -> None:
        if not windows:
            raise ValueError("at least one window is required")
        self.op = op
        self.objectives = objectives or SLOObjectives()
        self.windows = tuple(sorted(windows, key=lambda w: w[1]))
        self._clock = clock
        self._lock = threading.Lock()
        self._ring = _BucketRing(self.windows[-1][1])
        self._total = 0
        self._avail_bad = 0
        self._latency_bad = 0
        self._alerts = 0
        self._last_alert: dict[str, float] = {}

    def record(self, ok: bool, latency_seconds: float) -> None:
        """Account one completed request (any protocol, any outcome)."""
        latency_bad = ok and (
            latency_seconds * 1000.0 > self.objectives.latency_threshold_ms
        )
        now = self._clock()
        with self._lock:
            self._ring.record(int(now), not ok, latency_bad)
            self._total += 1
            if not ok:
                self._avail_bad += 1
            if latency_bad:
                self._latency_bad += 1
        self._maybe_alert(now)

    # ------------------------------------------------------------------
    # Burn computation
    # ------------------------------------------------------------------
    def burn_rates(self, now: float | None = None) -> dict[str, dict[str, float]]:
        """``{objective: {window_label: burn}}`` over every window.

        An empty window burns 0.0 — no traffic consumes no budget.
        """
        now = self._clock() if now is None else now
        avail_budget = 1.0 - self.objectives.availability_target
        latency_budget = 1.0 - self.objectives.latency_target
        burns: dict[str, dict[str, float]] = {"availability": {}, "latency": {}}
        with self._lock:
            for label, seconds in self.windows:
                total, avail_bad, latency_bad = self._ring.sums(int(now), seconds)
                if total == 0:
                    burns["availability"][label] = 0.0
                    burns["latency"][label] = 0.0
                    continue
                burns["availability"][label] = (avail_bad / total) / avail_budget
                good = total - avail_bad
                burns["latency"][label] = (
                    (latency_bad / good) / latency_budget if good else 0.0
                )
        return burns

    def _maybe_alert(self, now: float) -> None:
        """Multi-window alert: short AND long window both burning hot."""
        if len(self.windows) < 2:
            return
        burns = self.burn_rates(now)
        short_label, long_label = self.windows[0][0], self.windows[1][0]
        for objective in ("availability", "latency"):
            short = burns[objective][short_label]
            long = burns[objective][long_label]
            if (
                short < self.objectives.alert_burn
                or long < self.objectives.alert_burn_long
            ):
                continue
            with self._lock:
                last = self._last_alert.get(objective)
                if (
                    last is not None
                    and now - last < self.objectives.alert_cooldown_seconds
                ):
                    continue
                self._last_alert[objective] = now
                self._alerts += 1
            emit(
                "slo_burn",
                op=self.op,
                objective=objective,
                burn_short=round(short, 3),
                burn_long=round(long, 3),
                window_short=short_label,
                window_long=long_label,
            )

    def snapshot(self) -> dict[str, object]:
        """JSON-able state for the ``slo`` stats block."""
        with self._lock:
            total = self._total
            avail_bad = self._avail_bad
            latency_bad = self._latency_bad
            alerts = self._alerts
        good = total - avail_bad
        return {
            "total": total,
            "errors": avail_bad,
            "slow": latency_bad,
            "availability": (good / total) if total else 1.0,
            "latency_attainment": ((good - latency_bad) / good) if good else 1.0,
            "objectives": {
                "availability_target": self.objectives.availability_target,
                "latency_threshold_ms": self.objectives.latency_threshold_ms,
                "latency_target": self.objectives.latency_target,
            },
            "burn": self.burn_rates(),
            "alerts": alerts,
        }


class SLOEngine:
    """One tracker per operation; the server feeds and exports it."""

    def __init__(
        self,
        objectives: dict[str, SLOObjectives] | None = None,
        *,
        windows: tuple[tuple[str, int], ...] = DEFAULT_WINDOWS,
        clock=time.monotonic,
    ) -> None:
        objectives = objectives or {}
        self.trackers: dict[str, SLOTracker] = {
            op: SLOTracker(
                op, objectives.get(op), windows=windows, clock=clock
            )
            for op in ("query", "update", "subscribe")
        }

    def record(self, op: str, ok: bool, latency_seconds: float) -> None:
        """Route one completed request to its op's tracker (unknown ops: no-op)."""
        tracker = self.trackers.get(op)
        if tracker is not None:
            tracker.record(ok, latency_seconds)

    def snapshot(self) -> dict[str, object]:
        """Only ops that saw traffic — an idle tracker is noise."""
        blocks: dict[str, object] = {}
        for op, tracker in self.trackers.items():
            block = tracker.snapshot()
            if block["total"]:
                blocks[op] = block
        return blocks

    def sync_gauges(self, metrics) -> None:
        """Mirror burn rates into ``repro_slo_*`` gauges."""
        for op, tracker in self.trackers.items():
            burns = tracker.burn_rates()
            for objective, by_window in burns.items():
                for label, burn in by_window.items():
                    metrics.observe_gauge(
                        f"slo_{op}_{objective}_burn_{label}", burn
                    )
