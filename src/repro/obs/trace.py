"""Dependency-free distributed trace primitives (Dapper-style span model).

The paper's headline property — zero inter-machine communication at
query time — means a query's cost decomposes *exactly* into per-machine,
per-fragment local work plus the two unavoidable coordinator transfers.
This module makes that decomposition observable: every traced query
becomes one **trace** (a tree of **spans**), where each span is a named,
timed stage pinned to a machine and optionally a fragment:

    query                          (coordinator)
    ├── dispatch  m0               (coordinator, per machine)
    │   ├── queue-wait             (modelled/actual transfer + queueing)
    │   ├── task      f0           (worker, per hosted fragment)
    │   │   ├── eval   term 0      (kernel coverage eval, cache-annotated)
    │   │   ├── eval   term 1
    │   │   └── union              (D-expression evaluation)
    │   └── serialize              (result pickling)
    └── dispatch  m1 ...

Span timestamps are ``time.perf_counter()`` values — system-wide
monotonic on Linux, so they are directly comparable across the forked
worker processes of :class:`~repro.dist.process_cluster.ProcessCluster`
and :class:`~repro.serve.pipeline.PipelinedCluster`.  Workers record
spans into a local :class:`SpanCollector` and piggyback them on the
result messages they already send, so tracing preserves the
zero-extra-round-trips property.

This module deliberately imports nothing from the rest of the package:
``core``, ``dist``, ``serve`` and ``live`` may all depend on it.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, Sequence

__all__ = [
    "COORDINATOR_MACHINE",
    "TraceContext",
    "Span",
    "SpanCollector",
    "Tracer",
    "new_trace_id",
    "new_span_id",
    "assemble_tree",
    "format_trace",
]

# Mirrors repro.dist.network.COORDINATOR_ID without importing it (this
# module stays dependency-free).
COORDINATOR_MACHINE = -1


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """What crosses a boundary: the trace id plus the parent span id.

    ``span_id`` is the span that children created under this context
    should name as their parent (``None`` at the very top).  The wire
    form (:meth:`to_wire` / :meth:`from_wire`) is a plain tuple so it
    pickles compactly inside existing cluster messages.
    """

    trace_id: str
    span_id: str | None = None

    def child(self, span_id: str) -> "TraceContext":
        """The context to hand to work parented under ``span_id``."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id)

    def to_wire(self) -> tuple[str, str | None]:
        """Compact picklable form for message piggybacking."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: tuple[str, str | None]) -> "TraceContext":
        """Rebuild a context from :meth:`to_wire` output."""
        trace_id, span_id = wire
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One timed stage of a traced query.

    ``start``/``end`` are ``perf_counter`` seconds (``end is None``
    while the span is open).  ``machine_id`` is the hosting machine
    (-1 = coordinator); the coordinator stamps it onto spans received
    from workers, so worker code never needs to know its own id.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float | None = None
    machine_id: int = COORDINATOR_MACHINE
    fragment_id: int | None = None
    tags: dict = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def finish(self, at: float | None = None) -> "Span":
        """Close the span (idempotent); returns ``self`` for chaining."""
        if self.end is None:
            self.end = perf_counter() if at is None else at
        return self

    def to_dict(self) -> dict:
        """JSON-able form (used by the serve layer's ``trace`` op)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "machine": self.machine_id,
            "fragment": self.fragment_id,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            name=record["name"],
            start=record["start"],
            end=record.get("end"),
            machine_id=record.get("machine", COORDINATOR_MACHINE),
            fragment_id=record.get("fragment"),
            tags=dict(record.get("tags", {})),
        )


class SpanCollector:
    """Accumulates the spans one participant records for one trace.

    Collectors are cheap, single-trace and *not* shared across threads
    by default — the pipelined coordinator mutates one under its own
    lock, workers each build their own and ship the result.
    """

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: list[Span] = []

    def start(
        self,
        name: str,
        *,
        parent_id: str | None = None,
        machine_id: int = COORDINATOR_MACHINE,
        fragment_id: int | None = None,
        at: float | None = None,
        **tags,
    ) -> Span:
        """Open a span (appended immediately; call ``finish`` to close)."""
        span = Span(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            start=perf_counter() if at is None else at,
            machine_id=machine_id,
            fragment_id=fragment_id,
            tags=dict(tags),
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent_id: str | None = None,
        machine_id: int = COORDINATOR_MACHINE,
        fragment_id: int | None = None,
        **tags,
    ) -> Iterator[Span]:
        """Context manager: the span covers the ``with`` body."""
        opened = self.start(
            name,
            parent_id=parent_id,
            machine_id=machine_id,
            fragment_id=fragment_id,
            **tags,
        )
        try:
            yield opened
        finally:
            opened.finish()

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent_id: str | None = None,
        machine_id: int = COORDINATOR_MACHINE,
        fragment_id: int | None = None,
        **tags,
    ) -> Span:
        """Append an already-measured (closed) span."""
        span = Span(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            machine_id=machine_id,
            fragment_id=fragment_id,
            tags=dict(tags),
        )
        self.spans.append(span)
        return span

    def extend(self, spans: Iterable[Span]) -> None:
        """Absorb spans recorded elsewhere (e.g. shipped by a worker)."""
        self.spans.extend(spans)


class Tracer:
    """Thread-safe sampling decisions plus bounded finished-trace storage.

    ``sample_rate`` is the probability a query is traced end-to-end
    (0.0 disables span collection entirely — the hot path then carries
    only a ``None`` placeholder).  Finished traces are kept in a
    bounded insertion-ordered map: once ``capacity`` traces are stored,
    the oldest is dropped.  ``max_spans_per_trace`` truncates
    pathological traces rather than growing without bound.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 0.0,
        capacity: int = 256,
        max_spans_per_trace: int = 4096,
        seed: int | None = None,
    ) -> None:
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError("sample_rate must lie in [0, 1]")
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.sample_rate = sample_rate
        self._capacity = capacity
        self._max_spans = max_spans_per_trace
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # Insertion-ordered trace_id -> trace record dict.
        self._traces: dict[str, dict] = {}
        self._sampled = 0
        self._seen = 0

    # Sampling ----------------------------------------------------------
    def maybe_trace(self) -> TraceContext | None:
        """A fresh root context when this query is sampled, else ``None``."""
        with self._lock:
            self._seen += 1
            if self.sample_rate <= 0.0 or self._rng.random() >= self.sample_rate:
                return None
            self._sampled += 1
        return TraceContext(trace_id=new_trace_id())

    @property
    def counts(self) -> dict[str, int]:
        """``{"seen", "sampled", "stored"}`` bookkeeping counters."""
        with self._lock:
            return {
                "seen": self._seen,
                "sampled": self._sampled,
                "stored": len(self._traces),
            }

    # Storage -----------------------------------------------------------
    def record(self, trace_id: str, spans: Sequence[Span], **meta) -> dict:
        """Store one finished trace; returns its stored record."""
        spans = list(spans)[: self._max_spans]
        record = {
            "trace_id": trace_id,
            "spans": [span.to_dict() for span in spans],
            **meta,
        }
        with self._lock:
            self._traces.pop(trace_id, None)
            while len(self._traces) >= self._capacity:
                oldest = next(iter(self._traces))
                del self._traces[oldest]
            self._traces[trace_id] = record
        return record

    def get(self, trace_id: str) -> dict | None:
        """One stored trace record, or ``None``."""
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, n: int = 8) -> list[dict]:
        """The ``n`` most recently stored traces, newest last."""
        with self._lock:
            records = list(self._traces.values())
        return records[-max(0, n):]


# ----------------------------------------------------------------------
# Trace-tree assembly and rendering
# ----------------------------------------------------------------------
def assemble_tree(spans: Sequence[Span | dict]) -> list[dict]:
    """Nest flat spans into parent/child trees.

    Accepts :class:`Span` objects or their ``to_dict`` records and
    returns a list of root nodes, each ``{**span_dict, "children":
    [...]}``; children are sorted by start time.  Spans whose parent is
    absent (e.g. truncated traces) surface as roots rather than being
    dropped.
    """
    records = [span.to_dict() if isinstance(span, Span) else dict(span) for span in spans]
    by_id: dict[str, dict] = {}
    for record in records:
        record["children"] = []
        by_id[record["span_id"]] = record
    roots: list[dict] = []
    for record in records:
        parent = record.get("parent_id")
        if parent is not None and parent in by_id:
            by_id[parent]["children"].append(record)
        else:
            roots.append(record)
    for record in records:
        record["children"].sort(key=lambda child: child.get("start") or 0.0)
    roots.sort(key=lambda record: record.get("start") or 0.0)
    return roots


def _format_node(node: dict, indent: int, lines: list[str]) -> None:
    start, end = node.get("start"), node.get("end")
    duration_ms = (end - start) * 1000.0 if (start is not None and end is not None) else 0.0
    where = f"m{node.get('machine')}" if node.get("machine", -1) >= 0 else "coord"
    fragment = node.get("fragment")
    if fragment is not None:
        where += f"/f{fragment}"
    tags = node.get("tags") or {}
    tag_text = (
        " " + " ".join(f"{key}={value}" for key, value in sorted(tags.items()))
        if tags
        else ""
    )
    lines.append(
        f"{'  ' * indent}{node['name']:<12} {duration_ms:9.3f} ms  [{where}]{tag_text}"
    )
    for child in node.get("children", []):
        _format_node(child, indent + 1, lines)


def format_trace(spans: Sequence[Span | dict]) -> str:
    """Human-readable indented rendering of one trace."""
    lines: list[str] = []
    for root in assemble_tree(spans):
        _format_node(root, 0, lines)
    return "\n".join(lines)
