"""Prometheus text-format exposition (and a matching tiny parser).

:func:`render_prometheus` turns a metrics *state dict* — the locked
snapshot produced by
:meth:`repro.serve.metrics.MetricsRegistry.exposition_state` — into the
Prometheus text exposition format (version 0.0.4):

* counters   → ``<ns>_<name>_total``;
* gauges     → ``<ns>_<name>`` plus ``<ns>_<name>_peak``;
* histograms → summary-style ``{quantile="…"}`` series plus ``_sum``,
  ``_count`` and ``_max`` (values in seconds, the Prometheus base
  unit);
* busy time  → ``<ns>_machine_busy_seconds_total{machine="…"}``.

Taking a plain dict rather than the registry keeps this module
dependency-free (``obs`` sits below ``serve`` in the layering) and
keeps all locking inside the registry.

:func:`parse_prometheus_text` inverts the rendering just enough for the
load generator to read stage latencies back from a server's ``metrics``
op without a client library.
"""

from __future__ import annotations

import re

__all__ = ["render_prometheus", "parse_prometheus_text", "escape_label_value"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
# A label block may contain "}" inside quoted values, so the block is
# matched as runs of non-quote/non-brace characters or quoted strings.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def escape_label_value(value: str) -> str:
    """A label value escaped per the exposition format (0.0.4).

    Backslash, double quote and newline — exactly the three characters
    :func:`parse_prometheus_text` unescapes, so arbitrary values
    round-trip.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    # Single pass, so "\\n" (escaped backslash + n) stays backslash-n
    # instead of being re-read as an escaped newline.
    return _UNESCAPE_RE.sub(
        lambda match: _UNESCAPES.get(match.group(1), match.group(0)), value
    )


def _metric_name(namespace: str, name: str) -> str:
    return _NAME_OK.sub("_", f"{namespace}_{name}")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    return repr(float(value))


def render_prometheus(state: dict, *, namespace: str = "repro") -> str:
    """The exposition text for one metrics state dict.

    ``state`` has the shape returned by ``MetricsRegistry
    .exposition_state()``: ``counters`` (name → int), ``gauges`` (name →
    {"current", "peak"}), ``histograms`` (name → {"count", "sum",
    "max", "quantiles": {"0.5": seconds, …}}), ``busy_seconds``
    (machine id → seconds).
    """
    lines: list[str] = []

    for name, value in sorted(state.get("counters", {}).items()):
        metric = _metric_name(namespace, name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, gauge in sorted(state.get("gauges", {}).items()):
        metric = _metric_name(namespace, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.get('current', 0.0))}")
        lines.append(f"# TYPE {metric}_peak gauge")
        lines.append(f"{metric}_peak {_format_value(gauge.get('peak', 0.0))}")

    for name, summary in sorted(state.get("histograms", {}).items()):
        metric = _metric_name(namespace, name)
        lines.append(f"# TYPE {metric} summary")
        for quantile, seconds in sorted(summary.get("quantiles", {}).items()):
            escaped = escape_label_value(str(quantile))
            lines.append(f'{metric}{{quantile="{escaped}"}} {_format_value(seconds)}')
        for exemplar in summary.get("exemplars", ()):
            trace_id = escape_label_value(str(exemplar.get("trace_id", "")))
            lines.append(
                f'{metric}_exemplar{{trace_id="{trace_id}"}} '
                f"{_format_value(exemplar.get('seconds', 0.0))}"
            )
        lines.append(f"{metric}_sum {_format_value(summary.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_format_value(summary.get('count', 0))}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {_format_value(summary.get('max', 0.0))}")

    busy = state.get("busy_seconds", {})
    if busy:
        metric = _metric_name(namespace, "machine_busy_seconds")
        lines.append(f"# TYPE {metric}_total counter")
        for machine, seconds in sorted(busy.items(), key=lambda kv: str(kv[0])):
            escaped = escape_label_value(str(machine))
            lines.append(
                f'{metric}_total{{machine="{escaped}"}} {_format_value(seconds)}'
            )

    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Samples of an exposition as ``{(name, sorted labels): value}``.

    Comment and malformed lines are skipped; label values have their
    escapes undone.  Just enough of the format for round-trip tests and
    the load generator's stage-latency table.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        labels: list[tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            for key, value in _LABEL_RE.findall(raw):
                labels.append((key, _unescape_label_value(value)))
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return samples
