"""Trace exporters: JSONL sink with rotation, Chrome trace-event JSON.

Two consumption paths:

* :class:`JsonlTraceSink` — an append-only, size-rotated JSONL file of
  finished trace records, the durable form (one JSON object per line,
  ``grep``-able, replayable);
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  interactive form: the Chrome trace-event format that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly.
  Machines become processes (coordinator = pid 0, machine *m* =
  pid *m* + 1), fragments become threads, and every span is one
  complete ``"ph": "X"`` duration event, so the per-machine
  decomposition of a query reads as parallel swim-lanes.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Sequence

from repro.obs.trace import Span

__all__ = ["JsonlTraceSink", "chrome_trace_events", "write_chrome_trace"]


class JsonlTraceSink:
    """Append finished traces to a JSONL file, rotating by size.

    When the file would exceed ``max_bytes`` the current file is
    renamed to ``<path>.1`` (shifting ``.1`` → ``.2`` … up to
    ``backups``) and a fresh file is started, so long-running servers
    keep a bounded, recent window on disk.
    """

    def __init__(self, path: str, *, max_bytes: int = 16_000_000, backups: int = 2) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups cannot be negative")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._written = 0

    def _rotate(self) -> None:
        for i in range(self.backups, 0, -1):
            source = self.path if i == 1 else f"{self.path}.{i - 1}"
            target = f"{self.path}.{i}"
            if os.path.exists(source):
                os.replace(source, target)
        if self.backups == 0 and os.path.exists(self.path):
            os.remove(self.path)

    def write(self, record: dict) -> None:
        """Append one trace record as a JSON line (rotating if needed)."""
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                current = os.path.getsize(self.path)
            except OSError:
                current = 0
            if current and current + len(data) > self.max_bytes:
                self._rotate()
            with open(self.path, "ab") as handle:
                handle.write(data)
            self._written += 1

    @property
    def written(self) -> int:
        """Trace records written through this sink (all rotations)."""
        with self._lock:
            return self._written


def _span_records(spans: Sequence[Span | dict]) -> list[dict]:
    return [span.to_dict() if isinstance(span, Span) else dict(span) for span in spans]


def chrome_trace_events(spans: Sequence[Span | dict]) -> dict:
    """Spans as a Chrome trace-event JSON object (Perfetto-loadable).

    Timestamps are rebased so the earliest span starts at t=0 (Chrome
    tracing expects microseconds from an arbitrary origin).  Open spans
    (no ``end``) are rendered with zero duration rather than dropped.
    """
    records = _span_records(spans)
    starts = [r["start"] for r in records if r.get("start") is not None]
    base = min(starts) if starts else 0.0
    events: list[dict] = []
    seen_pids: dict[int, str] = {}
    for record in records:
        machine = record.get("machine", -1)
        pid = 0 if machine is None or machine < 0 else machine + 1
        if pid not in seen_pids:
            seen_pids[pid] = "coordinator" if pid == 0 else f"machine {pid - 1}"
        fragment = record.get("fragment")
        tid = 0 if fragment is None else fragment + 1
        start = record.get("start") or base
        end = record.get("end")
        duration = max(0.0, (end - start)) if end is not None else 0.0
        args = dict(record.get("tags") or {})
        args["trace_id"] = record.get("trace_id")
        if fragment is not None:
            args["fragment"] = fragment
        events.append(
            {
                "name": record["name"],
                "cat": "query",
                "ph": "X",
                "ts": (start - base) * 1e6,
                "dur": duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for pid, name in sorted(seen_pids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, traces: Sequence[dict]) -> int:
    """Write stored trace records as one Chrome trace JSON file.

    ``traces`` are the serve layer's trace records (each holding a
    ``"spans"`` list).  Every trace's spans land in the same file —
    Perfetto separates them by time and by the ``trace_id`` arg.
    Returns the number of span events written.
    """
    all_spans: list[dict] = []
    for trace in traces:
        all_spans.extend(trace.get("spans", []))
    payload = chrome_trace_events(all_spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, default=str)
    return sum(1 for event in payload["traceEvents"] if event.get("ph") == "X")
