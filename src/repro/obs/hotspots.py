"""Heavy-hitter attribution: Space-Saving sketches over eval spans.

The paper's coverage search cost is dominated by a skewed tail — a few
keyword × fragment combinations account for most of the eval seconds.
This module answers "which ones?" with bounded memory: a
**Space-Saving** sketch (Metwally et al.) keeps at most ``capacity``
counters per dimension; a new key evicts the minimum counter and
inherits its count, recording that count as the entry's ``error``
bound.  The classic guarantees carry over to weighted updates: every
tracked key's estimate overcounts by at most its ``error``, and any
key whose true weight exceeds ``total / capacity`` is tracked.

:class:`HotSpotSketch` runs six sketches — keywords, fragments and
keyword × fragment pairs, each by eval-seconds and by eval count — fed
from the ``eval`` spans workers already piggyback on traced replies
(tags ``source`` and duration; see
:func:`repro.core.coverage.batch_distance_maps`).  The top-k surfaces
in the ``stats`` op, as bounded-cardinality Prometheus series, and as
the per-fragment feature feed the ROADMAP's learned-pruning item
consumes.
"""

from __future__ import annotations

import threading

from repro.obs.prometheus import escape_label_value

__all__ = ["SpaceSaving", "HotSpotSketch", "render_hotspots"]


class SpaceSaving:
    """Bounded top-k counter sketch with per-entry error bounds.

    ``offer(key, weight)`` is O(capacity) worst case (the evict-min
    scan); capacities here are tens, not thousands, so a scan beats
    the bookkeeping of the textbook stream-summary structure.
    """

    __slots__ = ("capacity", "_counts", "_errors", "total")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: dict[object, float] = {}
        self._errors: dict[object, float] = {}
        self.total = 0.0

    def offer(self, key: object, weight: float = 1.0) -> None:
        """Add ``weight`` to ``key``'s estimate (evicting the min if full)."""
        if weight <= 0.0:
            return
        self.total += weight
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0.0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def top(self, n: int) -> list[tuple[object, float, float]]:
        """The ``n`` largest estimates as ``(key, estimate, error)``.

        The true weight of ``key`` lies in ``[estimate - error,
        estimate]``.
        """
        ordered = sorted(
            self._counts.items(), key=lambda item: item[1], reverse=True
        )
        return [
            (key, count, self._errors[key]) for key, count in ordered[:n]
        ]

    def __len__(self) -> int:
        return len(self._counts)


class HotSpotSketch:
    """Keyword / fragment / pair attribution by eval-seconds and count."""

    DIMENSIONS = ("keyword", "fragment", "pair")

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seconds = {dim: SpaceSaving(capacity) for dim in self.DIMENSIONS}
        self._counts = {dim: SpaceSaving(capacity) for dim in self.DIMENSIONS}
        self._evals = 0
        self._eval_seconds = 0.0

    def observe_eval(
        self, source: str, fragment_id: int | None, seconds: float
    ) -> None:
        """Attribute one per-term evaluation to its keyword and fragment."""
        with self._lock:
            self._evals += 1
            self._eval_seconds += seconds
            self._seconds["keyword"].offer(source, seconds)
            self._counts["keyword"].offer(source, 1.0)
            if fragment_id is not None:
                self._seconds["fragment"].offer(fragment_id, seconds)
                self._counts["fragment"].offer(fragment_id, 1.0)
                pair = (source, fragment_id)
                self._seconds["pair"].offer(pair, seconds)
                self._counts["pair"].offer(pair, 1.0)

    def feed_spans(self, spans) -> None:
        """Ingest a response's span tree: every closed ``eval`` span.

        The ``source`` tag is the term's keyword (or ``#<node>`` for
        RKQ location terms — those are load too).
        """
        for span in spans:
            if span.name != "eval" or span.end is None:
                continue
            source = span.tags.get("source")
            if source is None:
                continue
            self.observe_eval(
                str(source), span.fragment_id, span.duration_seconds
            )

    def snapshot(self, k: int = 10) -> dict[str, object]:
        """Top-k per dimension for the ``hotspots`` stats block."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "evals": self._evals,
                "eval_seconds": round(self._eval_seconds, 6),
                "by_seconds": {
                    dim: [
                        {
                            "key": _render_key(key),
                            "seconds": round(count, 6),
                            "error": round(error, 6),
                        }
                        for key, count, error in sketch.top(k)
                    ]
                    for dim, sketch in self._seconds.items()
                },
                "by_count": {
                    dim: [
                        {
                            "key": _render_key(key),
                            "count": int(count),
                            "error": int(error),
                        }
                        for key, count, error in sketch.top(k)
                    ]
                    for dim, sketch in self._counts.items()
                },
            }

    def features(self, k: int | None = None) -> list[dict[str, object]]:
        """The learned-pruning feature feed: per keyword × fragment load.

        One row per tracked pair with its eval count and seconds (each
        with the sketch's overcount bound) — exactly the per-fragment
        cost signal a dispatch-pruning model trains on.
        """
        k = k if k is not None else self.capacity
        with self._lock:
            seconds = {
                key: (count, error)
                for key, count, error in self._seconds["pair"].top(k)
            }
            counts = {
                key: (count, error)
                for key, count, error in self._counts["pair"].top(k)
            }
        rows = []
        for key, (secs, secs_error) in seconds.items():
            keyword, fragment = key
            count, count_error = counts.get(key, (0.0, 0.0))
            rows.append(
                {
                    "keyword": keyword,
                    "fragment": fragment,
                    "seconds": round(secs, 6),
                    "seconds_error": round(secs_error, 6),
                    "count": int(count),
                    "count_error": int(count_error),
                }
            )
        return rows


def _render_key(key: object) -> str:
    if isinstance(key, tuple):
        source, fragment = key
        return f"{source}×f{fragment}"
    if isinstance(key, int):
        return f"f{key}"
    return str(key)


def render_hotspots(
    snapshot: dict, *, namespace: str = "repro", k: int = 10
) -> str:
    """Bounded Prometheus series for a :meth:`HotSpotSketch.snapshot`.

    At most ``k`` series per (dimension, measure) — the cardinality
    cap holds no matter how many distinct keywords the workload has.
    Label values are escaped with the exposition-format rules so
    adversarial keywords round-trip through
    :func:`repro.obs.prometheus.parse_prometheus_text`.
    """
    lines: list[str] = []
    seconds_metric = f"{namespace}_hotspot_eval_seconds_total"
    count_metric = f"{namespace}_hotspot_evals_total"
    for metric, block, field in (
        (seconds_metric, snapshot.get("by_seconds", {}), "seconds"),
        (count_metric, snapshot.get("by_count", {}), "count"),
    ):
        lines.append(f"# TYPE {metric} counter")
        for dim in sorted(block):
            for entry in block[dim][:k]:
                key = escape_label_value(str(entry["key"]))
                lines.append(
                    f'{metric}{{dim="{dim}",key="{key}"}} '
                    f'{float(entry[field])!r}'
                )
    return "\n".join(lines) + "\n" if lines else ""
