"""Tail-based trace retention: decide *after* the query completes.

Head sampling (PR 4's ``trace_sample_rate``) flips a coin before
dispatch, so at serving rates the interesting 1% — the slow tail,
failovers, degraded answers — is exactly what a 1% sample misses.
Tail-based retention inverts the decision: every query is traced (the
spans ride replies that were being sent anyway), and once the outcome
is known a :class:`RetentionPolicy` decides whether the buffered spans
are worth keeping:

* **slow** — above a dynamic threshold that tracks the p99 of recent
  latencies (with the configured ``slow_query_ms`` as the warm-up
  floor and ceiling: until the window fills, and for absolute
  regressions, the static knob still bites);
* **error** — the query failed, timed out, or returned degraded;
* **rerouted** — an HA failover re-dispatched part of it
  (``response.attempt > 0``);
* **cache_stale** — its cache admission was rejected by the epoch
  recheck (the race window worth inspecting);
* **epoch_adjacent** — it completed within a short window of an epoch
  swap, where apply/swap interference shows up;
* **normal** — a small uniform reservoir of unremarkable queries, so
  the baseline shape stays observable.

Every category sits behind its own token bucket: a pathological burst
(every query slow during an incident) keeps a bounded trace rate
instead of evicting the store, and the per-category ``kept`` /
``triggered`` counters make the sampling bias auditable.
"""

from __future__ import annotations

import random
import threading
import time

__all__ = ["TokenBucket", "LatencyThreshold", "RetentionPolicy"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, up to ``burst`` banked."""

    __slots__ = ("rate", "burst", "_tokens", "_refilled")

    def __init__(self, rate: float, burst: float, *, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._refilled = now

    def try_take(self, now: float) -> bool:
        """Spend one token if available; refills lazily from elapsed time."""
        elapsed = max(0.0, now - self._refilled)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class LatencyThreshold:
    """Dynamic slow threshold: the p99 of a sliding latency window.

    Until ``min_samples`` latencies have been seen the configured floor
    (``slow_ms``) decides alone; afterwards a query is slow if it
    exceeds *either* the windowed p99 (relative tail) or the floor
    (absolute regression).  The window is a ring so the threshold
    follows load shifts instead of averaging over the process lifetime.
    """

    def __init__(
        self, slow_ms: float, *, window: int = 2048, min_samples: int = 100
    ) -> None:
        self.slow_ms = slow_ms
        self._window: list[float] = []
        self._cursor = 0
        self._capacity = window
        self._min_samples = min_samples

    def observe(self, latency_seconds: float) -> None:
        """Feed one latency sample into the sliding window."""
        if len(self._window) < self._capacity:
            self._window.append(latency_seconds)
        else:
            self._window[self._cursor] = latency_seconds
            self._cursor = (self._cursor + 1) % self._capacity

    def p99_ms(self) -> float | None:
        """The windowed p99 in ms, or None while warming up."""
        if len(self._window) < self._min_samples:
            return None
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, max(0, round(0.99 * len(ordered)) - 1))
        return ordered[index] * 1000.0

    def is_slow(self, latency_seconds: float) -> bool:
        """True if the latency exceeds the floor or the windowed p99."""
        latency_ms = latency_seconds * 1000.0
        if latency_ms >= self.slow_ms:
            return True
        p99 = self.p99_ms()
        return p99 is not None and latency_ms > p99


class RetentionPolicy:
    """The decide-after-completion keep/drop policy.

    ``decide`` returns the tuple of categories that retained the trace
    (empty = drop the spans).  ``category_rates`` maps category name to
    ``(tokens_per_second, burst)``; ``normal_rate`` is the uniform
    probability an unremarkable query enters the reservoir (itself
    bucketed, so the reservoir stays small at any qps).
    """

    CATEGORIES = (
        "slow",
        "error",
        "rerouted",
        "cache_stale",
        "epoch_adjacent",
        "normal",
    )

    def __init__(
        self,
        *,
        slow_ms: float = 250.0,
        category_rates: dict[str, tuple[float, float]] | None = None,
        normal_rate: float = 0.01,
        epoch_window_seconds: float = 1.0,
        clock=time.monotonic,
        rng: random.Random | None = None,
    ) -> None:
        rates = {
            "slow": (20.0, 40.0),
            "error": (20.0, 40.0),
            "rerouted": (20.0, 40.0),
            "cache_stale": (5.0, 10.0),
            "epoch_adjacent": (5.0, 10.0),
            "normal": (1.0, 5.0),
        }
        rates.update(category_rates or {})
        self._clock = clock
        self._rng = rng or random.Random()
        now = clock()
        self._buckets = {
            name: TokenBucket(rate, burst, now=now)
            for name, (rate, burst) in rates.items()
        }
        self.threshold = LatencyThreshold(slow_ms)
        self.normal_rate = normal_rate
        self.epoch_window_seconds = epoch_window_seconds
        self._lock = threading.Lock()
        self._seen = 0
        self._kept = 0
        self._triggered = {name: 0 for name in self.CATEGORIES}
        self._retained = {name: 0 for name in self.CATEGORIES}
        self._shed = {name: 0 for name in self.CATEGORIES}

    def decide(
        self,
        latency_seconds: float,
        *,
        error: bool = False,
        degraded: bool = False,
        attempt: int = 0,
        cache_stale: bool = False,
        seconds_since_swap: float | None = None,
    ) -> tuple[str, ...]:
        """Categorise one completed query; returns the retaining categories.

        Also feeds the latency window — callers make exactly one call
        per query, successful or not (errors are excluded from the
        latency window so a timeout storm cannot inflate the p99 into
        retaining nothing).
        """
        now = self._clock()
        with self._lock:
            self._seen += 1
            triggered: list[str] = []
            if error or degraded:
                triggered.append("error")
            if not error:
                if self.threshold.is_slow(latency_seconds):
                    triggered.append("slow")
                self.threshold.observe(latency_seconds)
            if attempt > 0:
                triggered.append("rerouted")
            if cache_stale:
                triggered.append("cache_stale")
            if (
                seconds_since_swap is not None
                and 0.0 <= seconds_since_swap <= self.epoch_window_seconds
            ):
                triggered.append("epoch_adjacent")
            if not triggered and self._rng.random() < self.normal_rate:
                triggered.append("normal")
            kept: list[str] = []
            for name in triggered:
                self._triggered[name] += 1
                if self._buckets[name].try_take(now):
                    self._retained[name] += 1
                    kept.append(name)
                else:
                    self._shed[name] += 1
            if kept:
                self._kept += 1
            return tuple(kept)

    def snapshot(self) -> dict[str, object]:
        """Counters for the ``tracing.retention`` stats block."""
        with self._lock:
            return {
                "seen": self._seen,
                "kept": self._kept,
                "slow_threshold_ms": self.threshold.p99_ms()
                or self.threshold.slow_ms,
                "triggered": dict(self._triggered),
                "retained": dict(self._retained),
                "shed": dict(self._shed),
            }
