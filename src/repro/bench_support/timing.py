"""Timing helpers used by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from typing import Any, Callable, TypeVar

__all__ = ["time_call", "repeat_median"]

T = TypeVar("T")


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Call ``fn`` once; return ``(result, wall_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def repeat_median(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Median wall time of ``repeats`` calls to ``fn``."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    times = []
    for _ in range(repeats):
        _result, seconds = time_call(fn)
        times.append(seconds)
    return statistics.median(times)
