"""Paper-style table and series rendering for the benchmark reports.

Every EXP benchmark prints the rows/series the corresponding paper table
or figure reports, via these helpers, so `pytest benchmarks/
--benchmark-only -s` doubles as the experiment log that EXPERIMENTS.md
records.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = [
    "Table",
    "format_series",
    "print_experiment_header",
    "record_benchmark",
]


@dataclass
class Table:
    """A fixed-column text table."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """Render as aligned monospace text."""
        formatted_rows = [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [len(str(c)) for c in self.columns]
        for row in formatted_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted_rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table, framed by blank lines."""
        print()
        print(self.render())
        print()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One figure series as ``name: x=y, x=y, ...``."""
    pairs = ", ".join(f"{x}={_format_cell(float(y))}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def print_experiment_header(exp_id: str, paper_artifact: str, description: str) -> None:
    """Banner identifying which paper table/figure a bench reproduces."""
    print()
    print("=" * 72)
    print(f"{exp_id} — reproduces {paper_artifact}")
    print(description)
    print("=" * 72)


def record_benchmark(path: str | Path, record: dict) -> list[dict]:
    """Append one benchmark record to a JSON trajectory file.

    The file holds a JSON list, one dict per recorded run, oldest first
    — the repository's before/after perf trajectory (e.g.
    ``BENCH_kernel.json``).  A wall-clock ``recorded_at`` ISO timestamp
    is stamped onto the record; everything else is the caller's.
    Returns the full trajectory after the append.  A missing or
    corrupted file restarts the trajectory rather than failing the
    benchmark that produced the numbers.
    """
    path = Path(path)
    try:
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            history = []
    except (OSError, ValueError):
        history = []
    stamped = dict(record)
    stamped.setdefault(
        "recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
    )
    history.append(stamped)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return history
