"""Shared helpers for the benchmark harness (timing, table rendering)."""

from repro.bench_support.timing import time_call, repeat_median
from repro.bench_support.reporting import (
    Table,
    format_series,
    print_experiment_header,
    record_benchmark,
)

__all__ = [
    "time_call",
    "repeat_median",
    "Table",
    "format_series",
    "print_experiment_header",
    "record_benchmark",
]
