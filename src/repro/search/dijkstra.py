"""Dijkstra's algorithm (paper reference [7]) in the variants the system needs.

All functions work on an *adjacency callable* ``adj(u) -> iterable of
(v, w)`` so the same code serves a bare :class:`RoadNetwork`, the
reverse graph during backward index construction, and the *extended
fragment* of query time (fragment + SC shortcuts + DL virtual edges).

Multi-source searches are expressed through *seeds*: a mapping from node
to initial distance.  Seeding ``{v: d(v)}`` is exactly equivalent to the
paper's virtual-source construction (§3.7 / Fig. 5) where a virtual node
connects to each ``v`` with a directed zero- or ``d(v)``-weight edge —
without materialising the virtual node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Iterable, Mapping

__all__ = [
    "Adjacency",
    "DijkstraRun",
    "shortest_path_distances",
    "shortest_paths_with_predecessors",
    "distance_between",
    "reconstruct_path",
]

Adjacency = Callable[[int], Iterable[tuple[int, float]]]


@dataclass
class DijkstraRun:
    """Outcome of a predecessor-tracking Dijkstra run.

    Attributes
    ----------
    distances:
        Settled node -> shortest distance from the seed set.
    predecessors:
        Settled node -> predecessor on (one of) the shortest path(s);
        seed nodes map to ``-1``.
    settled_order:
        Nodes in the order they were settled (non-decreasing distance).
    """

    distances: dict[int, float]
    predecessors: dict[int, int]
    settled_order: list[int] = field(default_factory=list)


def _normalize_seeds(seeds: Mapping[int, float] | Iterable[int]) -> dict[int, float]:
    if isinstance(seeds, Mapping):
        return dict(seeds)
    return {node: 0.0 for node in seeds}


def shortest_path_distances(
    adj: Adjacency,
    seeds: Mapping[int, float] | Iterable[int],
    *,
    bound: float = math.inf,
    targets: Iterable[int] | None = None,
) -> dict[int, float]:
    """Distances from a seed set, truncated at ``bound``.

    Parameters
    ----------
    adj:
        Adjacency callable for the graph to search.
    seeds:
        Either node ids (all at distance 0) or a ``{node: initial}``
        mapping (virtual-source search).
    bound:
        Nodes farther than ``bound`` are neither settled nor reported.
        This is the paper's ``maxR`` / query-``r`` truncation.
    targets:
        If given, the search stops once every target is settled (early
        exit for point-to-point queries).

    Returns the ``{node: distance}`` map of all settled nodes.
    """
    dist: dict[int, float] = {}
    seed_map = _normalize_seeds(seeds)
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = []
    best: dict[int, float] = {}
    for node, d0 in seed_map.items():
        if d0 <= bound and d0 < best.get(node, math.inf):
            best[node] = d0
            heappush(heap, (d0, node))
    while heap:
        d, u = heappop(heap)
        if u in dist or d > bound:
            continue
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in adj(u):
            nd = d + w
            if nd <= bound and nd < best.get(v, math.inf) and v not in dist:
                best[v] = nd
                heappush(heap, (nd, v))
    return dist


def shortest_paths_with_predecessors(
    adj: Adjacency,
    seeds: Mapping[int, float] | Iterable[int],
    *,
    bound: float = math.inf,
) -> DijkstraRun:
    """Like :func:`shortest_path_distances` but also records the SSSP tree."""
    run = DijkstraRun(distances={}, predecessors={})
    seed_map = _normalize_seeds(seeds)
    heap: list[tuple[float, int]] = []
    best: dict[int, float] = {}
    pred: dict[int, int] = {}
    for node, d0 in seed_map.items():
        if d0 <= bound and d0 < best.get(node, math.inf):
            best[node] = d0
            pred[node] = -1
            heappush(heap, (d0, node))
    dist = run.distances
    while heap:
        d, u = heappop(heap)
        if u in dist or d > bound:
            continue
        dist[u] = d
        run.predecessors[u] = pred[u]
        run.settled_order.append(u)
        for v, w in adj(u):
            nd = d + w
            if nd <= bound and nd < best.get(v, math.inf) and v not in dist:
                best[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
    return run


def distance_between(adj: Adjacency, source: int, target: int, *, bound: float = math.inf) -> float:
    """Shortest distance ``source -> target`` or ``inf`` if unreachable within ``bound``."""
    dist = shortest_path_distances(adj, [source], bound=bound, targets=[target])
    return dist.get(target, math.inf)


def reconstruct_path(run: DijkstraRun, target: int) -> list[int]:
    """Recover the node sequence from a seed to ``target``.

    Raises ``KeyError`` when ``target`` was not settled.
    """
    if target not in run.distances:
        raise KeyError(f"node {target} was not reached by the search")
    path = [target]
    node = target
    while run.predecessors[node] != -1:
        node = run.predecessors[node]
        path.append(node)
    path.reverse()
    return path
