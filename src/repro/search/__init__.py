"""Shortest-path substrate: heaps and Dijkstra variants.

Everything in the system that touches distances — NPD-index construction
(paper Alg. 1), keyword-coverage evaluation (paper Alg. 2), the
centralized baseline and the ground-truth oracles used in tests — runs on
the primitives in this subpackage.
"""

from repro.search.heap import IndexedBinaryHeap
from repro.search.dijkstra import (
    DijkstraRun,
    shortest_path_distances,
    shortest_paths_with_predecessors,
    distance_between,
    reconstruct_path,
)
from repro.search.virtual import seeded_distances, coverage_from_seeds
from repro.search.bidirectional import bidirectional_distance

__all__ = [
    "bidirectional_distance",
    "IndexedBinaryHeap",
    "DijkstraRun",
    "shortest_path_distances",
    "shortest_paths_with_predecessors",
    "distance_between",
    "reconstruct_path",
    "seeded_distances",
    "coverage_from_seeds",
]
