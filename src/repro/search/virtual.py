"""Virtual-source searches (paper §3.7 and Fig. 5).

The paper attaches a *virtual keyword node* ``W`` per keyword ``ω`` with
directed zero-weight edges to every node containing ``ω`` and runs
Dijkstra from ``W``.  The edges are directed so the search can never
travel *back* through ``W`` and collapse distances between two keyword
nodes to zero (the ``A -> V₂ -> B`` hazard in Fig. 5).

Seeding the priority queue with ``{v: 0.0}`` for the same node set is
mathematically identical and avoids graph surgery; these helpers express
that idiom.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.search.dijkstra import Adjacency, shortest_path_distances

__all__ = ["seeded_distances", "coverage_from_seeds"]


def seeded_distances(
    adj: Adjacency,
    zero_seeds: Iterable[int] = (),
    weighted_seeds: Mapping[int, float] | None = None,
    *,
    bound: float = math.inf,
) -> dict[int, float]:
    """Distances from a virtual source.

    ``zero_seeds`` model zero-weight virtual edges (local keyword nodes);
    ``weighted_seeds`` model weighted virtual edges (the DL entries of
    Alg. 2 step 3, whose weights are precomputed global distances).  When
    both mention a node the smaller seed wins.
    """
    seeds: dict[int, float] = {node: 0.0 for node in zero_seeds}
    if weighted_seeds:
        for node, d in weighted_seeds.items():
            if d < seeds.get(node, math.inf):
                seeds[node] = d
    return shortest_path_distances(adj, seeds, bound=bound)


def coverage_from_seeds(
    adj: Adjacency,
    zero_seeds: Iterable[int] = (),
    weighted_seeds: Mapping[int, float] | None = None,
    *,
    radius: float,
) -> set[int]:
    """The node set within ``radius`` of the virtual source.

    This is the *keyword coverage* ``R(ω, r)`` (paper Definition 4)
    restricted to whatever subgraph ``adj`` exposes.
    """
    return set(seeded_distances(adj, zero_seeds, weighted_seeds, bound=radius))
