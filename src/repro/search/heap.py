"""An indexed (addressable) binary min-heap with decrease-key.

The Dijkstra implementations in :mod:`repro.search.dijkstra` use the
standard-library ``heapq`` with lazy deletion, which is faster in
CPython for sparse graphs.  This class exists for the places that need a
*true* addressable priority queue — the FM refinement pass of the
multilevel partitioner moves items' priorities up *and* down — and as a
well-tested reference implementation.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

__all__ = ["IndexedBinaryHeap"]

K = TypeVar("K", bound=Hashable)


class IndexedBinaryHeap(Generic[K]):
    """Min-heap of ``(priority, key)`` supporting O(log n) priority updates.

    Keys are arbitrary hashable values; each key appears at most once.
    ``update`` accepts both decreases and increases.

    Example
    -------
    >>> h = IndexedBinaryHeap()
    >>> h.push("a", 3.0); h.push("b", 1.0); h.push("c", 2.0)
    >>> h.update("a", 0.5)
    >>> [h.pop()[0] for _ in range(len(h))]
    ['a', 'b', 'c']
    """

    def __init__(self) -> None:
        self._keys: list[K] = []
        self._priorities: list[float] = []
        self._index: dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[K]:
        """Iterate keys in storage (not priority) order."""
        return iter(list(self._keys))

    def priority(self, key: K) -> float:
        """Current priority of ``key``; raises ``KeyError`` if absent."""
        return self._priorities[self._index[key]]

    def push(self, key: K, priority: float) -> None:
        """Insert a new key; raises ``KeyError`` if it is already present."""
        if key in self._index:
            raise KeyError(f"key {key!r} is already in the heap")
        self._keys.append(key)
        self._priorities.append(priority)
        self._index[key] = len(self._keys) - 1
        self._sift_up(len(self._keys) - 1)

    def update(self, key: K, priority: float) -> None:
        """Change the priority of an existing key (any direction)."""
        i = self._index[key]
        old = self._priorities[i]
        self._priorities[i] = priority
        if priority < old:
            self._sift_up(i)
        elif priority > old:
            self._sift_down(i)

    def push_or_update(self, key: K, priority: float) -> None:
        """Insert ``key`` or update its priority if already present."""
        if key in self._index:
            self.update(key, priority)
        else:
            self.push(key, priority)

    def decrease(self, key: K, priority: float) -> bool:
        """Lower the priority of ``key`` if ``priority`` is smaller.

        Returns whether a change was made.  Missing keys are inserted.
        """
        if key not in self._index:
            self.push(key, priority)
            return True
        if priority < self._priorities[self._index[key]]:
            self.update(key, priority)
            return True
        return False

    def peek(self) -> tuple[K, float]:
        """The minimum ``(key, priority)`` without removing it."""
        if not self._keys:
            raise IndexError("peek from an empty heap")
        return self._keys[0], self._priorities[0]

    def pop(self) -> tuple[K, float]:
        """Remove and return the minimum ``(key, priority)``."""
        if not self._keys:
            raise IndexError("pop from an empty heap")
        key, priority = self._keys[0], self._priorities[0]
        self._remove_at(0)
        return key, priority

    def remove(self, key: K) -> float:
        """Remove ``key``, returning its priority."""
        i = self._index[key]
        priority = self._priorities[i]
        self._remove_at(i)
        return priority

    def clear(self) -> None:
        """Empty the heap."""
        self._keys.clear()
        self._priorities.clear()
        self._index.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remove_at(self, i: int) -> None:
        last = len(self._keys) - 1
        self._swap(i, last)
        removed = self._keys.pop()
        self._priorities.pop()
        del self._index[removed]
        if i <= last - 1 and self._keys:
            if i < len(self._keys):
                self._sift_down(i)
                self._sift_up(i)

    def _swap(self, i: int, j: int) -> None:
        if i == j:
            return
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._priorities[i], self._priorities[j] = self._priorities[j], self._priorities[i]
        self._index[self._keys[i]] = i
        self._index[self._keys[j]] = j

    def _sift_up(self, i: int) -> None:
        while i > 0:
            parent = (i - 1) >> 1
            if self._priorities[i] < self._priorities[parent]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        n = len(self._keys)
        while True:
            left = 2 * i + 1
            right = left + 1
            smallest = i
            if left < n and self._priorities[left] < self._priorities[smallest]:
                smallest = left
            if right < n and self._priorities[right] < self._priorities[smallest]:
                smallest = right
            if smallest == i:
                return
            self._swap(i, smallest)
            i = smallest
