"""Bidirectional Dijkstra for point-to-point distances.

The index builder and coverage evaluation are single-source searches,
but utilities (object attachment diagnostics, examples, oracles) often
need one ``d(s, t)``.  Bidirectional search meets in the middle,
exploring roughly two balls of half the radius instead of one full ball
— a substantial constant-factor win on road networks.

Termination uses the standard criterion: once the smallest keys of the
two frontiers sum past the best meeting distance found so far, no
shorter ``s -> t`` path can exist.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

from repro.graph.road_network import RoadNetwork

__all__ = ["bidirectional_distance"]


def bidirectional_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    bound: float = math.inf,
) -> float:
    """Exact ``d(source, target)`` or ``inf`` beyond ``bound``.

    Works on directed networks (the backward frontier follows in-edges).
    """
    if source == target:
        return 0.0

    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    best = math.inf

    def expand_forward() -> None:
        nonlocal best
        d, u = heappop(heap_f)
        if u in settled_f or d > dist_f.get(u, math.inf):
            return
        settled_f.add(u)
        nbrs, wts, lo, hi = network.neighbor_slice(u)
        for i in range(lo, hi):
            v = nbrs[i]
            nd = d + wts[i]
            if nd <= bound and nd < dist_f.get(v, math.inf):
                dist_f[v] = nd
                heappush(heap_f, (nd, v))
            meet = dist_f.get(v, math.inf) if v in dist_f else math.inf
            other = dist_b.get(v)
            if other is not None and meet + other < best:
                best = meet + other

    def expand_backward() -> None:
        nonlocal best
        d, u = heappop(heap_b)
        if u in settled_b or d > dist_b.get(u, math.inf):
            return
        settled_b.add(u)
        nbrs, wts, lo, hi = network.in_neighbor_slice(u)
        for i in range(lo, hi):
            v = nbrs[i]
            nd = d + wts[i]
            if nd <= bound and nd < dist_b.get(v, math.inf):
                dist_b[v] = nd
                heappush(heap_b, (nd, v))
            meet = dist_b.get(v, math.inf) if v in dist_b else math.inf
            other = dist_f.get(v)
            if other is not None and meet + other < best:
                best = meet + other

    while heap_f and heap_b:
        top_f = heap_f[0][0]
        top_b = heap_b[0][0]
        if top_f + top_b >= best:
            break
        if top_f <= top_b:
            expand_forward()
        else:
            expand_backward()

    return best if best <= bound else math.inf
