"""Keyword-coverage evaluation on one fragment (paper Alg. 2, §4.2).

:class:`FragmentRuntime` is the query-time state a worker machine keeps
for its fragment: the *extended fragment* adjacency (``P ∪ SC(P)``,
Alg. 2 step 1 — built once and reused across queries) plus the DL lookup
side of the index.  :func:`local_coverage` then evaluates one coverage
term ``R(source, r) ∩ P``:

1. **Search from index** (step 2) — DL entry pairs with distance ≤ r
   become weighted virtual-source seeds;
2. **Extend** (step 3) — fragment-local source nodes become zero-weight
   seeds (the directed virtual edges of Fig. 5);
3. a bounded Dijkstra over the extended fragment settles exactly the
   member nodes within ``r`` of the source (Theorem 3 guarantees the
   distances are globally exact).

Two interchangeable evaluators produce the step-3 search:

* the **compiled** path (default) hands the term to a packed
  :class:`~repro.core.kernel.FragmentKernel` — dense node ids, CSR
  adjacency, precompiled seed arrays, generation-stamped scratch;
* the **reference** path (``compiled=False``) runs the dict-based
  :func:`~repro.search.dijkstra.shortest_path_distances`, kept as the
  executable spec the differential tests pin the kernel against.

Both return bit-identical distance maps; see ``tests/test_kernel.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple, Sequence

from repro.core.fragment import Fragment
from repro.core.kernel import FragmentKernel
from repro.core.npd import NPDIndex
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource
from repro.exceptions import QueryError
from repro.search.dijkstra import shortest_path_distances

__all__ = [
    "CacheStats",
    "FragmentRuntime",
    "batch_distance_maps",
    "local_coverage",
    "local_distance_map",
]


@dataclass
class CoverageStats:
    """Work counters for one coverage evaluation (Theorem 5 bookkeeping)."""

    seeds_from_dl: int = 0
    seeds_local: int = 0
    settled_nodes: int = 0


class CacheStats(NamedTuple):
    """Coverage-cache counters: ``(hits, misses, skipped)``.

    ``skipped`` counts distance maps *not* cached because they exceeded
    the runtime's ``cache_max_entry_nodes`` guard.
    """

    hits: int
    misses: int
    skipped: int


class FragmentRuntime:
    """Query-time view of one fragment: ``P ∪ SC(P)`` plus DL lookups.

    ``compiled`` (default on) routes coverage evaluation through a
    packed :class:`~repro.core.kernel.FragmentKernel`; pass ``False``
    to force the dict-based reference path.  Either way the kernel is
    available lazily via :attr:`kernel` — benchmarks compare both
    evaluators on one runtime.

    ``cache_capacity`` enables an LRU cache of coverage distance maps
    keyed by ``(source, radius)`` — query workloads repeat popular
    keywords at common radiuses, so hits skip the whole local Dijkstra.
    ``cache_max_entry_nodes`` bounds how large a map may be and still be
    cached: popular wide-radius terms can settle most of the fragment,
    and a handful of such maps would dominate worker memory for little
    hit-rate gain.  Skips are counted in :attr:`cache_stats`.

    Staleness: in-place index mutations (every
    :class:`repro.core.maintenance.KeywordMaintainer` operation) bump
    :attr:`NPDIndex.version`; the runtime records the version its kernel
    and coverage cache were built against and transparently rebuilds
    both when it moves, so a runtime never serves pre-mutation packed
    seed lists.  Mutations that *replace* objects — a refreshed
    :class:`Fragment` or a rebuilt index — are pushed in with
    :meth:`refresh` (the maintainer does this for bound runtimes, and
    the cluster ``apply_updates`` paths do it on epoch swaps).
    """

    def __init__(
        self,
        fragment: Fragment,
        index: NPDIndex,
        *,
        cache_capacity: int = 0,
        cache_max_entry_nodes: int | None = None,
        compiled: bool = True,
    ) -> None:
        if fragment.fragment_id != index.fragment_id:
            raise QueryError(
                f"fragment {fragment.fragment_id} paired with index for "
                f"fragment {index.fragment_id}"
            )
        self._fragment = fragment
        self._index = index
        self._compiled = bool(compiled)
        self._kernel: FragmentKernel | None = None
        self._index_version = index.version
        self._cache_capacity = max(0, cache_capacity)
        self._cache_max_entry_nodes = cache_max_entry_nodes
        self._cache: "dict[tuple[object, float], dict[int, float]]" = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_skipped = 0
        self._build_extended()
        if self._compiled:
            self._kernel = FragmentKernel(fragment, index)

    def _build_extended(self) -> None:
        # Alg. 2 step 1: read the edges of the complete fragment P ∪ SC(P).
        extended: dict[int, list[tuple[int, float]]] = {
            node: list(edges) for node, edges in self._fragment.adjacency.items()
        }
        for (u, v), w in self._index.shortcuts.items():
            extended.setdefault(u, []).append((v, w))
            if not self._fragment.directed:
                extended.setdefault(v, []).append((u, w))
        self._extended: dict[int, tuple[tuple[int, float], ...]] = {
            node: tuple(edges) for node, edges in extended.items()
        }

    @property
    def fragment(self) -> Fragment:
        """The underlying fragment ``P``."""
        return self._fragment

    @property
    def index(self) -> NPDIndex:
        """The fragment's NPD-index ``IND(P)``."""
        return self._index

    @property
    def max_radius(self) -> float:
        """The ``maxR`` this runtime can serve."""
        return self._index.max_radius

    @property
    def compiled(self) -> bool:
        """Whether coverage evaluation routes through the packed kernel."""
        return self._compiled

    @property
    def kernel(self) -> FragmentKernel:
        """The packed kernel (built lazily; rebuilt after index mutation)."""
        self._sync_with_index()
        if self._kernel is None:
            self._kernel = FragmentKernel(self._fragment, self._index)
        return self._kernel

    def _sync_with_index(self) -> None:
        """Drop the kernel and cache if the index mutated underneath us."""
        if self._index.version != self._index_version:
            self._index_version = self._index.version
            self._kernel = None
            self._cache.clear()

    def refresh(self, fragment: Fragment | None = None, index: NPDIndex | None = None) -> None:
        """Swap in replacement state and invalidate derived structures.

        Called by :class:`repro.core.maintenance.KeywordMaintainer` for
        bound runtimes (fragment keyword-index refreshes, fragment
        rebuilds) and by the cluster ``apply_updates`` paths on epoch
        swaps.  No-ops when nothing actually changed.
        """
        changed = False
        if fragment is not None and fragment is not self._fragment:
            if fragment.fragment_id != self._fragment.fragment_id:
                raise QueryError(
                    f"cannot refresh runtime for fragment "
                    f"{self._fragment.fragment_id} with fragment {fragment.fragment_id}"
                )
            self._fragment = fragment
            changed = True
        if index is not None and index is not self._index:
            if index.fragment_id != self._index.fragment_id:
                raise QueryError(
                    f"cannot refresh runtime for fragment "
                    f"{self._index.fragment_id} with index {index.fragment_id}"
                )
            self._index = index
            changed = True
        if changed:
            self._index_version = self._index.version
            self._kernel = None
            self._cache.clear()
            self._build_extended()
        else:
            self._sync_with_index()

    def adjacency(self, node: int) -> tuple[tuple[int, float], ...]:
        """Out-edges of ``node`` in the complete fragment ``P ∪ SC(P)``."""
        return self._extended.get(node, ())

    # ------------------------------------------------------------------
    # Coverage cache
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """``(hits, misses, skipped)`` of the coverage cache."""
        return CacheStats(self._cache_hits, self._cache_misses, self._cache_skipped)

    def invalidate_cache(self) -> None:
        """Drop every cached coverage (call after index maintenance)."""
        self._cache.clear()

    def _cache_key(self, term: CoverageTerm) -> tuple[object, float]:
        source = term.source
        if isinstance(source, KeywordSource):
            return ("kw", source.keyword), term.radius
        assert isinstance(source, NodeSource)
        return ("node", source.node), term.radius

    def cached_distance_map(self, term: CoverageTerm) -> dict[int, float] | None:
        """A cached distance map for ``term``, refreshing its LRU slot."""
        self._sync_with_index()
        if not self._cache_capacity:
            return None
        key = self._cache_key(term)
        cached = self._cache.pop(key, None)
        if cached is None:
            self._cache_misses += 1
            return None
        self._cache[key] = cached  # reinsert: most recently used
        self._cache_hits += 1
        return cached

    def store_distance_map(self, term: CoverageTerm, distances: dict[int, float]) -> None:
        """Cache a computed distance map, evicting the LRU entry if full.

        Maps larger than ``cache_max_entry_nodes`` are not cached — they
        are the fragment-sized outliers that would evict many small hot
        entries at once; the skip is tallied in :attr:`cache_stats`.
        """
        if not self._cache_capacity:
            return
        if (
            self._cache_max_entry_nodes is not None
            and len(distances) > self._cache_max_entry_nodes
        ):
            self._cache_skipped += 1
            return
        key = self._cache_key(term)
        self._cache.pop(key, None)
        while len(self._cache) >= self._cache_capacity:
            oldest = next(iter(self._cache))
            del self._cache[oldest]
        self._cache[key] = distances

    def seeds_for(self, term: CoverageTerm) -> dict[int, float]:
        """Virtual-source seeds for one coverage term (Alg. 2 steps 2–3).

        Keys are member nodes of ``P``; values are exact global distances
        from the term's source.  Zero-weight local seeds and weighted DL
        portal seeds are merged, the smaller distance winning.
        """
        source = term.source
        seeds: dict[int, float] = {}
        if isinstance(source, KeywordSource):
            for node in self._fragment.keyword_index.local_nodes_with(source.keyword):
                seeds[node] = 0.0
            for portal, dist in self._index.keyword_seeds(source.keyword, term.radius).items():
                if dist < seeds.get(portal, math.inf):
                    seeds[portal] = dist
        elif isinstance(source, NodeSource):
            if source.node in self._fragment.members:
                seeds[source.node] = 0.0
            else:
                seeds.update(self._index.node_seeds(source.node, term.radius))
        else:  # pragma: no cover - the Source union is closed
            raise QueryError(f"unsupported coverage source {source!r}")
        return seeds


def local_distance_map(
    runtime: FragmentRuntime,
    term: CoverageTerm,
    stats: CoverageStats | None = None,
) -> dict[int, float]:
    """Exact distances from the term's source to members within the radius.

    The returned map is ``{A ∈ P : d(A, source) ≤ r} -> d(A, source)``.
    """
    if term.radius > runtime.max_radius:
        from repro.exceptions import RadiusExceededError

        raise RadiusExceededError(term.radius, runtime.max_radius)
    cached = runtime.cached_distance_map(term)
    if cached is not None:
        if stats is not None:
            stats.settled_nodes += len(cached)
        return cached
    if runtime.compiled:
        distances = runtime.kernel.distance_map(term, stats)
        runtime.store_distance_map(term, distances)
        return distances
    seeds = runtime.seeds_for(term)
    if stats is not None:
        stats.seeds_from_dl += sum(1 for d in seeds.values() if d > 0.0)
        stats.seeds_local += sum(1 for d in seeds.values() if d == 0.0)
    if not seeds:
        runtime.store_distance_map(term, {})
        return {}
    distances = shortest_path_distances(runtime.adjacency, seeds, bound=term.radius)
    if stats is not None:
        stats.settled_nodes += len(distances)
    # Shortcut endpoints are always members, so every settled node is a
    # member of P already; assert-by-construction in tests.
    runtime.store_distance_map(term, distances)
    return distances


def _describe_source(term: CoverageTerm) -> str:
    source = term.source
    if isinstance(source, KeywordSource):
        return source.keyword
    assert isinstance(source, NodeSource)
    return f"#{source.node}"


def batch_distance_maps(
    runtime: FragmentRuntime,
    terms: Sequence[CoverageTerm],
    stats: CoverageStats | None = None,
    *,
    collector=None,
    parent_id: str | None = None,
) -> list[dict[int, float]]:
    """Distance maps for every term of one query, in term order.

    The batched path is how executors evaluate a k-term D-function: all
    terms run on the *same* kernel instance (one set of scratch arrays,
    one generation bump per term, precompiled seed tables shared), and
    duplicate ``(source, radius)`` terms inside the query are evaluated
    once — common in machine-written expressions such as
    ``AND(cafe:2, OR(cafe:2, fuel:3))``.

    ``collector`` (a :class:`repro.obs.trace.SpanCollector`, duck-typed
    so this module stays obs-agnostic) records one ``eval`` span per
    *evaluated* term — memoised duplicates cost nothing and get no span
    — annotated with the term's source/radius, the settled-node count
    and whether the coverage cache answered
    (``cache=hit|miss|skip|off``).
    """
    memo: dict[tuple[object, float], dict[int, float]] = {}
    maps: list[dict[int, float]] = []
    for i, term in enumerate(terms):
        key = runtime._cache_key(term)
        hit = memo.get(key)
        if hit is None:
            if collector is not None:
                before = runtime.cache_stats
                with collector.span(
                    "eval",
                    parent_id=parent_id,
                    fragment_id=runtime.fragment.fragment_id,
                    term=i,
                    source=_describe_source(term),
                    radius=term.radius,
                ) as span:
                    hit = local_distance_map(runtime, term, stats)
                after = runtime.cache_stats
                if after.hits > before.hits:
                    span.tags["cache"] = "hit"
                elif after.skipped > before.skipped:
                    span.tags["cache"] = "skip"
                elif after.misses > before.misses:
                    span.tags["cache"] = "miss"
                else:  # caching disabled: no counter moved
                    span.tags["cache"] = "off"
                span.tags["settled"] = len(hit)
            else:
                hit = local_distance_map(runtime, term, stats)
            memo[key] = hit
        maps.append(hit)
    return maps


def local_coverage(
    runtime: FragmentRuntime,
    term: CoverageTerm,
    stats: CoverageStats | None = None,
) -> set[int]:
    """The fragment-local keyword coverage ``R(source, r) ∩ P``."""
    return set(local_distance_map(runtime, term, stats))
