"""Top-k nearest keyword queries on the NPD-index (a §8 future-work item).

The paper closes with "it remains open whether other types of queries
can benefit from NPD-index."  Top-k *does*: because Theorem 3 makes
every fragment-local distance globally exact, a fragment can rank its
own members by distance from the source and return only its best ``k``;
the coordinator merges ``N`` sorted lists and keeps the global ``k``.
Still one round, still zero worker-to-worker communication.

Exactness caveat (inherited from ``maxR`` truncation): candidates
farther than the index ``maxR`` are invisible, so the result is the
top-k *within* ``maxR``.  ``TopKResult.saturated`` reports whether the
full ``k`` was reached; an unsaturated result on a bounded index may be
missing farther matches (route to a bi-level deployment for those).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from repro.core.coverage import FragmentRuntime, local_distance_map
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, Source
from repro.exceptions import QueryError

__all__ = ["TopKQuery", "TopKTaskResult", "TopKResult", "execute_topk_task", "merge_topk"]


@dataclass(frozen=True)
class TopKQuery:
    """Find the ``k`` nodes nearest to ``source`` (by network distance).

    ``radius`` bounds the search; it must not exceed the index ``maxR``.
    With a :class:`KeywordSource` this is "the k closest places to any
    supermarket"; with a :class:`NodeSource` it is classic kNN from a
    location.
    """

    source: Source
    k: int
    radius: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("top-k queries need k >= 1")
        if self.radius < 0:
            raise QueryError("top-k radius must be non-negative")

    @property
    def term(self) -> CoverageTerm:
        """The coverage term whose distance map ranks candidates."""
        return CoverageTerm(self.source, self.radius)


@dataclass(frozen=True)
class TopKTaskResult:
    """One fragment's candidate list: its local top-k, sorted."""

    fragment_id: int
    candidates: tuple[tuple[int, float], ...]  # (node, distance), ascending
    wall_seconds: float


@dataclass(frozen=True)
class TopKResult:
    """The merged global answer."""

    ranking: tuple[tuple[int, float], ...]
    saturated: bool  # True iff the full k was found within the radius

    def nodes(self) -> list[int]:
        """Just the node ids, nearest first."""
        return [node for node, _d in self.ranking]


def execute_topk_task(runtime: FragmentRuntime, query: TopKQuery) -> TopKTaskResult:
    """Run the top-k task on one fragment (exact by Theorem 3)."""
    started = time.perf_counter()
    distances = local_distance_map(runtime, query.term)
    best = heapq.nsmallest(query.k, distances.items(), key=lambda kv: (kv[1], kv[0]))
    return TopKTaskResult(
        fragment_id=runtime.fragment.fragment_id,
        candidates=tuple(best),
        wall_seconds=time.perf_counter() - started,
    )


def merge_topk(query: TopKQuery, results: list[TopKTaskResult]) -> TopKResult:
    """Coordinator-side merge of the per-fragment candidate lists."""
    merged = heapq.merge(
        *(result.candidates for result in results), key=lambda kv: (kv[1], kv[0])
    )
    ranking = []
    for node, dist in merged:
        ranking.append((node, dist))
        if len(ranking) == query.k:
            break
    return TopKResult(ranking=tuple(ranking), saturated=len(ranking) == query.k)
