"""Deployment inspection: a structured snapshot of a built engine.

Operators need one view answering "what did the build produce?" —
partition quality (edge cut, balance, portals), per-machine index sizes
(the EXP-1 storage measure), construction cost, and the Theorem-5
parameters (α/β magnitudes) that predict query cost.  ``render()``
produces the text form the CLI prints after ``repro build``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

from repro.core.engine import DisksEngine
from repro.partition.metrics import PartitionQuality, evaluate_partition
from repro.storage.index_files import index_file_size

__all__ = ["FragmentReport", "DeploymentReport", "deployment_report"]


@dataclass(frozen=True)
class FragmentReport:
    """Per-fragment snapshot."""

    fragment_id: int
    num_members: int
    num_portals: int
    num_shortcuts: int
    keyword_entries: int
    keyword_pairs: int
    node_entries: int
    index_bytes: int
    build_seconds: float


@dataclass(frozen=True)
class DeploymentReport:
    """Whole-deployment snapshot."""

    num_nodes: int
    num_objects: int
    num_fragments: int
    max_radius: float
    partition_quality: PartitionQuality
    fragments: tuple[FragmentReport, ...]
    total_index_bytes: int
    mean_index_bytes: float
    total_build_seconds: float

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"Deployment: {self.num_fragments} fragments over "
            f"{self.num_nodes:,} nodes ({self.num_objects:,} objects)",
            f"  maxR: {'∞' if math.isinf(self.max_radius) else f'{self.max_radius:.2f}'}",
            f"  partition: {self.partition_quality.summary()}",
            f"  index: {self.total_index_bytes / 1024:.1f} KiB total, "
            f"{self.mean_index_bytes / 1024:.1f} KiB/machine, built in "
            f"{self.total_build_seconds:.2f}s",
            "  per fragment (id: members/portals, SC, DL kw entries, size):",
        ]
        for fr in self.fragments:
            lines.append(
                f"    P{fr.fragment_id}: {fr.num_members}/{fr.num_portals}, "
                f"SC={fr.num_shortcuts}, DLkw={fr.keyword_entries} "
                f"({fr.keyword_pairs} pairs), {fr.index_bytes / 1024:.1f} KiB"
            )
        return "\n".join(lines)


def deployment_report(engine: DisksEngine) -> DeploymentReport:
    """Snapshot ``engine``'s deployment (bounded index level)."""
    quality = evaluate_partition(engine.network, engine.partition)
    build_seconds = {s.fragment_id: s.wall_seconds for s in engine.build_stats}
    fragments = []
    for fragment, index in zip(engine.fragments, engine.indexes):
        sizes = index.size_summary()
        fragments.append(
            FragmentReport(
                fragment_id=fragment.fragment_id,
                num_members=fragment.num_members,
                num_portals=fragment.num_portals,
                num_shortcuts=sizes["shortcuts"],
                keyword_entries=sizes["keyword_entries"],
                keyword_pairs=sizes["keyword_pairs"],
                node_entries=sizes["node_entries"],
                index_bytes=index_file_size(index),
                build_seconds=build_seconds.get(fragment.fragment_id, 0.0),
            )
        )
    total_bytes = sum(fr.index_bytes for fr in fragments)
    return DeploymentReport(
        num_nodes=engine.network.num_nodes,
        num_objects=engine.network.num_objects(),
        num_fragments=len(fragments),
        max_radius=engine.max_radius,
        partition_quality=quality,
        fragments=tuple(fragments),
        total_index_bytes=total_bytes,
        mean_index_bytes=total_bytes / len(fragments) if fragments else 0.0,
        total_build_seconds=sum(fr.build_seconds for fr in fragments),
    )
