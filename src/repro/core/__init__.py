"""The paper's primary contribution: the NPD-index and distributed querying.

Public entry points:

* :class:`DisksEngine` — partition a road network, build per-fragment
  NPD-indexes and answer SGKQ / RKQ / Q-class queries distributedly.
* :func:`sgkq`, :func:`rkq`, :class:`QClassQuery` — query constructors.
* :class:`NPDIndex`, :func:`build_npd_index` — the index itself, usable
  stand-alone.
"""

from repro.core.fragment import Fragment, build_fragments
from repro.core.npd import NPDIndex, DLNodePolicy, PortalDistance
from repro.core.builder import NPDBuildConfig, build_npd_index, build_all_indexes
from repro.core.dfunction import SetOp, DFunction
from repro.core.queries import (
    CoverageTerm,
    KeywordSource,
    NodeSource,
    QClassQuery,
    sgkq,
    sgkq_extended,
    rkq,
)
from repro.core.coverage import FragmentRuntime, local_coverage
from repro.core.executor import FragmentTaskResult, execute_fragment_task
from repro.core.planner import QueryPlan, plan_query
from repro.core.engine import BatchReport, DisksEngine, EngineConfig, QueryReport
from repro.core.bilevel import BiLevelIndex
from repro.core.cost import theorem5_cost, unbalance_factor, makespan
from repro.core.topk import TopKQuery, TopKResult, execute_topk_task, merge_topk
from repro.core.maintenance import KeywordMaintainer, node_dl_contributions
from repro.core.language import QueryParseError, parse_query
from repro.core.report import DeploymentReport, FragmentReport, deployment_report
from repro.core.validate import validate_index

__all__ = [
    "Fragment",
    "build_fragments",
    "NPDIndex",
    "DLNodePolicy",
    "PortalDistance",
    "NPDBuildConfig",
    "build_npd_index",
    "build_all_indexes",
    "SetOp",
    "DFunction",
    "CoverageTerm",
    "KeywordSource",
    "NodeSource",
    "QClassQuery",
    "sgkq",
    "sgkq_extended",
    "rkq",
    "FragmentRuntime",
    "local_coverage",
    "FragmentTaskResult",
    "execute_fragment_task",
    "QueryPlan",
    "plan_query",
    "DisksEngine",
    "EngineConfig",
    "QueryReport",
    "BatchReport",
    "TopKQuery",
    "TopKResult",
    "execute_topk_task",
    "merge_topk",
    "KeywordMaintainer",
    "node_dl_contributions",
    "parse_query",
    "QueryParseError",
    "DeploymentReport",
    "FragmentReport",
    "deployment_report",
    "validate_index",
    "BiLevelIndex",
    "theorem5_cost",
    "unbalance_factor",
    "makespan",
]
