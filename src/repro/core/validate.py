"""Integrity validation of an NPD-index against its fragment.

Index files live on disk and outlive code versions; a worker that loads
a stale or foreign ``IND(P)`` must be able to notice before serving
wrong answers.  :func:`validate_index` checks the structural rules that
hold for every correctly built index:

* identity: fragment ids, directedness, ``maxR`` bounds on every
  recorded distance;
* Rule 1 structure: shortcut endpoints are members (and, beyond single
  edges, portals), weights beat any coexisting original edge;
* Rule 2 structure: DL values reference portals of this fragment,
  sorted by distance; node entries respect the declared policy;
* optional *spot checks*: a sample of recorded distances is re-derived
  from the network with bounded searches and compared exactly.

Structural checks need only the worker's own state (fragment + index);
spot checks need the global network, so they run at build/admin time.
"""

from __future__ import annotations

import math
import random

from repro.core.fragment import Fragment
from repro.core.npd import DLNodePolicy, NPDIndex
from repro.exceptions import IndexBuildError
from repro.graph.road_network import RoadNetwork
from repro.search.dijkstra import shortest_path_distances

__all__ = ["validate_index"]


def _fail(message: str) -> None:
    raise IndexBuildError(f"index validation failed: {message}")


def _validate_structure(fragment: Fragment, index: NPDIndex) -> None:
    if fragment.fragment_id != index.fragment_id:
        _fail(
            f"index is for fragment {index.fragment_id}, "
            f"paired with fragment {fragment.fragment_id}"
        )
    if fragment.directed != index.directed:
        _fail("fragment and index disagree on directedness")

    max_radius = index.max_radius
    for (u, v), w in index.shortcuts.items():
        if u not in fragment.members or v not in fragment.members:
            _fail(f"shortcut {(u, v)} leaves the fragment")
        if u == v:
            _fail(f"self-loop shortcut on node {u}")
        if not (0.0 < w <= max_radius):
            _fail(f"shortcut {(u, v)} weight {w} violates (0, maxR]")
        if u not in fragment.portals or v not in fragment.portals:
            _fail(f"shortcut {(u, v)} endpoint is not a portal")

    for family, entries in (
        ("keyword", index.keyword_entries.items()),
        ("node", index.node_entries.items()),
    ):
        for key, pairs in entries:
            distances = [pd.distance for pd in pairs]
            if distances != sorted(distances):
                _fail(f"{family} entry {key!r} is not distance-sorted")
            for pd in pairs:
                if pd.portal not in fragment.portals:
                    _fail(
                        f"{family} entry {key!r} references non-portal {pd.portal}"
                    )
                if not (0.0 <= pd.distance <= max_radius):
                    _fail(
                        f"{family} entry {key!r} distance {pd.distance} "
                        "violates [0, maxR]"
                    )

    if index.node_policy is DLNodePolicy.NONE and index.node_entries:
        _fail("node entries present despite DLNodePolicy.NONE")
    for node in index.node_entries:
        if node in fragment.members:
            _fail(f"node entry {node} is a member of its own fragment")


def _validate_spot_checks(
    network: RoadNetwork,
    fragment: Fragment,
    index: NPDIndex,
    samples: int,
    rng: random.Random,
) -> None:
    adjacency = network.in_neighbors if network.directed else network.neighbors

    shortcut_items = list(index.shortcuts.items())
    rng.shuffle(shortcut_items)
    for (u, v), w in shortcut_items[:samples]:
        # Recorded weight must equal the true forward u -> v distance.
        dist = shortest_path_distances(adjacency, [v], bound=w * (1 + 1e-9))
        true = dist.get(u, math.inf)
        if not math.isclose(true, w, rel_tol=1e-9, abs_tol=1e-9):
            _fail(f"shortcut {(u, v)} records {w}, network says {true}")

    node_items = list(index.node_entries.items())
    rng.shuffle(node_items)
    for node, pairs in node_items[:samples]:
        if not pairs:
            continue
        pd = pairs[0]
        dist = shortest_path_distances(
            adjacency, [pd.portal], bound=pd.distance * (1 + 1e-9)
        )
        true = dist.get(node, math.inf)
        if not math.isclose(true, pd.distance, rel_tol=1e-9, abs_tol=1e-9):
            _fail(
                f"node entry {node} -> portal {pd.portal} records "
                f"{pd.distance}, network says {true}"
            )


def validate_index(
    fragment: Fragment,
    index: NPDIndex,
    *,
    network: RoadNetwork | None = None,
    spot_check_samples: int = 8,
    seed: int = 0,
) -> None:
    """Validate ``index`` against ``fragment`` (and optionally the network).

    Raises :class:`IndexBuildError` on the first violation; returns
    ``None`` when everything checks out.  Pass ``network`` to enable the
    distance spot checks.
    """
    _validate_structure(fragment, index)
    if network is not None and spot_check_samples > 0:
        _validate_spot_checks(
            network, fragment, index, spot_check_samples, random.Random(seed)
        )
