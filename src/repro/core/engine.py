"""DiSKS engine: the end-to-end facade over the whole system.

``DisksEngine.build`` takes a road network and produces a queryable
deployment: partition → fragments → per-fragment NPD-indexes →
simulated coordinator/worker cluster.  ``DisksEngine.execute`` plans a
query, routes it to an index level and returns the answer with full
accounting (per-machine times, makespan, unbalance factor, bytes).

This is the class the examples and benchmarks drive; every piece is
also usable stand-alone.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.bilevel import BiLevelIndex
from repro.core.builder import BuildStats, NPDBuildConfig, build_all_indexes
from repro.core.cost import theorem6_bound, unbalance_factor
from repro.core.fragment import Fragment, build_fragments
from repro.core.npd import DLNodePolicy, NPDIndex
from repro.core.planner import plan_query
from repro.core.queries import KeywordSource, QClassQuery
from repro.core.topk import TopKQuery, TopKResult, execute_topk_task, merge_topk
from repro.dist.cluster import SimulatedCluster
from repro.dist.network import NetworkModel
from repro.exceptions import DisksError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition, Partitioner
from repro.partition.multilevel import MultilevelPartitioner

__all__ = ["EngineConfig", "QueryReport", "DisksEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Deployment parameters (paper Table 2 defaults).

    Attributes
    ----------
    num_fragments:
        ``N``; the paper's default is 16.
    lambda_factor / max_radius:
        ``maxR`` as ``λ·ē`` (default λ=40) or absolute; ``lambda_factor``
        wins when both are set, matching :class:`NPDBuildConfig`.
    node_policy:
        DL node-entry policy (§3.7 pruning; default: objects).
    num_machines:
        Worker count; default one machine per fragment.
    build_unbounded_level:
        Also build the §5.5 unbounded second level.
    partitioner:
        Defaults to the multilevel (ParMETIS-style) partitioner.
    network_model:
        Interconnect cost model for communication accounting.
    strict_keywords:
        Unknown query keywords raise instead of yielding empty coverages.
    coverage_cache_capacity:
        Per-fragment LRU size for coverage distance maps (0 disables).
    coverage_cache_max_entry_nodes:
        Skip caching distance maps larger than this many nodes (None
        caches everything); skips show up in the cache stats.
    compiled:
        Evaluate coverage through the packed per-fragment kernel
        (:mod:`repro.core.kernel`).  Defaults on; ``False`` selects the
        dict-based reference path the kernel is differentially tested
        against.
    """

    num_fragments: int = 16
    lambda_factor: float | None = 40.0
    max_radius: float | None = None
    node_policy: DLNodePolicy = DLNodePolicy.OBJECTS
    num_machines: int | None = None
    build_unbounded_level: bool = False
    partitioner: Partitioner | None = None
    network_model: NetworkModel | None = None
    strict_keywords: bool = True
    coverage_cache_capacity: int = 0
    coverage_cache_max_entry_nodes: int | None = None
    compiled: bool = True

    def build_config(self) -> NPDBuildConfig:
        """The index-construction slice of this config."""
        return NPDBuildConfig(
            max_radius=self.max_radius,
            lambda_factor=self.lambda_factor,
            node_policy=self.node_policy,
        )


@dataclass(frozen=True)
class QueryReport:
    """The answer to one query plus the §5.1/§5.2 accounting.

    ``response_seconds`` is the distributed response time (machine
    makespan + modelled communication); ``total_task_seconds`` is the
    aggregate CPU work, i.e. what a serial execution would take.
    """

    query_label: str
    result_nodes: frozenset[int]
    response_seconds: float
    communication_seconds: float
    total_task_seconds: float
    machine_seconds: dict[int, float]
    fragment_seconds: dict[int, float]
    coverage_sizes: dict[int, tuple[int, ...]]
    total_message_bytes: int
    used_unbounded_level: bool
    unbalance: float
    unbalance_bound: float

    @property
    def num_results(self) -> int:
        """Result-set cardinality."""
        return len(self.result_nodes)

    @property
    def speedup_over_serial(self) -> float:
        """How much faster the distributed response is than serial work."""
        if self.response_seconds <= 0:
            return 1.0
        return self.total_task_seconds / self.response_seconds


@dataclass(frozen=True)
class BatchReport:
    """Aggregate accounting of one query batch (throughput view)."""

    reports: tuple[QueryReport, ...]
    total_response_seconds: float
    mean_response_seconds: float
    queries_per_second: float
    total_message_bytes: int


class DisksEngine:
    """A built deployment: partitioned network + NPD-indexes + cluster."""

    def __init__(
        self,
        network: RoadNetwork,
        partition: Partition,
        fragments: list[Fragment],
        bilevel: BiLevelIndex,
        build_stats: list[BuildStats],
        config: EngineConfig,
    ) -> None:
        self._network = network
        self._partition = partition
        self._fragments = fragments
        self._bilevel = bilevel
        self._build_stats = build_stats
        self._config = config
        self._bounded_cluster = SimulatedCluster.from_fragments(
            fragments,
            list(bilevel.bounded),
            num_machines=config.num_machines,
            network=config.network_model,
            cache_capacity=config.coverage_cache_capacity,
            cache_max_entry_nodes=config.coverage_cache_max_entry_nodes,
            compiled=config.compiled,
        )
        self._unbounded_cluster = (
            SimulatedCluster.from_fragments(
                fragments,
                list(bilevel.unbounded),
                num_machines=config.num_machines,
                network=config.network_model,
                cache_capacity=config.coverage_cache_capacity,
                cache_max_entry_nodes=config.coverage_cache_max_entry_nodes,
                compiled=config.compiled,
            )
            if bilevel.unbounded is not None
            else None
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, network: RoadNetwork, config: EngineConfig | None = None) -> "DisksEngine":
        """Partition ``network`` and build a complete deployment."""
        config = config or EngineConfig()
        if network.num_nodes == 0:
            raise DisksError("cannot build an engine over an empty network")
        partitioner = config.partitioner or MultilevelPartitioner(seed=0)
        partition = partitioner.partition(network, config.num_fragments)
        fragments = build_fragments(network, partition)
        indexes, stats = build_all_indexes(network, fragments, config.build_config())

        unbounded: tuple[NPDIndex, ...] | None = None
        if config.build_unbounded_level:
            unbounded_config = NPDBuildConfig(
                max_radius=math.inf,
                lambda_factor=None,
                node_policy=config.node_policy,
            )
            unbounded_indexes, unbounded_stats = build_all_indexes(
                network, fragments, unbounded_config
            )
            unbounded = tuple(unbounded_indexes)
            stats = stats + unbounded_stats

        bilevel = BiLevelIndex(bounded=tuple(indexes), unbounded=unbounded)
        return cls(network, partition, fragments, bilevel, stats, config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The underlying road network (coordinator-side metadata)."""
        return self._network

    @property
    def partition(self) -> Partition:
        """The fragmentation in use."""
        return self._partition

    @property
    def fragments(self) -> list[Fragment]:
        """All fragments, by id."""
        return self._fragments

    @property
    def indexes(self) -> tuple[NPDIndex, ...]:
        """The bounded-level NPD-indexes, by fragment id."""
        return self._bilevel.bounded

    @property
    def bilevel(self) -> BiLevelIndex:
        """Both index levels."""
        return self._bilevel

    @property
    def build_stats(self) -> list[BuildStats]:
        """Per-fragment construction statistics (both levels)."""
        return self._build_stats

    @property
    def max_radius(self) -> float:
        """The bounded level's ``maxR``."""
        return self._bilevel.max_radius

    @property
    def cluster(self) -> SimulatedCluster:
        """The bounded-level cluster (for ledger inspection in tests)."""
        return self._bounded_cluster

    def index_size_report(self) -> list[dict[str, int]]:
        """Per-fragment size breakdowns (EXP 1)."""
        return [index.size_summary() for index in self._bilevel.bounded]

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def execute(self, query: QClassQuery) -> QueryReport:
        """Plan and answer ``query``; returns the full report."""
        plan = plan_query(
            query,
            self._network,
            max_radius=self._bilevel.max_radius,
            node_policy=self._config.node_policy,
            has_unbounded_level=self._bilevel.has_unbounded_level,
            strict_keywords=self._config.strict_keywords,
        )
        cluster = self._bounded_cluster
        if plan.use_unbounded:
            assert self._unbounded_cluster is not None  # guaranteed by the planner
            cluster = self._unbounded_cluster

        response = cluster.execute(query)
        fragment_seconds = {r.fragment_id: r.wall_seconds for r in response.task_results}
        coverage_sizes = {r.fragment_id: r.coverage_sizes for r in response.task_results}
        machine_costs = list(response.machine_seconds.values())
        task_costs = [r.wall_seconds for r in response.task_results]
        return QueryReport(
            query_label=query.label,
            result_nodes=response.result_nodes,
            response_seconds=response.response_seconds,
            communication_seconds=response.communication_seconds,
            total_task_seconds=sum(task_costs),
            machine_seconds=response.machine_seconds,
            fragment_seconds=fragment_seconds,
            coverage_sizes=coverage_sizes,
            total_message_bytes=response.total_message_bytes,
            used_unbounded_level=plan.use_unbounded,
            unbalance=unbalance_factor(machine_costs),
            unbalance_bound=theorem6_bound(task_costs),
        )

    def results(self, query: QClassQuery) -> frozenset[int]:
        """Just the answer node set."""
        return self.execute(query).result_nodes

    def count(self, query: QClassQuery) -> int:
        """Result cardinality without shipping the result set.

        Because fragments are node-disjoint, the per-fragment local
        results are disjoint too (Lemma 1), so the global count is the
        *sum* of local counts — each worker ships 8 bytes instead of its
        whole node list.  Useful for selectivity estimation and paging.
        """
        plan = plan_query(
            query,
            self._network,
            max_radius=self._bilevel.max_radius,
            node_policy=self._config.node_policy,
            has_unbounded_level=self._bilevel.has_unbounded_level,
            strict_keywords=self._config.strict_keywords,
        )
        cluster = self._bounded_cluster
        if plan.use_unbounded:
            assert self._unbounded_cluster is not None
            cluster = self._unbounded_cluster
        total = 0
        for machine in cluster.coordinator.machines:
            for result in machine.execute(query):
                total += len(result.local_result)
        return total

    def execute_many(self, queries: list[QClassQuery]) -> "BatchReport":
        """Answer a query batch and summarise throughput.

        Each query still runs as one coordinated round; the batch report
        aggregates the accounting the way a load test would (the paper's
        §1 motivation is exactly query *throughput* on heavy loads).
        """
        if not queries:
            raise DisksError("execute_many needs at least one query")
        reports = [self.execute(query) for query in queries]
        total_response = sum(r.response_seconds for r in reports)
        return BatchReport(
            reports=tuple(reports),
            total_response_seconds=total_response,
            mean_response_seconds=total_response / len(reports),
            queries_per_second=(
                len(reports) / total_response if total_response > 0 else math.inf
            ),
            total_message_bytes=sum(r.total_message_bytes for r in reports),
        )

    def explain(self, query: QClassQuery) -> dict[int, tuple[float | None, ...]]:
        """Answer ``query`` with per-term distances for every result node.

        Returns ``{node: (d₀, d₁, …)}`` aligned with ``query.terms``;
        ``None`` marks terms whose coverage does not contain the node
        (possible under ∪ and − operators).  Distances are globally
        exact (Theorem 3).
        """
        from repro.core.executor import execute_fragment_task_explained

        plan = plan_query(
            query,
            self._network,
            max_radius=self._bilevel.max_radius,
            node_policy=self._config.node_policy,
            has_unbounded_level=self._bilevel.has_unbounded_level,
            strict_keywords=self._config.strict_keywords,
        )
        cluster = self._bounded_cluster
        if plan.use_unbounded:
            assert self._unbounded_cluster is not None
            cluster = self._unbounded_cluster
        merged: dict[int, tuple[float | None, ...]] = {}
        for machine in cluster.coordinator.machines:
            for runtime in machine.runtimes:
                _result, explanations = execute_fragment_task_explained(runtime, query)
                merged.update(explanations)
        return merged

    def top_k(self, query: TopKQuery) -> TopKResult:
        """Answer a top-k nearest query (the §8 future-work extension).

        Every fragment ranks its own members by exact distance (Theorem
        3) and ships only its best ``k``; the coordinator merges.  The
        radius must fit the bounded index level.
        """
        if query.radius > self._bilevel.max_radius and not self._bilevel.has_unbounded_level:
            from repro.exceptions import RadiusExceededError

            raise RadiusExceededError(query.radius, self._bilevel.max_radius)
        source = query.source
        if isinstance(source, KeywordSource):
            if (
                self._config.strict_keywords
                and source.keyword not in self._network.all_keywords()
            ):
                from repro.exceptions import UnknownKeywordError

                raise UnknownKeywordError(source.keyword)
        indexes = self._bilevel.level_for(query.radius)
        runtimes = [
            # Reuse cached runtimes from the matching cluster when the
            # bounded level serves the query; build ad hoc otherwise.
            runtime
            for machine in (
                self._bounded_cluster
                if indexes is self._bilevel.bounded
                else self._unbounded_cluster
            ).coordinator.machines
            for runtime in machine.runtimes
        ]
        results = [execute_topk_task(runtime, query) for runtime in runtimes]
        return merge_topk(query, results)
