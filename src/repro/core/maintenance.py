"""Incremental NPD-index maintenance for keyword and edge-cost updates.

The paper builds its index offline over a static network.  A deployed
system, however, sees object metadata churn constantly (a restaurant
closes, a shop gains a tag) and road costs drift (congestion, closures)
even while the *topology* stays put.  This module keeps the NPD-index
exact under exactly those classes of change:

* **adding** a keyword to an object — one bounded forward Dijkstra from
  the object computes its Rule-2 contributions to every fragment's DL
  (the per-fragment first-entry portals), which are merged as minima;
* **removing** a keyword — the affected keyword's DL entries are
  recomputed from the remaining carriers' contributions (each one
  bounded search; documented O(|carriers|) cost);
* **edge-weight** changes — an impact analysis bounds which fragments'
  ``SC(P)``/``DL(P)`` entries could record a path through the changed
  edge (every recorded distance is ≤ ``maxR``, so only fragments with a
  node within ``maxR`` of the edge, on the old *or* new costs, qualify);
  those fragments fall back to a bounded rebuild — one Algorithm-1 run
  each;
* **structural** changes (new roads, new objects) route to an explicit
  per-fragment rebuild.

SC(P) never depends on keywords, so keyword maintenance touches only DL
— the reason it can be patch-incremental; edge costs feed every recorded
distance, which is why they invalidate-and-rebuild instead.

Every mutation bumps :attr:`NPDIndex.version`, and runtimes *bound* to
the maintainer (:meth:`KeywordMaintainer.bind`) are refreshed in place —
their compiled kernels and coverage caches are dropped, so queries after
an update never see pre-mutation packed seed lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from typing import Iterable

from repro.core.builder import NPDBuildConfig, build_npd_index
from repro.core.coverage import FragmentRuntime
from repro.core.fragment import Fragment
from repro.core.npd import DLNodePolicy, NPDIndex, PortalDistance
from repro.exceptions import DisksError, GraphError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition
from repro.text.inverted import FragmentKeywordIndex

__all__ = [
    "node_dl_contributions",
    "edge_impact_fragments",
    "KeywordMaintainer",
]


def node_dl_contributions(
    network: RoadNetwork,
    partition: Partition,
    source: int,
    max_radius: float,
) -> dict[int, dict[int, float]]:
    """Rule-2 contributions of one source node to every fragment's DL.

    Runs a bounded forward Dijkstra from ``source`` while tracking the
    fragments visited strictly between the source and each settled node
    (the paper's ``visitedParts``).  A settled node ``p`` contributes
    the pair ``(p, d(source, p))`` to fragment ``part(p)`` iff that
    fragment was not entered earlier on the tree path and the source
    lies outside it — i.e. ``p`` is the first-entry portal of its
    fragment along the path (Rule 2).

    Returns ``{fragment_id: {portal: distance}}``.
    """
    assignment = partition.assignment
    source_fragment = assignment[source]

    best: dict[int, float] = {source: 0.0}
    pred: dict[int, int] = {source: -1}
    visited_parts: dict[int, frozenset[int]] = {source: frozenset()}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    contributions: dict[int, dict[int, float]] = {}

    while heap:
        d, p = heappop(heap)
        if p in settled or d > best[p]:
            continue
        settled.add(p)

        q = pred[p]
        if q == -1:
            parts = frozenset()
        elif q == source:
            parts = frozenset()
        else:
            parts = visited_parts[q] | {assignment[q]}
        visited_parts[p] = parts

        fragment = assignment[p]
        if p != source and fragment != source_fragment and fragment not in parts:
            bucket = contributions.setdefault(fragment, {})
            if p not in bucket:  # settled in distance order: first is min
                bucket[p] = d

        for v, w in network.neighbors(p):
            if v in settled:
                continue
            nd = d + w
            if nd <= max_radius and nd < best.get(v, math.inf):
                best[v] = nd
                pred[v] = p
                heappush(heap, (nd, v))
    return contributions


def _bounded_reach_fragments(
    network: RoadNetwork,
    sources: Iterable[int],
    max_radius: float,
    assignment: tuple[int, ...],
) -> set[int]:
    """Fragments owning any node within ``max_radius`` of ``sources``."""
    best: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for source in sources:
        best[source] = 0.0
        heappush(heap, (0.0, source))
    fragments: set[int] = set()
    while heap:
        d, node = heappop(heap)
        if d > best.get(node, math.inf):
            continue
        fragments.add(assignment[node])
        for v, w in network.neighbors(node):
            nd = d + w
            if nd <= max_radius and nd < best.get(v, math.inf):
                best[v] = nd
                heappush(heap, (nd, v))
    return fragments


def edge_impact_fragments(
    old_network: RoadNetwork,
    new_network: RoadNetwork,
    partition: Partition,
    u: int,
    v: int,
    max_radius: float,
) -> set[int]:
    """Fragments whose index may record a path through edge ``u -> v``.

    Every distance an NPD-index records is at most ``maxR`` long, so a
    recorded path through the edge leaves at most ``maxR`` of suffix
    after traversing it: every node of the path — in particular the
    portal that keys the DL entry, or the shortcut endpoint — lies
    within ``maxR`` of the edge's head.  Sweeping a bounded forward
    Dijkstra from the edge endpoints on the *old* network catches
    entries whose recorded path used the old cost, and on the *new*
    network entries whose path becomes recorded under the new cost.
    The fragments of ``u`` and ``v`` themselves are always included
    (their local adjacency and Rule-1 shortcut validity change).

    With an untruncated index (``maxR = ∞``) this degrades to "every
    fragment", which is the honest answer — untruncated recorded paths
    can span the whole network.
    """
    assignment = partition.assignment
    sources = (v,) if old_network.directed else (u, v)
    affected = {assignment[u], assignment[v]}
    affected |= _bounded_reach_fragments(old_network, sources, max_radius, assignment)
    affected |= _bounded_reach_fragments(new_network, sources, max_radius, assignment)
    return affected


def _merge_sorted(
    pairs: tuple[PortalDistance, ...], updates: dict[int, float]
) -> tuple[PortalDistance, ...]:
    """Merge minimum-per-portal ``updates`` into a sorted DL value list."""
    merged: dict[int, float] = {pd.portal: pd.distance for pd in pairs}
    for portal, dist in updates.items():
        if dist < merged.get(portal, math.inf):
            merged[portal] = dist
    return tuple(
        PortalDistance(portal, dist)
        for portal, dist in sorted(merged.items(), key=lambda kv: (kv[1], kv[0]))
    )


@dataclass
class KeywordMaintainer:
    """Keeps (network, fragments, indexes) exact under online updates.

    Owns mutable references to the deployment state; after any update
    the properties expose the refreshed objects, from which a new
    :class:`~repro.core.engine.DisksEngine` (or raw runtimes) can be
    assembled.  All updates preserve the exactness invariants — the test
    suite checks every operation against a from-scratch rebuild.

    Live runtimes can be *bound* with :meth:`bind`: after every update
    each bound :class:`~repro.core.coverage.FragmentRuntime` is
    refreshed in place (fragment/index references swapped, compiled
    kernel and coverage cache dropped), so a bound runtime always
    answers on the post-update index.  Each public update method
    returns the sorted ids of the fragments it actually changed, which
    :mod:`repro.live.epochs` uses to ship minimal epoch deltas.
    """

    network: RoadNetwork
    partition: Partition
    fragments: list[Fragment]
    indexes: list[NPDIndex]
    _bound: dict[int, list[FragmentRuntime]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.fragments) != len(self.indexes):
            raise DisksError("fragments and indexes must align")
        if self.partition.num_nodes != self.network.num_nodes:
            raise DisksError("partition does not fit the network")

    @property
    def max_radius(self) -> float:
        """The deployment's ``maxR``."""
        return self.indexes[0].max_radius

    # ------------------------------------------------------------------
    # Runtime binding
    # ------------------------------------------------------------------
    def bind(self, runtime: FragmentRuntime) -> None:
        """Keep ``runtime`` synchronised with every future update."""
        fragment_id = runtime.fragment.fragment_id
        if not (0 <= fragment_id < len(self.fragments)):
            raise DisksError(f"no fragment {fragment_id} to bind to")
        self._bound.setdefault(fragment_id, []).append(runtime)

    def _refresh_bound(self, fragment_ids: Iterable[int]) -> None:
        for fragment_id in fragment_ids:
            for runtime in self._bound.get(fragment_id, ()):
                runtime.refresh(self.fragments[fragment_id], self.indexes[fragment_id])

    # ------------------------------------------------------------------
    # Keyword additions
    # ------------------------------------------------------------------
    def add_keyword(self, node: int, keyword: str) -> tuple[int, ...]:
        """Attach ``keyword`` to object ``node`` and patch every DL.

        Returns the sorted ids of the fragments whose state changed.
        """
        current = self.network.keywords(node)
        if keyword in current:
            return ()
        if not self.network.is_object(node):
            raise GraphError(f"node {node} is a junction; only objects carry keywords")
        self.network = self.network.with_node_keywords(node, current | {keyword})
        home = self.partition.fragment_of(node)
        self._refresh_fragment_keyword_index(home)
        changed = {home}

        contributions = node_dl_contributions(
            self.network, self.partition, node, self.max_radius
        )
        for fragment_id, portal_distances in contributions.items():
            if fragment_id == home:
                continue
            index = self.indexes[fragment_id]
            before = index.keyword_entries.get(keyword, ())
            merged = _merge_sorted(before, portal_distances)
            touched = merged != before
            if touched:
                index.keyword_entries[keyword] = merged
            if self._ensure_node_entry(index, node, portal_distances):
                touched = True
            if touched:
                index.touch()
                changed.add(fragment_id)
        self._refresh_bound(changed)
        return tuple(sorted(changed))

    def _ensure_node_entry(
        self, index: NPDIndex, node: int, portal_distances: dict[int, float]
    ) -> bool:
        """Give a newly keyword-bearing object its DL node entry if due."""
        if index.node_policy is DLNodePolicy.NONE:
            return False
        if index.node_policy is DLNodePolicy.OBJECTS and not self.network.is_object(node):
            return False
        if node not in index.node_entries:
            index.node_entries[node] = _merge_sorted((), portal_distances)
            return True
        return False

    # ------------------------------------------------------------------
    # Keyword removals
    # ------------------------------------------------------------------
    def remove_keyword(self, node: int, keyword: str) -> tuple[int, ...]:
        """Detach ``keyword`` from ``node`` and recompute its DL entries.

        Cost: one bounded search per remaining carrier of ``keyword``
        (the aggregated minima may have come from the removed node, so
        they cannot be patched in place).  Returns the sorted ids of the
        fragments whose state changed.
        """
        current = self.network.keywords(node)
        if keyword not in current:
            return ()
        self.network = self.network.with_node_keywords(node, current - {keyword})
        home = self.partition.fragment_of(node)
        self._refresh_fragment_keyword_index(home)
        changed = {home}
        changed |= self._recompute_keyword_entries(keyword)
        self._refresh_bound(changed)
        return tuple(sorted(changed))

    def _recompute_keyword_entries(self, keyword: str) -> set[int]:
        carriers = [
            n for n in self.network.nodes() if keyword in self.network.keywords(n)
        ]
        per_fragment: dict[int, dict[int, float]] = {}
        for carrier in carriers:
            contributions = node_dl_contributions(
                self.network, self.partition, carrier, self.max_radius
            )
            for fragment_id, portal_distances in contributions.items():
                bucket = per_fragment.setdefault(fragment_id, {})
                for portal, dist in portal_distances.items():
                    if dist < bucket.get(portal, math.inf):
                        bucket[portal] = dist
        changed: set[int] = set()
        for index in self.indexes:
            before = index.keyword_entries.get(keyword)
            fresh = per_fragment.get(index.fragment_id)
            if fresh:
                after = _merge_sorted((), fresh)
                if after != before:
                    index.keyword_entries[keyword] = after
                    index.touch()
                    changed.add(index.fragment_id)
            elif before is not None:
                index.keyword_entries.pop(keyword, None)
                index.touch()
                changed.add(index.fragment_id)
        return changed

    # ------------------------------------------------------------------
    # Edge-weight updates
    # ------------------------------------------------------------------
    def set_edge_weight(self, u: int, v: int, weight: float) -> tuple[int, ...]:
        """Change the cost of edge ``u -> v`` and restore index exactness.

        Impact analysis (:func:`edge_impact_fragments`) bounds which
        fragments could record a path through the edge; each of those
        falls back to a bounded rebuild — one Algorithm-1 run.  Returns
        the sorted ids of the rebuilt fragments (empty if the weight is
        unchanged).
        """
        old_network = self.network
        current = old_network.edge_weight(u, v)  # raises GraphError if absent
        if current == weight:
            return ()
        new_network = old_network.with_edge_weight(u, v, weight)
        affected = edge_impact_fragments(
            old_network, new_network, self.partition, u, v, self.max_radius
        )
        self.network = new_network
        self._patch_fragment_edge(u, v, weight)
        for fragment_id in sorted(affected):
            self.rebuild_fragment(fragment_id)
        return tuple(sorted(affected))

    def _patch_fragment_edge(self, u: int, v: int, weight: float) -> None:
        """Update the local adjacency of the fragment owning edge ``u-v``."""
        fu = self.partition.fragment_of(u)
        if fu != self.partition.fragment_of(v):
            return  # a cross-fragment edge appears in no fragment adjacency
        fragment = self.fragments[fu]
        adjacency = dict(fragment.adjacency)

        def patch_row(a: int, b: int) -> None:
            row = adjacency.get(a)
            if row:
                adjacency[a] = tuple(
                    (n, weight if n == b else w) for n, w in row
                )

        patch_row(u, v)
        if not fragment.directed:
            patch_row(v, u)
        self.fragments[fu] = replace(fragment, adjacency=adjacency)

    # ------------------------------------------------------------------
    # Structural fallback
    # ------------------------------------------------------------------
    def rebuild_fragment(self, fragment_id: int, config: NPDBuildConfig | None = None) -> None:
        """Re-run Algorithm 1 for one fragment (structural-change path)."""
        if not (0 <= fragment_id < len(self.fragments)):
            raise DisksError(f"no fragment {fragment_id}")
        config = config or NPDBuildConfig(
            max_radius=self.max_radius,
            node_policy=self.indexes[fragment_id].node_policy,
        )
        index, _stats = build_npd_index(self.network, self.fragments[fragment_id], config)
        index.version = self.indexes[fragment_id].version + 1
        self.indexes[fragment_id] = index
        self._refresh_bound((fragment_id,))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_fragment_keyword_index(self, fragment_id: int) -> None:
        fragment = self.fragments[fragment_id]
        self.fragments[fragment_id] = replace(
            fragment,
            keyword_index=FragmentKeywordIndex(self.network, sorted(fragment.members)),
        )
        self.indexes[fragment_id].touch()
