"""Incremental NPD-index maintenance for keyword updates.

The paper builds its index offline over a static network.  A deployed
system, however, sees object metadata churn constantly (a restaurant
closes, a shop gains a tag) even while the *road graph* stays put.  This
module keeps the NPD-index exact under exactly that class of change:

* **adding** a keyword to an object — one bounded forward Dijkstra from
  the object computes its Rule-2 contributions to every fragment's DL
  (the per-fragment first-entry portals), which are merged as minima;
* **removing** a keyword — the affected keyword's DL entries are
  recomputed from the remaining carriers' contributions (each one
  bounded search; documented O(|carriers|) cost);
* **structural** changes (new roads, new objects) alter distances and
  therefore SC; those route to a per-fragment rebuild, which is exactly
  one Algorithm-1 run.

SC(P) never depends on keywords, so keyword maintenance touches only DL
— the reason this can be incremental at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from heapq import heappop, heappush

from repro.core.builder import NPDBuildConfig, build_npd_index
from repro.core.fragment import Fragment
from repro.core.npd import DLNodePolicy, NPDIndex, PortalDistance
from repro.exceptions import DisksError, GraphError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition
from repro.text.inverted import FragmentKeywordIndex

__all__ = ["node_dl_contributions", "KeywordMaintainer"]


def node_dl_contributions(
    network: RoadNetwork,
    partition: Partition,
    source: int,
    max_radius: float,
) -> dict[int, dict[int, float]]:
    """Rule-2 contributions of one source node to every fragment's DL.

    Runs a bounded forward Dijkstra from ``source`` while tracking the
    fragments visited strictly between the source and each settled node
    (the paper's ``visitedParts``).  A settled node ``p`` contributes
    the pair ``(p, d(source, p))`` to fragment ``part(p)`` iff that
    fragment was not entered earlier on the tree path and the source
    lies outside it — i.e. ``p`` is the first-entry portal of its
    fragment along the path (Rule 2).

    Returns ``{fragment_id: {portal: distance}}``.
    """
    assignment = partition.assignment
    source_fragment = assignment[source]

    best: dict[int, float] = {source: 0.0}
    pred: dict[int, int] = {source: -1}
    visited_parts: dict[int, frozenset[int]] = {source: frozenset()}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    contributions: dict[int, dict[int, float]] = {}

    while heap:
        d, p = heappop(heap)
        if p in settled or d > best[p]:
            continue
        settled.add(p)

        q = pred[p]
        if q == -1:
            parts = frozenset()
        elif q == source:
            parts = frozenset()
        else:
            parts = visited_parts[q] | {assignment[q]}
        visited_parts[p] = parts

        fragment = assignment[p]
        if p != source and fragment != source_fragment and fragment not in parts:
            bucket = contributions.setdefault(fragment, {})
            if p not in bucket:  # settled in distance order: first is min
                bucket[p] = d

        for v, w in network.neighbors(p):
            if v in settled:
                continue
            nd = d + w
            if nd <= max_radius and nd < best.get(v, math.inf):
                best[v] = nd
                pred[v] = p
                heappush(heap, (nd, v))
    return contributions


def _merge_sorted(
    pairs: tuple[PortalDistance, ...], updates: dict[int, float]
) -> tuple[PortalDistance, ...]:
    """Merge minimum-per-portal ``updates`` into a sorted DL value list."""
    merged: dict[int, float] = {pd.portal: pd.distance for pd in pairs}
    for portal, dist in updates.items():
        if dist < merged.get(portal, math.inf):
            merged[portal] = dist
    return tuple(
        PortalDistance(portal, dist)
        for portal, dist in sorted(merged.items(), key=lambda kv: (kv[1], kv[0]))
    )


@dataclass
class KeywordMaintainer:
    """Keeps (network, fragments, indexes) exact under keyword updates.

    Owns mutable references to the deployment state; after any update
    the properties expose the refreshed objects, from which a new
    :class:`~repro.core.engine.DisksEngine` (or raw runtimes) can be
    assembled.  All updates preserve the exactness invariants — the test
    suite checks every operation against a from-scratch rebuild.
    """

    network: RoadNetwork
    partition: Partition
    fragments: list[Fragment]
    indexes: list[NPDIndex]

    def __post_init__(self) -> None:
        if len(self.fragments) != len(self.indexes):
            raise DisksError("fragments and indexes must align")
        if self.partition.num_nodes != self.network.num_nodes:
            raise DisksError("partition does not fit the network")

    @property
    def max_radius(self) -> float:
        """The deployment's ``maxR``."""
        return self.indexes[0].max_radius

    # ------------------------------------------------------------------
    # Keyword additions
    # ------------------------------------------------------------------
    def add_keyword(self, node: int, keyword: str) -> None:
        """Attach ``keyword`` to object ``node`` and patch every DL."""
        current = self.network.keywords(node)
        if keyword in current:
            return
        if not self.network.is_object(node):
            raise GraphError(f"node {node} is a junction; only objects carry keywords")
        self.network = self.network.with_node_keywords(node, current | {keyword})
        self._refresh_fragment_keyword_index(self.partition.fragment_of(node))

        contributions = node_dl_contributions(
            self.network, self.partition, node, self.max_radius
        )
        home = self.partition.fragment_of(node)
        for fragment_id, portal_distances in contributions.items():
            if fragment_id == home:
                continue
            index = self.indexes[fragment_id]
            index.keyword_entries[keyword] = _merge_sorted(
                index.keyword_entries.get(keyword, ()), portal_distances
            )
            self._ensure_node_entry(index, node, portal_distances)

    def _ensure_node_entry(
        self, index: NPDIndex, node: int, portal_distances: dict[int, float]
    ) -> None:
        """Give a newly keyword-bearing object its DL node entry if due."""
        if index.node_policy is DLNodePolicy.NONE:
            return
        if index.node_policy is DLNodePolicy.OBJECTS and not self.network.is_object(node):
            return
        if node not in index.node_entries:
            index.node_entries[node] = _merge_sorted((), portal_distances)

    # ------------------------------------------------------------------
    # Keyword removals
    # ------------------------------------------------------------------
    def remove_keyword(self, node: int, keyword: str) -> None:
        """Detach ``keyword`` from ``node`` and recompute its DL entries.

        Cost: one bounded search per remaining carrier of ``keyword``
        (the aggregated minima may have come from the removed node, so
        they cannot be patched in place).
        """
        current = self.network.keywords(node)
        if keyword not in current:
            return
        self.network = self.network.with_node_keywords(node, current - {keyword})
        self._refresh_fragment_keyword_index(self.partition.fragment_of(node))
        self._recompute_keyword_entries(keyword)

    def _recompute_keyword_entries(self, keyword: str) -> None:
        carriers = [
            n for n in self.network.nodes() if keyword in self.network.keywords(n)
        ]
        per_fragment: dict[int, dict[int, float]] = {}
        for carrier in carriers:
            contributions = node_dl_contributions(
                self.network, self.partition, carrier, self.max_radius
            )
            for fragment_id, portal_distances in contributions.items():
                bucket = per_fragment.setdefault(fragment_id, {})
                for portal, dist in portal_distances.items():
                    if dist < bucket.get(portal, math.inf):
                        bucket[portal] = dist
        for index in self.indexes:
            fresh = per_fragment.get(index.fragment_id)
            if fresh:
                index.keyword_entries[keyword] = _merge_sorted((), fresh)
            else:
                index.keyword_entries.pop(keyword, None)

    # ------------------------------------------------------------------
    # Structural fallback
    # ------------------------------------------------------------------
    def rebuild_fragment(self, fragment_id: int, config: NPDBuildConfig | None = None) -> None:
        """Re-run Algorithm 1 for one fragment (structural-change path)."""
        if not (0 <= fragment_id < len(self.fragments)):
            raise DisksError(f"no fragment {fragment_id}")
        config = config or NPDBuildConfig(
            max_radius=self.max_radius,
            node_policy=self.indexes[fragment_id].node_policy,
        )
        index, _stats = build_npd_index(self.network, self.fragments[fragment_id], config)
        self.indexes[fragment_id] = index

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_fragment_keyword_index(self, fragment_id: int) -> None:
        fragment = self.fragments[fragment_id]
        self.fragments[fragment_id] = replace(
            fragment,
            keyword_index=FragmentKeywordIndex(self.network, sorted(fragment.members)),
        )
