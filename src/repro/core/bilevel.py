"""The bi-level index of §5.5: a bounded index plus an unbounded twin.

``maxR`` truncation keeps the everyday index small, but the rare query
with ``r > maxR`` still needs serving.  The paper's remedy is to hold
two index sets per machine: one built with the application's ``maxR``
and one built without the restriction; the router picks per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.npd import NPDIndex
from repro.exceptions import IndexBuildError, RadiusExceededError

__all__ = ["BiLevelIndex"]


@dataclass(frozen=True)
class BiLevelIndex:
    """Bounded and (optionally) unbounded NPD-indexes for one deployment.

    Both lists are ordered by fragment id.  ``unbounded`` may be ``None``
    for single-level deployments; routing then raises
    :class:`RadiusExceededError` for oversized radiuses instead of
    silently degrading.
    """

    bounded: tuple[NPDIndex, ...]
    unbounded: tuple[NPDIndex, ...] | None = None

    def __post_init__(self) -> None:
        if not self.bounded:
            raise IndexBuildError("a bi-level index needs at least one fragment index")
        if self.unbounded is not None:
            if len(self.unbounded) != len(self.bounded):
                raise IndexBuildError(
                    "bounded and unbounded levels must cover the same fragments"
                )
            for index in self.unbounded:
                if index.max_radius != math.inf:
                    raise IndexBuildError(
                        "the second level must be built without a maxR restriction"
                    )

    @property
    def max_radius(self) -> float:
        """The bounded level's ``maxR``."""
        return self.bounded[0].max_radius

    @property
    def has_unbounded_level(self) -> bool:
        """Whether an unbounded second level exists."""
        return self.unbounded is not None

    def needs_unbounded(self, radius: float) -> bool:
        """Whether ``radius`` exceeds the bounded level."""
        return radius > self.max_radius

    def level_for(self, radius: float) -> tuple[NPDIndex, ...]:
        """The index set that serves a query of radius ``radius``."""
        if not self.needs_unbounded(radius):
            return self.bounded
        if self.unbounded is None:
            raise RadiusExceededError(radius, self.max_radius)
        return self.unbounded
