"""Per-fragment query task (paper Alg. 2 end-to-end).

A *task* is "the computation on a fragment" (§4.2): evaluate every
coverage term of the query locally, then apply the D-function to the
local coverages.  Lemma 1 guarantees the union of per-fragment results
is the global answer, so a task never needs data from another machine.

:func:`execute_fragment_task_explained` additionally keeps the exact
per-term distances of every result node (Theorem 3 makes them globally
correct), powering the engine's ``explain`` mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.coverage import (
    CoverageStats,
    FragmentRuntime,
    batch_distance_maps,
)
from repro.core.queries import QClassQuery

__all__ = [
    "FragmentTaskResult",
    "execute_fragment_task",
    "execute_fragment_task_explained",
]


@dataclass
class FragmentTaskResult:
    """Outcome of one fragment task.

    Attributes
    ----------
    fragment_id:
        The fragment the task ran on.
    local_result:
        ``F(X₁ ∩ P, …, Xₖ ∩ P)`` — this fragment's share of the answer.
    coverage_sizes:
        ``|R(term) ∩ P|`` per term, in term order (Theorem 5's
        ``|P ∩ R(ω, r)|`` factors).
    wall_seconds:
        Measured task time; the distributed response time is the
        makespan of these across machines (§5.1).
    stats:
        Seed/settle counters summed over all terms.
    """

    fragment_id: int
    local_result: frozenset[int]
    coverage_sizes: tuple[int, ...]
    wall_seconds: float
    stats: CoverageStats = field(default_factory=CoverageStats)


def execute_fragment_task(
    runtime: FragmentRuntime,
    query: QClassQuery,
    *,
    collector=None,
    parent_id: str | None = None,
) -> FragmentTaskResult:
    """Run ``query`` on one fragment and return its local result.

    ``collector`` (a :class:`repro.obs.trace.SpanCollector`, duck-typed)
    opts into stage tracing: one ``task`` span per fragment wrapping
    per-term ``eval`` spans (see
    :func:`~repro.core.coverage.batch_distance_maps`) and one ``union``
    span for the D-expression evaluation.  The evaluation itself is
    identical either way — tracing only observes, so answers are
    bit-identical with it on or off.
    """
    started = time.perf_counter()
    stats = CoverageStats()
    if collector is None:
        # Batched term evaluation: every term of the query runs through
        # the same kernel instance (shared scratch, duplicates memoised).
        coverages = [set(m) for m in batch_distance_maps(runtime, query.terms, stats)]
        local = query.expression.evaluate(coverages)
    else:
        fragment_id = runtime.fragment.fragment_id
        with collector.span(
            "task", parent_id=parent_id, fragment_id=fragment_id
        ) as task_span:
            maps = batch_distance_maps(
                runtime,
                query.terms,
                stats,
                collector=collector,
                parent_id=task_span.span_id,
            )
            coverages = [set(m) for m in maps]
            with collector.span(
                "union", parent_id=task_span.span_id, fragment_id=fragment_id
            ):
                local = query.expression.evaluate(coverages)
            task_span.tags["result_nodes"] = len(local)
    elapsed = time.perf_counter() - started
    return FragmentTaskResult(
        fragment_id=runtime.fragment.fragment_id,
        local_result=frozenset(local),
        coverage_sizes=tuple(len(c) for c in coverages),
        wall_seconds=elapsed,
        stats=stats,
    )


def execute_fragment_task_explained(
    runtime: FragmentRuntime, query: QClassQuery
) -> tuple[FragmentTaskResult, dict[int, tuple[float | None, ...]]]:
    """Like :func:`execute_fragment_task`, plus per-term result distances.

    The second return value maps each local result node to one distance
    per query term — ``d(node, source_i)`` where the node lies inside
    that term's coverage, ``None`` where it does not (e.g. the excluded
    side of a subtraction term).
    """
    started = time.perf_counter()
    stats = CoverageStats()
    distance_maps = batch_distance_maps(runtime, query.terms, stats)
    coverages = [set(m) for m in distance_maps]
    local = query.expression.evaluate(coverages)
    explanations = {
        node: tuple(m.get(node) for m in distance_maps) for node in local
    }
    elapsed = time.perf_counter() - started
    result = FragmentTaskResult(
        fragment_id=runtime.fragment.fragment_id,
        local_result=frozenset(local),
        coverage_sizes=tuple(len(c) for c in coverages),
        wall_seconds=elapsed,
        stats=stats,
    )
    return result, explanations
