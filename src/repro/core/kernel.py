"""Compiled fragment kernel: the packed query-time runtime (perf tentpole).

The reference query path (:mod:`repro.core.coverage`) evaluates every
coverage term with a dict-of-tuples adjacency callable and fresh
``dict``/heap state per term.  That is the clearest possible rendering
of Alg. 2 — and, per Theorem 5, exactly the per-query CPU the whole
system's unit economics stand on.  :class:`FragmentKernel` compiles one
fragment's query-time state into flat structures so repeated coverage
evaluations allocate nothing beyond their result maps:

* **Dense renumbering** — the member nodes of the extended fragment
  ``P ∪ SC(P)`` are renumbered ``0..n-1`` (sorted global order), so all
  per-node state lives in flat sequences instead of hash maps.
* **CSR adjacency** — ``indptr``/``indices``/``weights`` as stdlib
  :mod:`array` arrays (``'q'`` ints / ``'d'`` doubles; no numpy).  The
  CSR is the canonical compact layout; a per-row tuple view derived
  from it (`_rows`) is what the interpreter loop iterates, because
  CPython unpacks a prebuilt ``(node, weight)`` tuple faster than it
  re-boxes two ``array`` elements per edge.
* **Precompiled seed lists** — per keyword, the fragment-local carriers
  (zero-weight seeds) and the DL portal pairs as parallel
  dense-id/distance arrays sorted by distance with per-portal minima
  pre-deduplicated, so one :func:`bisect.bisect_right` replaces the
  query-time scan-and-merge; likewise per DL node entry.
* **Generation-stamped scratch** — preallocated ``dist``/``stamp``
  lists; bumping one generation counter invalidates the whole scratch
  in O(1), so back-to-back terms of one query (and back-to-back
  queries) reuse the same memory with zero clearing cost.  Within a
  generation a settled node's ``dist`` is overwritten with ``-1.0``
  (below every real distance), which folds the "already settled" test
  into the ordinary improvement comparison.
* **Bounded bucket queue** — every coverage search is truncated at the
  term radius (at most ``maxR`` on a bounded level, Theorem 3), and
  edge weights have a positive minimum ``δ``, so the frontier fits a
  Dial-style bucket array of width ``δ`` (the "approximate buckets" of
  Cherkassky–Goldberg–Radzik).  With bucket width ≤ the minimum edge
  weight no relaxation can improve a label inside the bucket being
  swept, so labels are final when popped: the search is *exact*, with
  O(1) pushes/pops instead of the binary heap's O(log n) sifting and
  per-entry tuple churn.  The bucket array is preallocated and
  self-draining (every sweep empties the buckets it used), so repeated
  terms reuse it allocation-free.  When ``radius/δ`` is too large for
  buckets to pay off (or the radius is unbounded), the kernel falls
  back to a conventional binary-heap search over the same scratch.

Distances are bit-for-bit identical to the reference path: every path
relaxes edge-by-edge with the same ``d + w`` accumulation and the same
``nd <= bound`` truncation, and a node's final label is the minimum of
the same float candidates regardless of settle order, so the
differential tests can require exact float equality of whole distance
maps (directed and undirected, tie-heavy weights included).  The
bucket width is shrunk by one part in 10⁹ below ``δ`` so that float
rounding in the bucket index can never place a label one bucket early.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from heapq import heapify, heappop, heappush

from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource
from repro.exceptions import QueryError

__all__ = ["FragmentKernel"]


class FragmentKernel:
    """Packed, reusable query-time state for one fragment.

    Build once per ``(fragment, index)`` pair — typically via
    ``FragmentRuntime(..., compiled=True)`` — then call
    :meth:`distance_map` per coverage term.  Instances are picklable
    (plain arrays/dicts/tuples), so process workers can ship or rebuild
    them freely.  Not thread-safe: the scratch arrays are shared across
    calls by design.
    """

    __slots__ = (
        "fragment_id",
        "num_nodes",
        "indptr",
        "indices",
        "weights",
        "bucket_limit",
        "_globals",
        "_dense",
        "_rows",
        "_kw_local",
        "_kw_portals",
        "_node_portals",
        "_dist",
        "_stamp",
        "_generation",
        "_inv_delta",
        "_buckets",
    )

    def __init__(self, fragment: Fragment, index: NPDIndex) -> None:
        if fragment.fragment_id != index.fragment_id:
            raise QueryError(
                f"fragment {fragment.fragment_id} paired with index for "
                f"fragment {index.fragment_id}"
            )
        self.fragment_id = fragment.fragment_id

        # Dense renumbering over the members of P (shortcut endpoints are
        # members by Rule 1, so this is the full node set of P ∪ SC(P)).
        ordered = sorted(fragment.members)
        dense = {node: i for i, node in enumerate(ordered)}
        n = len(ordered)
        self.num_nodes = n
        self._globals = tuple(ordered)
        self._dense = dense

        # Extended adjacency (fragment edges + SC shortcuts) as CSR.
        rows: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for node, edges in fragment.adjacency.items():
            row = rows[dense[node]]
            for v, w in edges:
                row.append((dense[v], w))
        for (u, v), w in index.shortcuts.items():
            rows[dense[u]].append((dense[v], w))
            if not fragment.directed:
                rows[dense[v]].append((dense[u], w))
        indptr = array("q", [0]) * (n + 1)
        total = 0
        for i, row in enumerate(rows):
            total += len(row)
            indptr[i + 1] = total
        indices = array("q", [0]) * total
        weights = array("d", [0.0]) * total
        k = 0
        for row in rows:
            for v, w in row:
                indices[k] = v
                weights[k] = w
                k += 1
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        # Hot-loop view derived from the CSR (tuple unpack beats
        # per-element array indexing in the interpreter).
        self._rows = tuple(
            tuple(zip(indices[indptr[i] : indptr[i + 1]], weights[indptr[i] : indptr[i + 1]]))
            for i in range(n)
        )

        # Seed tables.  Local carriers per keyword (zero-weight seeds).
        self._kw_local: dict[str, tuple[int, ...]] = {
            kw: tuple(dense[node] for node in nodes)
            for kw, nodes in fragment.keyword_index.to_postings().items()
        }
        # DL entries as parallel (dense portal, distance) arrays, sorted
        # by distance, per-portal minimum only (the first occurrence in
        # the sorted list is the minimum, so later duplicates can be
        # dropped at compile time without changing any radius cutoff).
        self._kw_portals = {
            kw: _pack_portal_list(pairs, dense) for kw, pairs in index.keyword_entries.items()
        }
        self._node_portals = {
            node: _pack_portal_list(pairs, dense) for node, pairs in index.node_entries.items()
        }

        # Reusable scratch: tentative distance + generation stamp.
        self._dist = [0.0] * n
        self._stamp = [0] * n
        self._generation = 0

        # Bucket-queue compilation: with bucket width just under the
        # minimum edge weight, no relaxation can land inside the bucket
        # currently being swept, so bucket order is settle order (exact
        # Dijkstra without a heap).  ``bucket_limit`` caps how many
        # buckets a single search may sweep before the kernel falls back
        # to the binary heap (pathologically small δ, unbounded radius).
        delta = min(weights) if total else 0.0
        self._inv_delta = 1.0 / (delta * (1.0 - 1e-9)) if delta > 0.0 else 0.0
        self._buckets: list[list[int]] = []
        self.bucket_limit = 4 * n + 64

    @classmethod
    def from_packed(
        cls,
        *,
        fragment_id: int,
        num_nodes: int,
        indptr,
        indices,
        weights,
        node_globals,
        kw_local,
        kw_portals,
        node_portals,
        inv_delta: float,
        bucket_limit: int,
    ) -> "FragmentKernel":
        """Rehydrate a kernel from already-packed flat sequences.

        This is the shared-memory attach path (:mod:`repro.shm`): the
        array arguments may be :class:`memoryview` casts over a mapped
        segment — everything the settle loops do (len, index, slice,
        bisect) works identically on views and ``array`` objects.  The
        dense-renumbering dict is *not* rebuilt; ``_dense_id`` falls
        back to a bisect over the sorted global-id table, which costs
        O(log n) only on the rare :class:`NodeSource` seed lookup.  The
        per-row tuple view and the scratch are rebuilt locally (CPU in
        the attaching process, nothing crosses the pipe).
        """
        self = object.__new__(cls)
        self.fragment_id = fragment_id
        self.num_nodes = num_nodes
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._globals = node_globals
        self._dense = None
        self._rows = tuple(
            tuple(zip(indices[indptr[i] : indptr[i + 1]], weights[indptr[i] : indptr[i + 1]]))
            for i in range(num_nodes)
        )
        self._kw_local = kw_local
        self._kw_portals = kw_portals
        self._node_portals = node_portals
        self._dist = [0.0] * num_nodes
        self._stamp = [0] * num_nodes
        self._generation = 0
        self._inv_delta = inv_delta
        self._buckets = []
        self.bucket_limit = bucket_limit
        return self

    def _dense_id(self, node: int) -> int | None:
        """Global node id -> dense id, or ``None`` if not a member.

        Kernels built by ``__init__`` keep the renumbering dict; packed
        kernels bisect the sorted global table instead of materialising
        a per-process dict that would cost more to build than every
        lookup it will ever serve.
        """
        dense = self._dense
        if dense is not None:
            return dense.get(node)
        i = bisect_left(self._globals, node)
        if i < self.num_nodes and self._globals[i] == node:
            return i
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """How many searches have run on this kernel's scratch."""
        return self._generation

    def global_id(self, dense_id: int) -> int:
        """The global node id behind a dense id (testing/debug aid)."""
        return self._globals[dense_id]

    def memory_cells(self) -> dict[str, int]:
        """Element counts of the packed layout (size accounting)."""
        return {
            "csr_cells": len(self.indptr) + 2 * len(self.indices),
            "keyword_seed_cells": sum(
                len(ids) * 2 for ids, _d in self._kw_portals.values()
            )
            + sum(len(v) for v in self._kw_local.values()),
            "node_seed_cells": sum(len(ids) * 2 for ids, _d in self._node_portals.values()),
            "scratch_cells": 2 * self.num_nodes,
        }

    # ------------------------------------------------------------------
    # Coverage evaluation
    # ------------------------------------------------------------------
    def distance_map(
        self, term: CoverageTerm, stats=None
    ) -> dict[int, float]:
        """Exact ``{member: distance}`` for one coverage term (Alg. 2).

        Shares the preallocated scratch across calls — the batched-term
        path of :func:`repro.core.coverage.batch_distance_maps` simply
        calls this once per term on the same kernel instance.
        ``stats`` is an optional
        :class:`~repro.core.coverage.CoverageStats` to update.
        """
        radius = term.radius
        self._generation += 1
        g = self._generation
        dist = self._dist
        stamp = self._stamp
        seeds: list[int] = []  # dense ids; labels live in the scratch
        seeds_local = 0
        seeds_dl = 0

        source = term.source
        if isinstance(source, KeywordSource):
            for v in self._kw_local.get(source.keyword, ()):
                dist[v] = 0.0
                stamp[v] = g
                seeds.append(v)
                seeds_local += 1
            entry = self._kw_portals.get(source.keyword)
            if entry is not None:
                ids, dists = entry
                for i in range(bisect_right(dists, radius)):
                    v = ids[i]
                    if stamp[v] != g:  # local zero seed wins (DL dists > 0)
                        dist[v] = dists[i]
                        stamp[v] = g
                        seeds.append(v)
                        seeds_dl += 1
        elif isinstance(source, NodeSource):
            v = self._dense_id(source.node)
            if v is not None:
                dist[v] = 0.0
                stamp[v] = g
                seeds.append(v)
                seeds_local += 1
            else:
                entry = self._node_portals.get(source.node)
                if entry is not None:
                    ids, dists = entry
                    for i in range(bisect_right(dists, radius)):
                        p = ids[i]
                        dist[p] = dists[i]
                        stamp[p] = g
                        seeds.append(p)
                        seeds_dl += 1
        else:  # pragma: no cover - the Source union is closed
            raise QueryError(f"unsupported coverage source {source!r}")

        if stats is not None:
            stats.seeds_local += seeds_local
            stats.seeds_from_dl += seeds_dl

        if not seeds:
            return {}
        inv = self._inv_delta
        if inv > 0.0 and radius * inv <= self.bucket_limit:
            out = self._settle_buckets(seeds, radius, g)
        else:
            out = self._settle_heap(seeds, radius, g)
        if stats is not None:
            stats.settled_nodes += len(out)
        return out

    def _settle_buckets(self, seeds: list[int], radius: float, g: int) -> dict[int, float]:
        """Bucket-queue settle loop (the fast path for bounded radii).

        Invariant: bucket width < min edge weight, so a relaxation from
        a node settling in bucket ``k`` always lands in bucket ``> k``
        (real arithmetic gives ``≥ k+1`` with a 1e-9 relative margin
        that dwarfs float rounding in the index).  Labels are therefore
        final when their bucket's sweep starts, *and* a bucket never
        grows while it is being swept — so each bucket is iterated
        with a plain ``for`` (no per-entry ``pop()`` call) and cleared
        afterwards, leaving the shared bucket array empty for the next
        term.  Stale duplicate entries are skipped via the ``-1.0``
        settled sentinel.
        """
        dist = self._dist
        stamp = self._stamp
        rows = self._rows
        globals_ = self._globals
        inv = self._inv_delta
        buckets = self._buckets
        need = int(radius * inv) + 1
        while len(buckets) < need:
            buckets.append([])
        for v in seeds:
            buckets[int(dist[v] * inv)].append(v)
        out: dict[int, float] = {}
        for k in range(need):
            b = buckets[k]
            if not b:
                continue
            for u in b:
                d = dist[u]
                if d < 0.0:  # already settled via a shorter duplicate
                    continue
                dist[u] = -1.0
                out[globals_[u]] = d
                for v, w in rows[u]:
                    nd = d + w
                    if nd <= radius and (stamp[v] != g or nd < dist[v]):
                        dist[v] = nd
                        stamp[v] = g
                        buckets[int(nd * inv)].append(v)
            del b[:]
        return out

    def _settle_heap(self, seeds: list[int], radius: float, g: int) -> dict[int, float]:
        """Binary-heap settle loop (fallback for unbounded/huge radii)."""
        dist = self._dist
        stamp = self._stamp
        rows = self._rows
        globals_ = self._globals
        heap = [(dist[v], v) for v in seeds]
        heapify(heap)
        push = heappush
        pop = heappop
        out: dict[int, float] = {}
        while heap:
            d, u = pop(heap)
            if d > radius:
                break  # the heap is ordered; everything left is farther
            if dist[u] != d:  # settled (-1.0) or superseded by a shorter push
                continue
            dist[u] = -1.0
            out[globals_[u]] = d
            for v, w in rows[u]:
                nd = d + w
                if nd <= radius and (stamp[v] != g or nd < dist[v]):
                    dist[v] = nd
                    stamp[v] = g
                    push(heap, (nd, v))
        return out


def _pack_portal_list(pairs, dense: dict[int, int]) -> tuple[array, array]:
    """One sorted DL value list -> parallel (dense ids, distances) arrays.

    ``pairs`` is already distance-sorted (``NPDIndex.seal``); only the
    first (= minimum-distance) occurrence of each portal is kept.
    """
    ids: list[int] = []
    dists: list[float] = []
    seen: set[int] = set()
    for pd in pairs:
        portal = pd.portal
        if portal in seen:
            continue
        seen.add(portal)
        ids.append(dense[portal])
        dists.append(pd.distance)
    return array("q", ids), array("d", dists)
