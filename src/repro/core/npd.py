"""The NPD-index (Node-Partition-Distance index) data structure (paper §3).

``IND(P) = SC(P) ∪ DL(P)``:

* **SC** (*ShortCut*, §3.3) — shortcut edges between members of ``P``
  whose global shortest path contains no other node of ``P`` (Rule 1).
  ``P ∪ SC(P)`` is a *complete fragment*: every intra-fragment distance
  is computable locally (Theorem 1), and the set is minimal (Theorem 2).
* **DL** (*Distance List*, §3.4) — entry-value lists mapping an outside
  source to sorted ``(portal, distance)`` pairs whose shortest path first
  touches ``P`` at that portal (Rule 2).  Two entry families are kept:

  - *keyword entries* ``(ω, P)`` — the §3.7 virtual-keyword-node form:
    per portal, the minimum qualifying distance from any outside node
    carrying ``ω``.  These answer SGKQ terms.
  - *node entries* ``(A, P)`` — per concrete outside node ``A``; needed
    by RKQ whose query location is a node.  Which nodes get entries is a
    :class:`DLNodePolicy` choice (the paper prunes to keyword nodes,
    §3.7; we additionally support *all* and *none* for ablation).

All recorded distances are truncated at ``max_radius`` (the paper's
``maxR = λ·ē``, §3.7); ``math.inf`` disables truncation (§5.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from repro.exceptions import IndexBuildError

__all__ = ["DLNodePolicy", "PortalDistance", "NPDIndex"]


class DLNodePolicy(Enum):
    """Which concrete nodes receive DL node entries.

    * ``NONE`` — only keyword entries (smallest index; RKQ limited to
      locations inside the queried fragment or carrying keywords).
    * ``OBJECTS`` — every object node gets an entry (the paper's §3.7
      pruning: objects are exactly the keyword-bearing nodes).  Default.
    * ``ALL`` — every node, junctions included (largest index; supports
      RKQ from arbitrary junctions; the "no pruning" ablation).
    """

    NONE = "none"
    OBJECTS = "objects"
    ALL = "all"


@dataclass(frozen=True)
class PortalDistance:
    """One ``(N_i, d_i)`` pair of a DL value list."""

    portal: int
    distance: float


@dataclass
class NPDIndex:
    """The per-fragment NPD-index ``IND(P)``.

    Instances are produced by :func:`repro.core.builder.build_npd_index`
    and are immutable by convention once built (the builder calls
    :meth:`seal`).

    Attributes
    ----------
    fragment_id:
        Which fragment this index belongs to.
    max_radius:
        The ``maxR`` every recorded distance is truncated at
        (``math.inf`` when built without truncation).
    node_policy:
        Which node entries were materialised.
    shortcuts:
        ``SC(P)`` as ``{(u, v): weight}``.  For undirected networks the
        key is normalised with ``u < v``; for directed networks the key
        is the arc direction ``u -> v``.
    keyword_entries:
        ``DL(P)`` keyword entries: ``{keyword: (PortalDistance, ...)}``
        sorted by distance (Rule 2 condition 3).
    node_entries:
        ``DL(P)`` node entries: ``{node: (PortalDistance, ...)}`` sorted
        by distance.
    directed:
        Whether the parent network is directed.
    version:
        Mutation counter for online maintenance.  Query-time caches
        (compiled kernels, coverage caches) record the version they were
        built against and rebuild when it moves; every in-place mutation
        must go through :meth:`touch`.  Excluded from equality so stored
        and rebuilt indexes still compare equal field-wise.
    """

    fragment_id: int
    max_radius: float
    node_policy: DLNodePolicy
    directed: bool = False
    shortcuts: dict[tuple[int, int], float] = field(default_factory=dict)
    keyword_entries: dict[str, tuple[PortalDistance, ...]] = field(default_factory=dict)
    node_entries: dict[int, tuple[PortalDistance, ...]] = field(default_factory=dict)
    version: int = field(default=0, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Online maintenance support (repro.core.maintenance / repro.live)
    # ------------------------------------------------------------------
    def touch(self) -> int:
        """Mark the index mutated; returns the new version."""
        self.version += 1
        return self.version

    def copy(self) -> "NPDIndex":
        """A shallow-copied shadow of this index.

        The entry dicts are copied (their value tuples are immutable and
        shared), so a :class:`~repro.core.maintenance.KeywordMaintainer`
        can mutate the copy while readers of the original keep an
        untouched epoch — the basis of shadow application in
        :mod:`repro.live.epochs`.
        """
        return NPDIndex(
            fragment_id=self.fragment_id,
            max_radius=self.max_radius,
            node_policy=self.node_policy,
            directed=self.directed,
            shortcuts=dict(self.shortcuts),
            keyword_entries=dict(self.keyword_entries),
            node_entries=dict(self.node_entries),
            version=self.version,
        )

    # ------------------------------------------------------------------
    # Construction-time mutation (builder only)
    # ------------------------------------------------------------------
    def add_shortcut(self, u: int, v: int, distance: float) -> None:
        """Record a Rule-1 shortcut edge; idempotent for equal distances."""
        key = (u, v) if self.directed or u < v else (v, u)
        existing = self.shortcuts.get(key)
        if existing is not None:
            if not math.isclose(existing, distance, rel_tol=1e-9, abs_tol=1e-9):
                raise IndexBuildError(
                    f"conflicting shortcut distances for {key}: {existing} vs {distance}"
                )
            return
        self.shortcuts[key] = distance

    def seal(
        self,
        keyword_lists: Mapping[str, Iterable[tuple[int, float]]],
        node_lists: Mapping[int, Iterable[tuple[int, float]]],
    ) -> None:
        """Finalise DL entries, sorting each value list by distance."""
        self.keyword_entries = {
            kw: tuple(
                PortalDistance(portal, dist)
                for portal, dist in sorted(pairs, key=lambda pd: (pd[1], pd[0]))
            )
            for kw, pairs in keyword_lists.items()
        }
        self.node_entries = {
            node: tuple(
                PortalDistance(portal, dist)
                for portal, dist in sorted(pairs, key=lambda pd: (pd[1], pd[0]))
            )
            for node, pairs in node_lists.items()
        }

    # ------------------------------------------------------------------
    # Query-time lookups (Alg. 2 step 2)
    # ------------------------------------------------------------------
    def keyword_seeds(self, keyword: str, radius: float) -> dict[int, float]:
        """Portal seeds for keyword ``keyword`` within ``radius``.

        Returns ``{portal: distance}`` — the retained node-distance pairs
        of Alg. 2 step 2, exploiting the sorted order to stop early.
        """
        seeds: dict[int, float] = {}
        for pd in self.keyword_entries.get(keyword, ()):
            if pd.distance > radius:
                break
            current = seeds.get(pd.portal)
            if current is None or pd.distance < current:
                seeds[pd.portal] = pd.distance
        return seeds

    def node_seeds(self, node: int, radius: float) -> dict[int, float]:
        """Portal seeds for an outside source node within ``radius``."""
        seeds: dict[int, float] = {}
        for pd in self.node_entries.get(node, ()):
            if pd.distance > radius:
                break
            current = seeds.get(pd.portal)
            if current is None or pd.distance < current:
                seeds[pd.portal] = pd.distance
        return seeds

    def has_node_entry(self, node: int) -> bool:
        """Whether a node entry exists for ``node``."""
        return node in self.node_entries

    # ------------------------------------------------------------------
    # Size accounting (EXP 1 / Theorem 5's α and β)
    # ------------------------------------------------------------------
    @property
    def num_shortcuts(self) -> int:
        """β = |SC(P)|."""
        return len(self.shortcuts)

    def alpha(self, keyword: str) -> int:
        """α_ω: node-distance pairs in entry ``(ω, P)`` (Theorem 5)."""
        return len(self.keyword_entries.get(keyword, ()))

    @property
    def num_recorded_distances(self) -> int:
        """Total distances recorded — the paper's index-size measure (Thm 4)."""
        return (
            len(self.shortcuts)
            + sum(len(v) for v in self.keyword_entries.values())
            + sum(len(v) for v in self.node_entries.values())
        )

    def size_summary(self) -> dict[str, int]:
        """Breakdown used by the EXP-1 storage-cost report."""
        return {
            "shortcuts": len(self.shortcuts),
            "keyword_entries": len(self.keyword_entries),
            "keyword_pairs": sum(len(v) for v in self.keyword_entries.values()),
            "node_entries": len(self.node_entries),
            "node_pairs": sum(len(v) for v in self.node_entries.values()),
            "total_distances": self.num_recorded_distances,
        }
