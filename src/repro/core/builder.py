"""NPD-index construction (paper Algorithm 1, §4.1).

The builder runs a bounded *backward* Dijkstra from every portal node of
the fragment.  Along each shortest-path tree branch it propagates a
``clean`` flag — true while no node of ``P`` lies strictly between the
portal and the current node — which is exactly the bookkeeping the
paper's ``visitedParts`` performs, reduced to the only membership that
matters (membership in ``P`` itself):

* a settled member node with a clean path and no original edge to the
  portal yields an ``SC`` shortcut (Rule 1);
* a settled outside node with a clean path yields ``DL`` records
  (Rule 2): per-keyword minima (the §3.7 virtual-keyword-node form) and,
  per :class:`DLNodePolicy`, a concrete node entry.

Because Dijkstra settles nodes in non-decreasing distance order, the
per-keyword minimum for a portal is simply the *first* qualifying
occurrence — recorded with a set-if-absent.

Under shortest-path ties the tree realises one of the tied paths, so the
builder records a pair whenever *some* shortest path qualifies.  That is
a superset of Rules 3/4's minimal sets but every recorded value is an
exact distance along a real path, and the query-time Dijkstra takes
minima — correctness is unaffected (§5.3); tests pin this down.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.exceptions import IndexBuildError
from repro.core.fragment import Fragment
from repro.core.npd import DLNodePolicy, NPDIndex
from repro.graph.road_network import RoadNetwork

__all__ = ["NPDBuildConfig", "BuildStats", "build_npd_index", "build_all_indexes"]


@dataclass(frozen=True)
class NPDBuildConfig:
    """Parameters of NPD-index construction.

    Exactly one of ``max_radius`` (absolute) or ``lambda_factor``
    (``maxR = λ·ē``, the paper's Table-2 parameterisation with default
    λ=40) should be set; ``lambda_factor`` wins if both are given.
    ``math.inf`` (the default ``max_radius`` when both are ``None``)
    builds the untruncated index of §5.5.

    ``strict_tie_rules`` selects the §5.3 variant: under shortest-path
    ties the default builder records a pair whenever *some* shortest
    path qualifies (a safe superset, see the module docstring); the
    strict mode implements Rules 3/4 literally — record only when
    *every* shortest path avoids interior members — yielding the
    minimal index at the cost of tracking tie cleanliness.
    """

    max_radius: float | None = None
    lambda_factor: float | None = None
    node_policy: DLNodePolicy = DLNodePolicy.OBJECTS
    strict_tie_rules: bool = False

    def resolve_max_radius(self, network: RoadNetwork) -> float:
        """The absolute ``maxR`` for ``network``."""
        if self.lambda_factor is not None:
            if self.lambda_factor <= 0:
                raise IndexBuildError("lambda_factor must be positive")
            return self.lambda_factor * network.average_edge_weight
        if self.max_radius is not None:
            if self.max_radius < 0:
                raise IndexBuildError("max_radius must be non-negative")
            return self.max_radius
        return math.inf


@dataclass
class BuildStats:
    """Construction-cost accounting for one fragment (Table 3 / EXP 2)."""

    fragment_id: int
    num_portals: int
    settled_nodes: int = 0
    relaxed_edges: int = 0
    wall_seconds: float = 0.0


def _portal_search(
    network: RoadNetwork,
    members: frozenset[int],
    portal: int,
    max_radius: float,
    index: NPDIndex,
    keyword_pairs: dict[str, dict[int, float]],
    node_pairs: dict[int, list[tuple[int, float]]],
    stats: BuildStats,
    *,
    strict: bool = False,
) -> None:
    """One bounded backward Dijkstra from ``portal``, applying Rules 1–2.

    With ``strict`` the cleanliness flag aggregates over *all* tight
    predecessors (every shortest path must avoid interior members —
    Rules 3/4); otherwise it follows the single tree path.
    """
    node_policy = index.node_policy
    directed = network.directed
    # Backward search: distances computed are d(p -> portal).  On the
    # undirected graphs the forward CSR is the reverse graph too.
    row_of = network.in_neighbor_slice if directed else network.neighbor_slice

    best: dict[int, float] = {portal: 0.0}
    pred: dict[int, int] = {portal: -1}
    clean: dict[int, bool] = {portal: True}
    dist: dict[int, float] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, portal)]

    def all_paths_clean(p: int, d: float) -> bool:
        """Rule 3/4 cleanliness: every tight predecessor path is clean.

        In the search graph a predecessor of ``p`` is any ``q`` with a
        (reverse-direction) arc ``q -> p``, i.e. an original arc
        ``p -> q`` — so scanning ``network.neighbors(p)`` enumerates
        candidates in both modes.
        """
        found = False
        for q, w in network.neighbors(p):
            dq = dist.get(q)
            if dq is None or dq + w != d:
                continue
            found = True
            if not (clean[q] and (q == portal or q not in members)):
                return False
        return found

    while heap:
        d, p = heappop(heap)
        if p in settled or d > best[p]:
            continue
        settled.add(p)
        dist[p] = d
        stats.settled_nodes += 1

        q = pred[p]
        if q == -1:
            is_clean = True
        elif strict:
            is_clean = all_paths_clean(p, d)
        else:
            is_clean = clean[q] and (q == portal or q not in members)
        clean[p] = is_clean

        if p != portal and is_clean:
            if p in members:
                # Rule 1: member-to-portal shortcut.  Condition 2 excludes
                # the pair only when (p, portal, d(p, portal)) is an edge
                # of G *with that weight* — an original edge longer than
                # the shortest path does not make the shortcut redundant.
                if not (
                    network.has_edge(p, portal)
                    and network.edge_weight(p, portal) <= d * (1.0 + 1e-12)
                ):
                    index.add_shortcut(p, portal, d)
            else:
                # Rule 2: outside node whose shortest path first touches
                # P at this portal.
                keywords = network.keywords(p)
                for keyword in keywords:
                    per_portal = keyword_pairs.setdefault(keyword, {})
                    if portal not in per_portal:  # first settle == minimum
                        per_portal[portal] = d
                if node_policy is DLNodePolicy.ALL or (
                    node_policy is DLNodePolicy.OBJECTS and network.is_object(p)
                ):
                    node_pairs.setdefault(p, []).append((portal, d))

        nbrs, wts, lo, hi = row_of(p)
        for i in range(lo, hi):
            v = nbrs[i]
            if v in settled:
                continue
            nd = d + wts[i]
            stats.relaxed_edges += 1
            if nd <= max_radius and nd < best.get(v, math.inf):
                best[v] = nd
                pred[v] = p
                heappush(heap, (nd, v))


def build_npd_index(
    network: RoadNetwork,
    fragment: Fragment,
    config: NPDBuildConfig | None = None,
) -> tuple[NPDIndex, BuildStats]:
    """Build ``IND(P)`` for one fragment (Algorithm 1).

    Returns the sealed index together with construction statistics.  The
    search touches the whole network (construction is an offline, global
    computation — §4.1) but the *output* concerns only ``fragment``,
    which is what makes construction fragment-parallel.
    """
    config = config or NPDBuildConfig()
    max_radius = config.resolve_max_radius(network)
    index = NPDIndex(
        fragment_id=fragment.fragment_id,
        max_radius=max_radius,
        node_policy=config.node_policy,
        directed=network.directed,
    )
    stats = BuildStats(fragment_id=fragment.fragment_id, num_portals=fragment.num_portals)
    keyword_pairs: dict[str, dict[int, float]] = {}
    node_pairs: dict[int, list[tuple[int, float]]] = {}

    started = time.perf_counter()
    for portal in sorted(fragment.portals):
        _portal_search(
            network,
            fragment.members,
            portal,
            max_radius,
            index,
            keyword_pairs,
            node_pairs,
            stats,
            strict=config.strict_tie_rules,
        )
    index.seal(
        {kw: list(per_portal.items()) for kw, per_portal in keyword_pairs.items()},
        node_pairs,
    )
    stats.wall_seconds = time.perf_counter() - started
    return index, stats


def build_all_indexes(
    network: RoadNetwork,
    fragments: list[Fragment],
    config: NPDBuildConfig | None = None,
) -> tuple[list[NPDIndex], list[BuildStats]]:
    """Build the NPD-index of every fragment (serially, in fragment order).

    The per-fragment builds are independent — the paper runs one per
    machine; :mod:`repro.dist.parallel` offers a process-parallel
    driver — but this serial form is what the deterministic tests and
    single-process benchmarks use.
    """
    indexes: list[NPDIndex] = []
    stats: list[BuildStats] = []
    for fragment in fragments:
        index, stat = build_npd_index(network, fragment, config)
        indexes.append(index)
        stats.append(stat)
    return indexes, stats
