"""Cost model and load-balance analysis (paper §5.1–§5.2).

* :func:`theorem5_cost` — the per-fragment time-complexity estimate
  ``Σⱼ (αⱼ + β + |P ∩ R(ωⱼ,r)| · log |P ∩ R(ωⱼ,r)|)``;
* :func:`makespan` — list-scheduling of task costs onto machines under
  the paper's strategy ("an un-assigned task must be assigned to certain
  idle machine if there are idle machines");
* :func:`unbalance_factor` — the observed ``U = max cost(Mᵢ)/cost(Mⱼ)``;
* :func:`theorem6_bound` — the guaranteed bound
  ``U ≤ 1 + max cost(Pₖ) / min cost(Pₖ)``.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Sequence

from repro.core.npd import NPDIndex
from repro.exceptions import DisksError

__all__ = [
    "theorem5_cost",
    "makespan",
    "assign_tasks",
    "unbalance_factor",
    "theorem6_bound",
]


def theorem5_cost(
    index: NPDIndex,
    keywords: Sequence[str],
    coverage_sizes: Sequence[int],
) -> float:
    """Theorem 5's abstract operation count for one fragment task.

    ``keywords`` are the query's keyword sources; ``coverage_sizes`` the
    corresponding measured ``|P ∩ R(ωⱼ, r)|`` values.
    """
    if len(keywords) != len(coverage_sizes):
        raise DisksError("keywords and coverage_sizes must align")
    beta = index.num_shortcuts
    total = 0.0
    for keyword, size in zip(keywords, coverage_sizes):
        alpha = index.alpha(keyword)
        total += alpha + beta
        if size > 1:
            total += size * math.log2(size)
    return total


def assign_tasks(task_costs: Sequence[float], num_machines: int) -> list[list[int]]:
    """Assign tasks (in arrival order) to the earliest-idle machine.

    Returns the task indexes handled by each machine.  This is the
    paper's §5.2 strategy, i.e. classic list scheduling.
    """
    if num_machines < 1:
        raise DisksError("need at least one machine")
    finish: list[tuple[float, int]] = [(0.0, m) for m in range(num_machines)]
    plan: list[list[int]] = [[] for _ in range(num_machines)]
    for task, cost in enumerate(task_costs):
        if cost < 0:
            raise DisksError(f"task {task} has negative cost {cost}")
        idle_at, machine = heappop(finish)
        plan[machine].append(task)
        heappush(finish, (idle_at + cost, machine))
    return plan


def makespan(task_costs: Sequence[float], num_machines: int) -> float:
    """Response time of the task set under list scheduling.

    With ``num_machines >= len(task_costs)`` (the paper's default of one
    fragment per machine) this is simply the slowest task.
    """
    plan = assign_tasks(task_costs, num_machines)
    return max(
        (sum(task_costs[t] for t in tasks) for tasks in plan if tasks),
        default=0.0,
    )


def unbalance_factor(machine_costs: Sequence[float]) -> float:
    """Observed unbalance ``U`` over machines that received work (§5.2).

    ``U = max_{i≠j} cost(Mᵢ)/cost(Mⱼ)``; returns 1.0 for fewer than two
    loaded machines and ``inf`` if some loaded machine cost is zero while
    another is positive.
    """
    costs = list(machine_costs)
    if len(costs) < 2:
        return 1.0
    top, bottom = max(costs), min(costs)
    if top <= 0.0:
        return 1.0
    if bottom <= 0.0:
        return math.inf
    return top / bottom


def theorem6_bound(task_costs: Sequence[float]) -> float:
    """Theorem 6's bound ``U ≤ 1 + max cost(Pₖ)/min cost(Pₖ)``."""
    positive = [c for c in task_costs if c > 0.0]
    if not positive:
        return 1.0
    return 1.0 + max(positive) / min(positive)
