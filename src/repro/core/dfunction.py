"""D-functions: distributable set functions over keyword coverages (§3.1).

The paper defines a *D-function* as a left-associative chain
``F(X₁,…,Xₖ) = X₁ θ₁ … θₖ₋₁ Xₖ`` with ``θ ∈ {∪, ∩, −}`` and proves
(Lemma 1) that it distributes over node-disjoint fragments:

    F(X₁,…,Xₖ) = ⋃ᵢ F(X₁ ∩ Uᵢ, …, Xₖ ∩ Uᵢ)

The proof only uses that every operator satisfies
``(X θ Y) ∩ U = (X ∩ U) θ (Y ∩ U)``, which holds for all three — so the
distributivity extends verbatim from chains to *arbitrary expression
trees* over the same operators.  This module implements both:
:class:`DFunction` (the paper's chain) and :class:`DExpression`
(parenthesised trees, the §5.4 Q-class generalisation), with the chain
compiling into a tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.exceptions import QueryError

__all__ = ["SetOp", "DFunction", "DExpression", "term", "union", "intersect", "subtract"]


class SetOp(Enum):
    """The three D-function operators ``{∪, ∩, −}``."""

    UNION = "union"
    INTERSECT = "intersect"
    SUBTRACT = "subtract"

    def apply(self, left: frozenset[int] | set[int], right: frozenset[int] | set[int]) -> set[int]:
        """Apply this operator to two node sets."""
        if self is SetOp.UNION:
            return set(left) | set(right)
        if self is SetOp.INTERSECT:
            return set(left) & set(right)
        return set(left) - set(right)

    @property
    def symbol(self) -> str:
        """Mathematical glyph, for display."""
        return {"union": "∪", "intersect": "∩", "subtract": "−"}[self.value]


@dataclass(frozen=True)
class DExpression:
    """A D-function expression tree.

    Leaves reference term indexes (``op is None``); internal nodes apply
    a :class:`SetOp` to two subtrees.  Build leaves with :func:`term` and
    combine with :func:`union` / :func:`intersect` / :func:`subtract` or
    the ``|``, ``&``, ``-`` operators.
    """

    op: SetOp | None = None
    index: int | None = None
    left: "DExpression | None" = None
    right: "DExpression | None" = None

    def __post_init__(self) -> None:
        if self.op is None:
            if self.index is None or self.index < 0 or self.left or self.right:
                raise QueryError("a leaf needs a non-negative term index and no children")
        else:
            if self.left is None or self.right is None or self.index is not None:
                raise QueryError("an operator node needs two children and no index")

    # Operator sugar ----------------------------------------------------
    def __or__(self, other: "DExpression") -> "DExpression":
        return DExpression(op=SetOp.UNION, left=self, right=other)

    def __and__(self, other: "DExpression") -> "DExpression":
        return DExpression(op=SetOp.INTERSECT, left=self, right=other)

    def __sub__(self, other: "DExpression") -> "DExpression":
        return DExpression(op=SetOp.SUBTRACT, left=self, right=other)

    # Introspection -----------------------------------------------------
    def arity(self) -> int:
        """1 + the largest term index referenced."""
        if self.op is None:
            assert self.index is not None
            return self.index + 1
        assert self.left is not None and self.right is not None
        return max(self.left.arity(), self.right.arity())

    def referenced_terms(self) -> set[int]:
        """All term indexes appearing in the tree."""
        if self.op is None:
            assert self.index is not None
            return {self.index}
        assert self.left is not None and self.right is not None
        return self.left.referenced_terms() | self.right.referenced_terms()

    def evaluate(self, coverages: Sequence[frozenset[int] | set[int]]) -> set[int]:
        """Evaluate the tree against per-term coverage sets."""
        if self.op is None:
            assert self.index is not None
            if self.index >= len(coverages):
                raise QueryError(
                    f"expression references term {self.index} but only "
                    f"{len(coverages)} coverages were supplied"
                )
            return set(coverages[self.index])
        assert self.left is not None and self.right is not None
        return self.op.apply(self.left.evaluate(coverages), self.right.evaluate(coverages))

    def __str__(self) -> str:
        if self.op is None:
            return f"X{self.index}"
        return f"({self.left} {self.op.symbol} {self.right})"


def term(index: int) -> DExpression:
    """Leaf expression referencing coverage term ``index``."""
    return DExpression(index=index)


def union(left: DExpression, right: DExpression) -> DExpression:
    """``left ∪ right``."""
    return DExpression(op=SetOp.UNION, left=left, right=right)


def intersect(left: DExpression, right: DExpression) -> DExpression:
    """``left ∩ right``."""
    return DExpression(op=SetOp.INTERSECT, left=left, right=right)


def subtract(left: DExpression, right: DExpression) -> DExpression:
    """``left − right``."""
    return DExpression(op=SetOp.SUBTRACT, left=left, right=right)


@dataclass(frozen=True)
class DFunction:
    """The paper's left-associative operator chain ``X₁ θ₁ … θₖ₋₁ Xₖ``."""

    ops: tuple[SetOp, ...]

    @property
    def arity(self) -> int:
        """Number of coverage sets the chain consumes."""
        return len(self.ops) + 1

    @classmethod
    def all_intersect(cls, arity: int) -> "DFunction":
        """The SGKQ chain: ``X₁ ∩ … ∩ Xₖ``."""
        if arity < 1:
            raise QueryError("a D-function needs at least one term")
        return cls(tuple([SetOp.INTERSECT] * (arity - 1)))

    def evaluate(self, coverages: Sequence[frozenset[int] | set[int]]) -> set[int]:
        """Left-associative evaluation over per-term coverage sets."""
        if len(coverages) != self.arity:
            raise QueryError(
                f"D-function of arity {self.arity} applied to {len(coverages)} sets"
            )
        result = set(coverages[0])
        for op, coverage in zip(self.ops, coverages[1:]):
            result = op.apply(result, coverage)
        return result

    def to_expression(self) -> DExpression:
        """Compile the chain into an equivalent :class:`DExpression`."""
        expr = term(0)
        for i, op in enumerate(self.ops, start=1):
            expr = DExpression(op=op, left=expr, right=term(i))
        return expr

    def __str__(self) -> str:
        parts = ["X0"]
        for i, op in enumerate(self.ops, start=1):
            parts.append(op.symbol)
            parts.append(f"X{i}")
        return " ".join(parts)
