"""Query objects: SGKQ, extended SGKQ, RKQ and the general Q-class (§2.2, §5.4).

Every supported query reduces to a :class:`QClassQuery`: a list of
*coverage terms* — each a (source, radius) pair whose evaluation is a
keyword coverage ``R(ω, r)`` (Definition 4) — combined by a D-function.

The reductions implemented here follow §3.1 exactly:

* ``SGKQ(ω₁,…,ωₖ, r)``      → ``R(ω₁,r) ∩ … ∩ R(ωₖ,r)``
* far-away extension (Q2)    → ``R(ω_keep, 0) − R(ω_avoid, r)``
* any-of extension (Q5)      → ``R(ω₁,r) ∪ R(ω₂,r)``
* ``RKQ(l, ω₁,…,ωₖ, r)``     → ``R(l, r) ∩ R(ω₁,0) ∩ … ∩ R(ωₖ,0)``
  (the query location is "treated as a keyword", i.e. becomes a node
  source term).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import QueryError
from repro.core.dfunction import DExpression, DFunction, SetOp, term

__all__ = [
    "KeywordSource",
    "NodeSource",
    "CoverageTerm",
    "QClassQuery",
    "sgkq",
    "sgkq_extended",
    "rkq",
]


@dataclass(frozen=True)
class KeywordSource:
    """A coverage source that is a keyword ``ω``."""

    keyword: str

    def __post_init__(self) -> None:
        if not self.keyword:
            raise QueryError("keyword sources need a non-empty keyword")

    def __str__(self) -> str:
        return f"kw:{self.keyword}"


@dataclass(frozen=True)
class NodeSource:
    """A coverage source that is a concrete node (an RKQ query location)."""

    node: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise QueryError("node sources need a non-negative node id")

    def __str__(self) -> str:
        return f"node:{self.node}"


Source = KeywordSource | NodeSource


@dataclass(frozen=True)
class CoverageTerm:
    """One keyword-coverage operand ``R(source, radius)``."""

    source: Source
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise QueryError("coverage radius must be non-negative")

    def __str__(self) -> str:
        return f"R({self.source}, {self.radius:g})"


@dataclass(frozen=True)
class QClassQuery:
    """A Q-class query: coverage terms combined by a D-function (§5.4).

    ``expression`` may be any D-expression over the terms; the plain
    constructors build the paper's left-associative chains.  ``label``
    is carried through reports for benchmark readability.
    """

    terms: tuple[CoverageTerm, ...]
    expression: DExpression
    label: str = ""

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("a query needs at least one coverage term")
        referenced = self.expression.referenced_terms()
        if max(referenced) >= len(self.terms):
            raise QueryError(
                f"expression references term {max(referenced)} but the query has "
                f"only {len(self.terms)} terms"
            )

    @classmethod
    def from_chain(
        cls,
        terms: Sequence[CoverageTerm],
        ops: Sequence[SetOp],
        label: str = "",
    ) -> "QClassQuery":
        """Build from the paper's chain form ``X₁ θ₁ … θₖ₋₁ Xₖ``."""
        if len(ops) != len(terms) - 1:
            raise QueryError(
                f"a chain over {len(terms)} terms needs {len(terms) - 1} operators, "
                f"got {len(ops)}"
            )
        chain = DFunction(tuple(ops)) if ops else DFunction(())
        return cls(tuple(terms), chain.to_expression(), label)

    @property
    def max_radius(self) -> float:
        """Largest term radius — what must fit under the index ``maxR``."""
        return max(t.radius for t in self.terms)

    def keywords(self) -> list[str]:
        """All keyword-source keywords, in term order."""
        return [t.source.keyword for t in self.terms if isinstance(t.source, KeywordSource)]

    def node_sources(self) -> list[int]:
        """All node-source ids, in term order."""
        return [t.source.node for t in self.terms if isinstance(t.source, NodeSource)]

    def __str__(self) -> str:
        terms = ", ".join(str(t) for t in self.terms)
        return f"QClassQuery[{self.label or 'anon'}]({terms}; {self.expression})"


def sgkq(keywords: Iterable[str], radius: float, label: str = "") -> QClassQuery:
    """Spatial group keyword query (Definition 2).

    A node ``A`` is a result iff ``d(A, ωᵢ) ≤ radius`` for *every* query
    keyword — the intersection of the keyword coverages (§3.1).
    """
    kws = list(keywords)
    if not kws:
        raise QueryError("SGKQ needs at least one keyword")
    if len(set(kws)) != len(kws):
        raise QueryError("SGKQ keywords must be distinct")
    terms = tuple(CoverageTerm(KeywordSource(kw), radius) for kw in kws)
    ops = [SetOp.INTERSECT] * (len(terms) - 1)
    return QClassQuery.from_chain(terms, ops, label or f"SGKQ({len(kws)} kw, r={radius:g})")


def sgkq_extended(
    *,
    all_within: Sequence[tuple[str, float]] = (),
    any_within: Sequence[tuple[str, float]] = (),
    none_within: Sequence[tuple[str, float]] = (),
    label: str = "",
) -> QClassQuery:
    """The generalised SGKQ of §2.2 with per-keyword radiuses.

    ``all_within`` keywords must all be within their radius (∩);
    ``any_within`` keywords form a disjunction (∪); ``none_within``
    keywords are excluded zones (−), e.g. the paper's Q2
    ``R("shopping mall", 0) − R("pizza shop", 1km)``.
    """
    if not all_within and not any_within:
        raise QueryError("the query needs at least one positive condition")

    terms: list[CoverageTerm] = []
    expr: DExpression | None = None

    for keyword, radius in all_within:
        terms.append(CoverageTerm(KeywordSource(keyword), radius))
        leaf = term(len(terms) - 1)
        expr = leaf if expr is None else (expr & leaf)

    any_expr: DExpression | None = None
    for keyword, radius in any_within:
        terms.append(CoverageTerm(KeywordSource(keyword), radius))
        leaf = term(len(terms) - 1)
        any_expr = leaf if any_expr is None else (any_expr | leaf)
    if any_expr is not None:
        expr = any_expr if expr is None else (expr & any_expr)

    assert expr is not None
    for keyword, radius in none_within:
        terms.append(CoverageTerm(KeywordSource(keyword), radius))
        expr = expr - term(len(terms) - 1)

    return QClassQuery(tuple(terms), expr, label or "SGKQ-extended")


def rkq(location: int, keywords: Iterable[str], radius: float, label: str = "") -> QClassQuery:
    """Range keyword query (Definition 3).

    A node ``A`` is a result iff ``d(location, A) ≤ radius`` and ``A``
    contains every query keyword.  Reduced per §3.1 (Example 2):
    ``R(location, radius) ∩ R(ω₁, 0) ∩ … ∩ R(ωₖ, 0)``.
    """
    kws = list(keywords)
    if not kws:
        raise QueryError("RKQ needs at least one keyword")
    if len(set(kws)) != len(kws):
        raise QueryError("RKQ keywords must be distinct")
    terms = [CoverageTerm(NodeSource(location), radius)]
    terms.extend(CoverageTerm(KeywordSource(kw), 0.0) for kw in kws)
    ops = [SetOp.INTERSECT] * (len(terms) - 1)
    return QClassQuery.from_chain(
        terms, ops, label or f"RKQ(node {location}, {len(kws)} kw, r={radius:g})"
    )
