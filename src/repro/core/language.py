"""A small text query language for Q-class queries.

Applications (and the CLI) often want queries as strings rather than
Python constructors.  The grammar covers the whole Q-class of §5.4:

.. code-block:: text

    query   := expr
    expr    := term (('AND' | 'OR' | 'NOT') term)*      # left-associative
    term    := coverage | '(' expr ')'
    coverage:= 'NEAR' '(' source ',' radius ')'
             | 'HAS' '(' keyword ')'                    # sugar: NEAR(kw, 0)
             | 'WITHIN' '(' radius 'OF' node-id ')'     # node source
    source  := keyword | '#' node-id
    keyword := bare word or "quoted string"

``AND``/``OR``/``NOT`` map to ∩/∪/− (``NOT`` is the *binary* subtraction
of the paper's D-functions: ``a NOT b`` = a − b).  Examples::

    NEAR(supermarket, 5) AND NEAR(gym, 5) AND NEAR(hospital, 5)
    HAS("shopping mall") NOT NEAR("pizza shop", 1.0)
    WITHIN(4 OF #17) AND HAS(museum)
    (NEAR(university, 0.5) OR NEAR(park, 0.5)) NOT NEAR(highway, 0.1)

The parser is a classic hand-rolled tokenizer + recursive-descent with
precise error positions; identical coverage terms are deduplicated so
the expression tree can reference one term twice without evaluating it
twice.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.dfunction import DExpression, SetOp, term
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.exceptions import QueryError

__all__ = ["parse_query", "QueryParseError"]


class QueryParseError(QueryError):
    """A query string failed to parse; carries the offending position."""

    def __init__(self, message: str, position: int, text: str) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message} at position {position}\n  {text}\n  {pointer}")
        self.position = position


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<hash>\#)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<quoted>"(?:[^"\\]|\\.)*")
  | (?P<word>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT", "NEAR", "HAS", "WITHIN", "OF"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryParseError(f"unexpected character {text[position]!r}", position, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "word" and value.upper() in _KEYWORDS:
                tokens.append(_Token(value.upper(), value, position))
            else:
                tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0
        self._terms: list[CoverageTerm] = []
        self._term_ids: dict[CoverageTerm, int] = {}

    # Token plumbing ----------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise QueryParseError(
                f"expected {kind!r}, found {token.value or 'end of input'!r}",
                token.position,
                self._text,
            )
        return self._advance()

    def _fail(self, message: str) -> "QueryParseError":
        token = self._peek()
        return QueryParseError(message, token.position, self._text)

    # Grammar -----------------------------------------------------------
    def parse(self) -> QClassQuery:
        expr = self._parse_expr()
        if self._peek().kind != "eof":
            raise self._fail(f"unexpected trailing input {self._peek().value!r}")
        return QClassQuery(tuple(self._terms), expr, label=self._text.strip())

    def _parse_expr(self) -> DExpression:
        left = self._parse_term()
        while self._peek().kind in ("AND", "OR", "NOT"):
            op_token = self._advance()
            right = self._parse_term()
            op = {
                "AND": SetOp.INTERSECT,
                "OR": SetOp.UNION,
                "NOT": SetOp.SUBTRACT,
            }[op_token.kind]
            left = DExpression(op=op, left=left, right=right)
        return left

    def _parse_term(self) -> DExpression:
        token = self._peek()
        if token.kind == "lparen":
            self._advance()
            inner = self._parse_expr()
            self._expect("rparen")
            return inner
        if token.kind == "NEAR":
            return self._parse_near()
        if token.kind == "HAS":
            return self._parse_has()
        if token.kind == "WITHIN":
            return self._parse_within()
        raise self._fail(
            f"expected NEAR/HAS/WITHIN or '(', found {token.value or 'end of input'!r}"
        )

    def _parse_near(self) -> DExpression:
        self._expect("NEAR")
        self._expect("lparen")
        source = self._parse_source()
        self._expect("comma")
        radius = self._parse_number()
        self._expect("rparen")
        return self._register(CoverageTerm(source, radius))

    def _parse_has(self) -> DExpression:
        self._expect("HAS")
        self._expect("lparen")
        keyword = self._parse_keyword()
        self._expect("rparen")
        return self._register(CoverageTerm(KeywordSource(keyword), 0.0))

    def _parse_within(self) -> DExpression:
        self._expect("WITHIN")
        self._expect("lparen")
        radius = self._parse_number()
        self._expect("OF")
        self._expect("hash")
        node = int(self._expect("number").value)
        self._expect("rparen")
        return self._register(CoverageTerm(NodeSource(node), radius))

    def _parse_source(self):
        if self._peek().kind == "hash":
            self._advance()
            node_token = self._expect("number")
            if "." in node_token.value:
                raise QueryParseError(
                    "node ids must be integers", node_token.position, self._text
                )
            return NodeSource(int(node_token.value))
        return KeywordSource(self._parse_keyword())

    def _parse_keyword(self) -> str:
        token = self._peek()
        if token.kind == "quoted":
            self._advance()
            body = token.value[1:-1]
            return body.replace('\\"', '"').replace("\\\\", "\\")
        if token.kind == "word":
            self._advance()
            return token.value
        raise self._fail(f"expected a keyword, found {token.value or 'end of input'!r}")

    def _parse_number(self) -> float:
        return float(self._expect("number").value)

    def _register(self, coverage: CoverageTerm) -> DExpression:
        existing = self._term_ids.get(coverage)
        if existing is not None:
            return term(existing)
        index = len(self._terms)
        self._terms.append(coverage)
        self._term_ids[coverage] = index
        return term(index)


def parse_query(text: str) -> QClassQuery:
    """Parse a query string into a :class:`QClassQuery`.

    Raises :class:`QueryParseError` (a :class:`QueryError`) with the
    offending position on malformed input.
    """
    if not text or not text.strip():
        raise QueryParseError("empty query", 0, text)
    return _Parser(text).parse()
