"""Coordinator-side query planning and validation.

The coordinator receives a :class:`QClassQuery`, checks it against the
dataset and index metadata it holds (vocabulary, DL node policy, index
``maxR``), and decides which index level serves it — the bounded
``maxR`` index for ordinary radiuses or the unbounded twin of a bi-level
deployment for the rare ``r > maxR`` query (§5.5).  Worker machines then
execute the *same* query object; planning never needs fragment data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.npd import DLNodePolicy
from repro.core.queries import KeywordSource, NodeSource, QClassQuery
from repro.exceptions import (
    NodeNotFoundError,
    QueryError,
    RadiusExceededError,
    UnknownKeywordError,
)
from repro.graph.road_network import RoadNetwork

__all__ = ["QueryPlan", "plan_query"]


@dataclass(frozen=True)
class QueryPlan:
    """A validated query plus routing decisions.

    Attributes
    ----------
    query:
        The validated query (unchanged).
    use_unbounded:
        Whether the bi-level unbounded index must serve it.
    empty_keyword_terms:
        Indexes of keyword terms whose keyword occurs nowhere in the
        dataset — their coverages are necessarily empty, which workers
        can exploit without a search.
    """

    query: QClassQuery
    use_unbounded: bool = False
    empty_keyword_terms: tuple[int, ...] = ()


def plan_query(
    query: QClassQuery,
    network: RoadNetwork,
    *,
    max_radius: float,
    node_policy: DLNodePolicy,
    has_unbounded_level: bool = False,
    strict_keywords: bool = True,
) -> QueryPlan:
    """Validate ``query`` and route it to an index level.

    Raises
    ------
    UnknownKeywordError
        A keyword source is absent from the dataset and
        ``strict_keywords`` is set.
    NodeNotFoundError
        A node source references a nonexistent node.
    QueryError
        A node source cannot be answered under the built
        :class:`DLNodePolicy` (e.g. a junction location with the
        ``OBJECTS`` policy) — the index physically lacks its DL entries.
    RadiusExceededError
        ``query.max_radius > max_radius`` and no unbounded level exists.
    """
    vocabulary = network.all_keywords()
    empty_terms: list[int] = []
    for i, term in enumerate(query.terms):
        source = term.source
        if isinstance(source, KeywordSource):
            if source.keyword not in vocabulary:
                if strict_keywords:
                    raise UnknownKeywordError(source.keyword)
                empty_terms.append(i)
        elif isinstance(source, NodeSource):
            if not (0 <= source.node < network.num_nodes):
                raise NodeNotFoundError(source.node)
            if node_policy is DLNodePolicy.NONE:
                raise QueryError(
                    f"term {i} uses node source {source.node} but the index was "
                    "built with DLNodePolicy.NONE; rebuild with OBJECTS or ALL"
                )
            if node_policy is DLNodePolicy.OBJECTS and not network.is_object(source.node):
                raise QueryError(
                    f"term {i} uses junction node {source.node} as its location "
                    "but the index only carries DL entries for objects "
                    "(DLNodePolicy.OBJECTS); rebuild with DLNodePolicy.ALL or "
                    "use an object node"
                )

    use_unbounded = False
    if query.max_radius > max_radius:
        if not has_unbounded_level:
            raise RadiusExceededError(query.max_radius, max_radius)
        use_unbounded = True

    return QueryPlan(
        query=query,
        use_unbounded=use_unbounded,
        empty_keyword_terms=tuple(empty_terms),
    )
