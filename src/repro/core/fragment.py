"""Fragments of a partitioned road network (paper §3.2 notation).

A *fragment* ``P`` is the subgraph induced by one partition class: its
member nodes plus every edge whose two endpoints are both members.  An
edge whose endpoints lie in different fragments makes both endpoints
*portal nodes*; ``port(P)`` is the portal set of ``P``.

:class:`Fragment` materialises exactly the state a worker machine holds
about its own share of the network — member set, local adjacency, portal
set and the fragment-local keyword postings — independent of every other
fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition, validate_partition
from repro.text.inverted import FragmentKeywordIndex

__all__ = ["Fragment", "build_fragments"]


@dataclass(frozen=True)
class Fragment:
    """One fragment ``P`` of the road network.

    Attributes
    ----------
    fragment_id:
        Index of this fragment within its partition.
    members:
        The node set of ``P`` (frozen).
    portals:
        ``port(P)``: members with at least one cross-fragment edge.
    adjacency:
        Local adjacency restricted to edges inside ``P``, as
        ``{u: ((v, w), ...)}``.  For directed networks these are
        out-edges.
    keyword_index:
        Fragment-local keyword postings.
    directed:
        Whether the parent network is directed.
    """

    fragment_id: int
    members: frozenset[int]
    portals: frozenset[int]
    adjacency: dict[int, tuple[tuple[int, float], ...]]
    keyword_index: FragmentKeywordIndex
    directed: bool = False

    @property
    def num_members(self) -> int:
        """Node count of the fragment."""
        return len(self.members)

    @property
    def num_portals(self) -> int:
        """Portal-node count of the fragment."""
        return len(self.portals)

    @property
    def num_local_edges(self) -> int:
        """Edges fully inside the fragment (undirected counted once)."""
        arcs = sum(len(row) for row in self.adjacency.values())
        return arcs if self.directed else arcs // 2

    def contains(self, node: int) -> bool:
        """Whether ``node`` belongs to this fragment (``part(node) == P``)."""
        return node in self.members

    def local_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Fragment-internal out-edges of ``node``."""
        return self.adjacency.get(node, ())


def build_fragments(network: RoadNetwork, partition: Partition) -> list[Fragment]:
    """Materialise every fragment of ``partition`` over ``network``.

    Validates the partition first; the result list is indexed by
    fragment id.
    """
    validate_partition(network, partition)
    assignment = partition.assignment
    k = partition.num_fragments

    adjacency: list[dict[int, list[tuple[int, float]]]] = [dict() for _ in range(k)]
    portal_sets: list[set[int]] = [set() for _ in range(k)]

    for node in network.nodes():
        frag = assignment[node]
        row = adjacency[frag].setdefault(node, [])
        for v, w in network.neighbors(node):
            if assignment[v] == frag:
                row.append((v, w))
            else:
                portal_sets[frag].add(node)
                portal_sets[assignment[v]].add(v)
        if network.directed:
            # An incoming cross-edge also makes both endpoints portals.
            for v, w in network.in_neighbors(node):
                if assignment[v] != frag:
                    portal_sets[frag].add(node)
                    portal_sets[assignment[v]].add(v)

    members = partition.all_members()
    fragments: list[Fragment] = []
    for frag in range(k):
        fragments.append(
            Fragment(
                fragment_id=frag,
                members=frozenset(members[frag]),
                portals=frozenset(portal_sets[frag]),
                adjacency={
                    node: tuple(edges) for node, edges in adjacency[frag].items()
                },
                keyword_index=FragmentKeywordIndex(network, members[frag]),
                directed=network.directed,
            )
        )
    return fragments
