"""The road-network graph of paper Definition 1.

A road network ``G(V, E, W, K, L)`` is an edge-weighted graph whose nodes
are either *road junctions* or *objects* (points of interest); objects
carry a set of keywords drawn from a vocabulary.  The paper works with
undirected graphs and notes the method "can be easily adapted for the
directed graph"; :class:`RoadNetwork` supports both modes.

The class is immutable and backed by a CSR (compressed sparse row)
adjacency so that the Dijkstra-heavy index construction and query
evaluation iterate neighbours without per-call allocation.  Instances are
produced by :class:`repro.graph.build.RoadNetworkBuilder` or the
generators in :mod:`repro.graph.generators`.
"""

from __future__ import annotations

import math
from enum import IntEnum
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import GraphError, NodeNotFoundError

__all__ = ["NodeKind", "RoadNetwork"]


class NodeKind(IntEnum):
    """Whether a node is a bare road junction or a keyword-bearing object."""

    JUNCTION = 0
    OBJECT = 1


class RoadNetwork:
    """Immutable weighted graph with per-node keyword sets.

    Do not call the constructor directly in application code; use
    :class:`repro.graph.build.RoadNetworkBuilder`.  The constructor
    validates the CSR arrays it is handed so that a malformed builder bug
    fails loudly here rather than deep inside a search.

    Parameters
    ----------
    offsets, neighbors, weights:
        CSR adjacency of the *forward* direction.  ``offsets`` has
        ``num_nodes + 1`` entries; the neighbours of ``u`` are
        ``neighbors[offsets[u]:offsets[u + 1]]`` with matching weights.
        For undirected networks every edge appears in both endpoint rows.
    kinds:
        One :class:`NodeKind` per node.
    keywords:
        One ``frozenset`` of keyword strings per node (empty for
        junctions).
    positions:
        Optional ``(x, y)`` coordinates per node; generators always fill
        them, hand-built graphs may pass ``None``.
    directed:
        When true, ``offsets``/``neighbors``/``weights`` describe out-edges
        and ``reverse`` must hold the in-edge CSR.
    reverse:
        ``(roffsets, rneighbors, rweights)`` for directed graphs.
    """

    __slots__ = (
        "_offsets",
        "_neighbors",
        "_weights",
        "_kinds",
        "_keywords",
        "_positions",
        "_directed",
        "_roffsets",
        "_rneighbors",
        "_rweights",
        "_num_edges",
        "_avg_edge_weight",
    )

    def __init__(
        self,
        offsets: Sequence[int],
        neighbors: Sequence[int],
        weights: Sequence[float],
        kinds: Sequence[NodeKind],
        keywords: Sequence[frozenset[str]],
        positions: Sequence[tuple[float, float]] | None = None,
        directed: bool = False,
        reverse: tuple[Sequence[int], Sequence[int], Sequence[float]] | None = None,
    ) -> None:
        num_nodes = len(offsets) - 1
        if num_nodes < 0:
            raise GraphError("offsets must contain at least one entry")
        if len(neighbors) != len(weights):
            raise GraphError("neighbors and weights must have equal length")
        if offsets[0] != 0 or offsets[-1] != len(neighbors):
            raise GraphError("CSR offsets are inconsistent with the adjacency length")
        if len(kinds) != num_nodes or len(keywords) != num_nodes:
            raise GraphError("kinds/keywords length must equal the node count")
        if positions is not None and len(positions) != num_nodes:
            raise GraphError("positions length must equal the node count")
        if directed and reverse is None:
            raise GraphError("directed networks require the reverse CSR")
        if not directed and reverse is not None:
            raise GraphError("undirected networks must not carry a reverse CSR")

        self._offsets = tuple(offsets)
        self._neighbors = tuple(neighbors)
        self._weights = tuple(weights)
        self._kinds = tuple(NodeKind(k) for k in kinds)
        self._keywords = tuple(frozenset(ks) for ks in keywords)
        self._positions = tuple(positions) if positions is not None else None
        self._directed = bool(directed)
        if reverse is not None:
            roffsets, rneighbors, rweights = reverse
            if roffsets[0] != 0 or roffsets[-1] != len(rneighbors):
                raise GraphError("reverse CSR offsets are inconsistent")
            if len(roffsets) - 1 != num_nodes:
                raise GraphError("reverse CSR node count mismatch")
            self._roffsets = tuple(roffsets)
            self._rneighbors = tuple(rneighbors)
            self._rweights = tuple(rweights)
        else:
            self._roffsets = self._offsets
            self._rneighbors = self._neighbors
            self._rweights = self._weights

        arc_count = len(self._neighbors)
        self._num_edges = arc_count if directed else arc_count // 2
        total = sum(self._weights)
        if self._num_edges:
            divisor = arc_count if directed else arc_count
            self._avg_edge_weight = total / divisor if divisor else 0.0
        else:
            self._avg_edge_weight = 0.0

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (junctions plus objects)."""
        return len(self._offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self._num_edges

    @property
    def directed(self) -> bool:
        """Whether the network is directed."""
        return self._directed

    @property
    def average_edge_weight(self) -> float:
        """Mean edge weight ``ē`` — the unit of the paper's ``maxR = λ·ē``."""
        return self._avg_edge_weight

    @property
    def has_positions(self) -> bool:
        """Whether nodes carry ``(x, y)`` coordinates."""
        return self._positions is not None

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "directed" if self._directed else "undirected"
        return (
            f"RoadNetwork({mode}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"objects={self.num_objects()})"
        )

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Yield ``(neighbor, weight)`` for every out-edge of ``node``."""
        self._check_node(node)
        lo, hi = self._offsets[node], self._offsets[node + 1]
        nbrs, wts = self._neighbors, self._weights
        for i in range(lo, hi):
            yield nbrs[i], wts[i]

    def in_neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Yield ``(neighbor, weight)`` for every in-edge of ``node``.

        On undirected networks this is identical to :meth:`neighbors`.
        """
        self._check_node(node)
        lo, hi = self._roffsets[node], self._roffsets[node + 1]
        nbrs, wts = self._rneighbors, self._rweights
        for i in range(lo, hi):
            yield nbrs[i], wts[i]

    def neighbor_slice(self, node: int) -> tuple[tuple[int, ...], tuple[float, ...], int, int]:
        """Return the raw CSR row bounds for hot loops.

        Returns ``(neighbors, weights, lo, hi)`` so a Dijkstra inner loop
        can index the shared tuples directly instead of going through a
        generator.
        """
        self._check_node(node)
        return self._neighbors, self._weights, self._offsets[node], self._offsets[node + 1]

    def in_neighbor_slice(
        self, node: int
    ) -> tuple[tuple[int, ...], tuple[float, ...], int, int]:
        """Raw reverse-CSR row bounds (same contract as :meth:`neighbor_slice`)."""
        self._check_node(node)
        return (
            self._rneighbors,
            self._rweights,
            self._roffsets[node],
            self._roffsets[node + 1],
        )

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        self._check_node(node)
        return self._offsets[node + 1] - self._offsets[node]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge (arc, if directed) ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        lo, hi = self._offsets[u], self._offsets[u + 1]
        return v in self._neighbors[lo:hi]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; raises :class:`GraphError` if absent."""
        self._check_node(u)
        self._check_node(v)
        lo, hi = self._offsets[u], self._offsets[u + 1]
        for i in range(lo, hi):
            if self._neighbors[i] == v:
                return self._weights[i]
        raise GraphError(f"no edge between {u} and {v}")

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate edges as ``(u, v, weight)``.

        Undirected edges are yielded once, with ``u < v``.
        """
        for u in range(self.num_nodes):
            lo, hi = self._offsets[u], self._offsets[u + 1]
            for i in range(lo, hi):
                v = self._neighbors[i]
                if self._directed or u < v:
                    yield u, v, self._weights[i]

    # ------------------------------------------------------------------
    # Node attributes
    # ------------------------------------------------------------------
    def kind(self, node: int) -> NodeKind:
        """The :class:`NodeKind` of ``node``."""
        self._check_node(node)
        return self._kinds[node]

    def is_object(self, node: int) -> bool:
        """Whether ``node`` is an object (point of interest)."""
        self._check_node(node)
        return self._kinds[node] is NodeKind.OBJECT

    def keywords(self, node: int) -> frozenset[str]:
        """Keyword set of ``node`` (empty for junctions)."""
        self._check_node(node)
        return self._keywords[node]

    def has_keyword(self, node: int, keyword: str) -> bool:
        """Whether ``node`` carries ``keyword``."""
        self._check_node(node)
        return keyword in self._keywords[node]

    def position(self, node: int) -> tuple[float, float]:
        """The ``(x, y)`` coordinate of ``node``.

        Raises :class:`GraphError` when the network has no coordinates.
        """
        self._check_node(node)
        if self._positions is None:
            raise GraphError("this road network carries no coordinates")
        return self._positions[node]

    def nodes(self) -> range:
        """All node ids, as a ``range``."""
        return range(self.num_nodes)

    def object_nodes(self) -> Iterator[int]:
        """Iterate node ids of object nodes."""
        for node, kind in enumerate(self._kinds):
            if kind is NodeKind.OBJECT:
                yield node

    def num_objects(self) -> int:
        """Number of object nodes."""
        return sum(1 for k in self._kinds if k is NodeKind.OBJECT)

    def keyword_nodes(self, keyword: str) -> Iterator[int]:
        """Iterate nodes carrying ``keyword`` (linear scan).

        For repeated lookups build a
        :class:`repro.text.inverted.InvertedIndex` instead.
        """
        for node, kws in enumerate(self._keywords):
            if keyword in kws:
                yield node

    def all_keywords(self) -> frozenset[str]:
        """The keyword vocabulary actually used by this network."""
        vocab: set[str] = set()
        for kws in self._keywords:
            vocab.update(kws)
        return frozenset(vocab)

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the network is (weakly) connected."""
        if self.num_nodes == 0:
            return True
        seen = bytearray(self.num_nodes)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            u = stack.pop()
            for v, _w in self.neighbors(u):
                if not seen[v]:
                    seen[v] = 1
                    count += 1
                    stack.append(v)
            if self._directed:
                for v, _w in self.in_neighbors(u):
                    if not seen[v]:
                        seen[v] = 1
                        count += 1
                        stack.append(v)
        return count == self.num_nodes

    def connected_components(self) -> list[list[int]]:
        """Weakly connected components, each a sorted node list."""
        seen = bytearray(self.num_nodes)
        components: list[list[int]] = []
        for start in range(self.num_nodes):
            if seen[start]:
                continue
            comp = [start]
            seen[start] = 1
            stack = [start]
            while stack:
                u = stack.pop()
                for v, _w in self.neighbors(u):
                    if not seen[v]:
                        seen[v] = 1
                        comp.append(v)
                        stack.append(v)
                if self._directed:
                    for v, _w in self.in_neighbors(u):
                        if not seen[v]:
                            seen[v] = 1
                            comp.append(v)
                            stack.append(v)
            comp.sort()
            components.append(comp)
        return components

    def with_node_keywords(self, node: int, keywords: Iterable[str]) -> "RoadNetwork":
        """A derived network where ``node`` carries ``keywords``.

        The CSR adjacency and positions are shared (tuples are
        immutable), so this is O(num_nodes) and safe — the basis of the
        incremental keyword maintenance in
        :mod:`repro.core.maintenance`.  Only object nodes may carry
        keywords (mirrors the builder's rule).
        """
        self._check_node(node)
        kws = frozenset(keywords)
        if kws and self._kinds[node] is not NodeKind.OBJECT:
            raise GraphError("junction nodes cannot carry keywords")
        clone = object.__new__(RoadNetwork)
        for slot in RoadNetwork.__slots__:
            object.__setattr__(clone, slot, getattr(self, slot))
        new_keywords = list(self._keywords)
        new_keywords[node] = kws
        object.__setattr__(clone, "_keywords", tuple(new_keywords))
        return clone

    def with_edge_weight(self, u: int, v: int, weight: float) -> "RoadNetwork":
        """A derived network where edge ``u -> v`` weighs ``weight``.

        Like :meth:`with_node_keywords` this is copy-on-write: only the
        weight tuples are re-materialised, every other slot is shared.
        For undirected networks both CSR rows (``u -> v`` and ``v -> u``)
        are updated; for directed networks the forward *and* reverse CSR
        entries of the single arc are updated.  This is the structural
        half of the online-update model in :mod:`repro.live` — the graph
        topology never changes, only costs do.
        """
        self._check_node(u)
        self._check_node(v)
        if not (weight > 0) or math.isinf(weight):
            raise GraphError(f"edge weight must be positive and finite, got {weight}")

        def _patched(
            offsets: tuple[int, ...],
            neighbors: tuple[int, ...],
            weights: tuple[float, ...],
            a: int,
            b: int,
        ) -> tuple[float, ...] | None:
            lo, hi = offsets[a], offsets[a + 1]
            hits = [i for i in range(lo, hi) if neighbors[i] == b]
            if not hits:
                return None
            patched = list(weights)
            for i in hits:
                patched[i] = weight
            return tuple(patched)

        forward = _patched(self._offsets, self._neighbors, self._weights, u, v)
        if forward is None:
            raise GraphError(f"no edge between {u} and {v}")

        clone = object.__new__(RoadNetwork)
        for slot in RoadNetwork.__slots__:
            object.__setattr__(clone, slot, getattr(self, slot))
        if self._directed:
            object.__setattr__(clone, "_weights", forward)
            reverse = _patched(self._roffsets, self._rneighbors, self._rweights, v, u)
            if reverse is None:  # pragma: no cover - builder keeps CSRs in sync
                raise GraphError(f"reverse CSR is missing arc {u} -> {v}")
            object.__setattr__(clone, "_rweights", reverse)
        else:
            both = _patched(self._offsets, self._neighbors, forward, v, u)
            if both is None:  # pragma: no cover - undirected edges are symmetric
                raise GraphError(f"undirected edge {u} - {v} has no reverse row")
            object.__setattr__(clone, "_weights", both)
            # Undirected networks alias the reverse CSR to the forward one.
            object.__setattr__(clone, "_rweights", both)
        total = sum(clone._weights)
        arc_count = len(clone._weights)
        object.__setattr__(
            clone, "_avg_edge_weight", total / arc_count if arc_count else 0.0
        )
        return clone

    def keyword_frequencies(self) -> dict[str, int]:
        """Map each keyword to the number of nodes carrying it."""
        freq: dict[str, int] = {}
        for kws in self._keywords:
            for kw in kws:
                freq[kw] = freq.get(kw, 0) + 1
        return freq
