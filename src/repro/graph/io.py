"""Serialisation of road networks.

Two formats are supported:

* a human-readable edge-list text format (one ``node``/``edge`` record per
  line), convenient for small fixtures and interoperability;
* a JSON document (:func:`network_to_dict` / :func:`network_from_dict`),
  used by the example scripts and by the dataset cache.

Both round-trip exactly (node ids, kinds, keywords, positions, weights,
directedness).
"""

from __future__ import annotations

import json
from pathlib import Path
from urllib.parse import quote, unquote
from typing import Any, TextIO

from repro.exceptions import GraphError
from repro.graph.build import RoadNetworkBuilder
from repro.graph.road_network import NodeKind, RoadNetwork

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
]

_FORMAT_VERSION = 1


def write_edge_list(network: RoadNetwork, stream: TextIO) -> None:
    """Write ``network`` to ``stream`` in the text edge-list format.

    Lines are::

        H <version> <directed:0|1> <num_nodes> <has_positions:0|1>
        N <id> <kind> [x y] [keyword ...]
        E <u> <v> <weight>

    Keywords are percent-encoded so they may contain whitespace.
    """
    stream.write(
        f"H {_FORMAT_VERSION} {int(network.directed)} {network.num_nodes} "
        f"{int(network.has_positions)}\n"
    )
    for node in network.nodes():
        parts = ["N", str(node), str(int(network.kind(node)))]
        if network.has_positions:
            x, y = network.position(node)
            parts.append(repr(x))
            parts.append(repr(y))
        for kw in sorted(network.keywords(node)):
            parts.append(quote(kw, safe=""))
        stream.write(" ".join(parts) + "\n")
    for u, v, w in network.edges():
        stream.write(f"E {u} {v} {w!r}\n")


def read_edge_list(stream: TextIO) -> RoadNetwork:
    """Parse the text edge-list format written by :func:`write_edge_list`."""
    header = stream.readline().split()
    if len(header) != 5 or header[0] != "H":
        raise GraphError("missing or malformed edge-list header")
    version = int(header[1])
    if version != _FORMAT_VERSION:
        raise GraphError(f"unsupported edge-list version {version}")
    directed = bool(int(header[2]))
    num_nodes = int(header[3])
    has_positions = bool(int(header[4]))

    builder = RoadNetworkBuilder(directed=directed)
    seen_nodes = 0
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        tag, rest = line[0], line[2:]
        if tag == "N":
            fields = rest.split(" ")
            node_id = int(fields[0])
            kind = NodeKind(int(fields[1]))
            cursor = 2
            position = None
            if has_positions:
                position = (float(fields[2]), float(fields[3]))
                cursor = 4
            keywords = [unquote(tok) for tok in fields[cursor:] if tok]
            created = builder.add_node(kind, keywords, position)
            if created != node_id:
                raise GraphError(
                    f"node records must be contiguous and ordered; expected id "
                    f"{created}, got {node_id}"
                )
            seen_nodes += 1
        elif tag == "E":
            u_s, v_s, w_s = rest.split(" ")
            builder.add_edge(int(u_s), int(v_s), float(w_s))
        else:
            raise GraphError(f"unknown record tag {tag!r}")
    if seen_nodes != num_nodes:
        raise GraphError(f"header declared {num_nodes} nodes but found {seen_nodes}")
    return builder.build()


def network_to_dict(network: RoadNetwork) -> dict[str, Any]:
    """Represent ``network`` as a JSON-serialisable dictionary."""
    nodes = []
    for node in network.nodes():
        record: dict[str, Any] = {
            "kind": int(network.kind(node)),
            "keywords": sorted(network.keywords(node)),
        }
        if network.has_positions:
            record["pos"] = list(network.position(node))
        nodes.append(record)
    return {
        "version": _FORMAT_VERSION,
        "directed": network.directed,
        "nodes": nodes,
        "edges": [[u, v, w] for u, v, w in network.edges()],
    }


def network_from_dict(payload: dict[str, Any]) -> RoadNetwork:
    """Rebuild a road network from :func:`network_to_dict` output."""
    if payload.get("version") != _FORMAT_VERSION:
        raise GraphError(f"unsupported payload version {payload.get('version')!r}")
    builder = RoadNetworkBuilder(directed=bool(payload["directed"]))
    for record in payload["nodes"]:
        pos = record.get("pos")
        builder.add_node(
            NodeKind(record["kind"]),
            record.get("keywords", ()),
            tuple(pos) if pos is not None else None,
        )
    for u, v, w in payload["edges"]:
        builder.add_edge(int(u), int(v), float(w))
    return builder.build()


def save_network_json(network: RoadNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network)))


def load_network_json(path: str | Path) -> RoadNetwork:
    """Load a road network previously written by :func:`save_network_json`."""
    return network_from_dict(json.loads(Path(path).read_text()))
