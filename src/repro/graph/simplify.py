"""Road-network simplification: degree-2 chain contraction.

OSM-style road data represents geometry, not topology: long roads are
chains of degree-2 shape nodes.  Contracting those chains — replacing
``a - v - b`` by ``a - b`` with the summed weight whenever ``v`` is a
keyword-free degree-2 junction — shrinks the graph drastically while
preserving every shortest-path distance *between the retained nodes*,
which is all the spatial-keyword machinery ever measures (objects and
real intersections are never contracted).

The contraction is a worklist algorithm: removing a node can create a
parallel edge (we keep the shorter one; the longer is never on a
shortest path) which can in turn lower a neighbour's degree and make it
eligible.  Isolated all-eligible cycles retain their final two nodes
naturally because a simple graph cannot hold the would-be self-loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.build import RoadNetworkBuilder
from repro.graph.road_network import NodeKind, RoadNetwork

__all__ = ["SimplifiedNetwork", "simplify_network"]


@dataclass(frozen=True)
class SimplifiedNetwork:
    """Result of :func:`simplify_network`.

    Attributes
    ----------
    network:
        The contracted road network.
    node_mapping:
        ``{old_id: new_id}`` for every retained node; contracted nodes
        are absent.
    removed_count:
        How many shape nodes were contracted away.
    """

    network: RoadNetwork
    node_mapping: dict[int, int]
    removed_count: int

    def new_id(self, old_id: int) -> int:
        """New id of a retained node; raises ``KeyError`` if contracted."""
        return self.node_mapping[old_id]


def _eligible(network: RoadNetwork, adjacency: dict[int, dict[int, float]], node: int) -> bool:
    return (
        network.kind(node) is NodeKind.JUNCTION
        and not network.keywords(node)
        and len(adjacency[node]) == 2
    )


def simplify_network(
    network: RoadNetwork,
    *,
    protected: frozenset[int] = frozenset(),
) -> SimplifiedNetwork:
    """Contract keyword-free degree-2 junctions out of ``network``.

    ``protected`` nodes are never contracted (e.g. nodes an application
    must keep addressable).  Directed networks are rejected — one-way
    chain contraction needs flow-aware rules this library does not need.

    Shortest-path distances between all retained nodes are preserved
    exactly (property-tested against the oracle).
    """
    if network.directed:
        raise GraphError("simplify_network supports undirected networks only")

    adjacency: dict[int, dict[int, float]] = {
        node: dict(network.neighbors(node)) for node in network.nodes()
    }
    removed: set[int] = set()
    worklist = [
        node
        for node in network.nodes()
        if node not in protected and _eligible(network, adjacency, node)
    ]

    while worklist:
        v = worklist.pop()
        if v in removed or v in protected:
            continue
        if not _eligible(network, adjacency, v):
            continue
        (a, wa), (b, wb) = adjacency[v].items()
        if a == b:  # two parallel arcs cannot exist in a simple graph
            continue  # pragma: no cover - defensive
        through = wa + wb
        existing = adjacency[a].get(b)
        if existing is None or through < existing:
            adjacency[a][b] = through
            adjacency[b][a] = through
        # Detach v entirely.
        del adjacency[a][v]
        del adjacency[b][v]
        adjacency[v].clear()
        removed.add(v)
        # a/b degrees may have dropped (if the parallel edge collapsed),
        # possibly making them eligible now.
        for neighbor in (a, b):
            if neighbor not in protected and _eligible(network, adjacency, neighbor):
                worklist.append(neighbor)

    builder = RoadNetworkBuilder()
    node_mapping: dict[int, int] = {}
    for node in network.nodes():
        if node in removed:
            continue
        position = network.position(node) if network.has_positions else None
        node_mapping[node] = builder.add_node(
            network.kind(node), network.keywords(node), position
        )
    for old_u, new_u in node_mapping.items():
        for old_v, weight in adjacency[old_u].items():
            if old_u < old_v:
                builder.add_edge(new_u, node_mapping[old_v], weight)

    return SimplifiedNetwork(
        network=builder.build(),
        node_mapping=node_mapping,
        removed_count=len(removed),
    )
