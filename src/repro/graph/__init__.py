"""Road-network substrate (paper Definition 1).

This subpackage provides the weighted keyword-labelled graph the whole
system is built on: an immutable CSR-backed :class:`RoadNetwork`, an
incremental :class:`RoadNetworkBuilder`, synthetic generators standing in
for the paper's OSM extracts, text/JSON serialisation and summary
statistics.
"""

from repro.graph.road_network import NodeKind, RoadNetwork
from repro.graph.build import RoadNetworkBuilder, ObjectSpec, attach_objects
from repro.graph.generators import (
    GeneratorConfig,
    generate_grid_network,
    generate_delaunay_network,
    generate_road_network,
)
from repro.graph.io import (
    write_edge_list,
    read_edge_list,
    network_to_dict,
    network_from_dict,
    save_network_json,
    load_network_json,
)
from repro.graph.stats import NetworkStats, compute_stats
from repro.graph.simplify import SimplifiedNetwork, simplify_network

__all__ = [
    "SimplifiedNetwork",
    "simplify_network",
    "NodeKind",
    "RoadNetwork",
    "RoadNetworkBuilder",
    "ObjectSpec",
    "attach_objects",
    "GeneratorConfig",
    "generate_grid_network",
    "generate_delaunay_network",
    "generate_road_network",
    "write_edge_list",
    "read_edge_list",
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "NetworkStats",
    "compute_stats",
]
