"""Incremental construction of :class:`~repro.graph.road_network.RoadNetwork`.

The builder accumulates nodes and edges with validation, then lowers them
into the immutable CSR representation.  It also implements the paper's
preprocessing step (§6, *Datasets*): "we take each object as a node and
let it connect to its nearest network node" — see :func:`attach_objects`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import EdgeError, GraphError, NodeNotFoundError
from repro.graph.road_network import NodeKind, RoadNetwork

__all__ = ["RoadNetworkBuilder", "ObjectSpec", "attach_objects"]


@dataclass(frozen=True)
class ObjectSpec:
    """An object (point of interest) to be attached to a road network.

    Attributes
    ----------
    position:
        ``(x, y)`` location of the object.
    keywords:
        Keywords describing the object (e.g. ``{"restaurant", "seafood"}``).
    """

    position: tuple[float, float]
    keywords: frozenset[str]

    def __init__(self, position: tuple[float, float], keywords: Iterable[str]) -> None:
        object.__setattr__(self, "position", (float(position[0]), float(position[1])))
        object.__setattr__(self, "keywords", frozenset(keywords))


class RoadNetworkBuilder:
    """Mutable accumulator that produces an immutable :class:`RoadNetwork`.

    Example
    -------
    >>> b = RoadNetworkBuilder()
    >>> a = b.add_object(keywords={"school"})
    >>> e = b.add_junction()
    >>> _ = b.add_edge(a, e, 2.0)
    >>> net = b.build()
    >>> net.keywords(a)
    frozenset({'school'})
    """

    def __init__(self, directed: bool = False) -> None:
        self._directed = directed
        self._kinds: list[NodeKind] = []
        self._keywords: list[frozenset[str]] = []
        self._positions: list[tuple[float, float] | None] = []
        self._edges: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._kinds)

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    @property
    def directed(self) -> bool:
        """Whether the network under construction is directed."""
        return self._directed

    def add_node(
        self,
        kind: NodeKind,
        keywords: Iterable[str] = (),
        position: tuple[float, float] | None = None,
    ) -> int:
        """Add a node and return its id.

        Junction nodes must not carry keywords (paper Fig. 1: junctions
        are keyword-free); attach keywords to object nodes.
        """
        kws = frozenset(keywords)
        if kind is NodeKind.JUNCTION and kws:
            raise GraphError("junction nodes cannot carry keywords")
        node = len(self._kinds)
        self._kinds.append(kind)
        self._keywords.append(kws)
        self._positions.append(
            (float(position[0]), float(position[1])) if position is not None else None
        )
        return node

    def add_junction(self, position: tuple[float, float] | None = None) -> int:
        """Add a keyword-free road-junction node."""
        return self.add_node(NodeKind.JUNCTION, (), position)

    def add_object(
        self,
        keywords: Iterable[str] = (),
        position: tuple[float, float] | None = None,
    ) -> int:
        """Add an object (point-of-interest) node."""
        return self.add_node(NodeKind.OBJECT, keywords, position)

    def set_keywords(self, node: int, keywords: Iterable[str]) -> None:
        """Replace the keyword set of an existing object node."""
        if not (0 <= node < len(self._kinds)):
            raise NodeNotFoundError(node)
        if self._kinds[node] is NodeKind.JUNCTION:
            raise GraphError("junction nodes cannot carry keywords")
        self._keywords[node] = frozenset(keywords)

    def position(self, node: int) -> tuple[float, float] | None:
        """Position of an already-added node (``None`` if unset)."""
        if not (0 <= node < len(self._kinds)):
            raise NodeNotFoundError(node)
        return self._positions[node]

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float, *, keep_min: bool = False) -> tuple[int, int]:
        """Add edge ``(u, v, weight)``; returns the canonical key.

        Weights must be strictly positive (the index construction and the
        query-time Dijkstra both assume a metric with positive edge
        lengths).  Duplicate edges raise :class:`EdgeError` unless
        ``keep_min`` is set, in which case the smaller weight wins.
        """
        n = len(self._kinds)
        if not (0 <= u < n):
            raise NodeNotFoundError(u)
        if not (0 <= v < n):
            raise NodeNotFoundError(v)
        if u == v:
            raise EdgeError(f"self-loop on node {u} is not allowed")
        w = float(weight)
        if not math.isfinite(w) or w <= 0.0:
            raise EdgeError(f"edge ({u}, {v}) has non-positive or non-finite weight {weight!r}")
        key = (u, v) if self._directed or u < v else (v, u)
        if key in self._edges:
            if not keep_min:
                raise EdgeError(f"duplicate edge {key}; pass keep_min=True to merge")
            self._edges[key] = min(self._edges[key], w)
        else:
            self._edges[key] = w
        return key

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` has been added."""
        key = (u, v) if self._directed or u < v else (v, u)
        return key in self._edges

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def build(self) -> RoadNetwork:
        """Lower the accumulated nodes and edges into a :class:`RoadNetwork`."""
        n = len(self._kinds)
        out_deg = [0] * n
        in_deg = [0] * n
        for (u, v) in self._edges:
            out_deg[u] += 1
            in_deg[v] += 1
            if not self._directed:
                out_deg[v] += 1

        offsets = [0] * (n + 1)
        for i in range(n):
            offsets[i + 1] = offsets[i] + out_deg[i]
        arc_count = offsets[-1]
        neighbors = [0] * arc_count
        weights = [0.0] * arc_count
        cursor = list(offsets[:n])
        for (u, v), w in self._edges.items():
            neighbors[cursor[u]] = v
            weights[cursor[u]] = w
            cursor[u] += 1
            if not self._directed:
                neighbors[cursor[v]] = u
                weights[cursor[v]] = w
                cursor[v] += 1

        reverse = None
        if self._directed:
            roffsets = [0] * (n + 1)
            for i in range(n):
                roffsets[i + 1] = roffsets[i] + in_deg[i]
            rneighbors = [0] * roffsets[-1]
            rweights = [0.0] * roffsets[-1]
            rcursor = list(roffsets[:n])
            for (u, v), w in self._edges.items():
                rneighbors[rcursor[v]] = u
                rweights[rcursor[v]] = w
                rcursor[v] += 1
            reverse = (roffsets, rneighbors, rweights)

        positions: list[tuple[float, float]] | None
        if any(p is not None for p in self._positions):
            if any(p is None for p in self._positions):
                raise GraphError(
                    "either all nodes must have positions or none of them may"
                )
            positions = [p for p in self._positions if p is not None]
        else:
            positions = None

        return RoadNetwork(
            offsets,
            neighbors,
            weights,
            self._kinds,
            self._keywords,
            positions,
            directed=self._directed,
            reverse=reverse,
        )


def _euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


class _GridIndex:
    """A uniform-grid spatial hash over positioned builder nodes.

    Used by :func:`attach_objects` to find the nearest road node of each
    object in roughly constant time instead of a linear scan.
    """

    def __init__(self, points: Sequence[tuple[int, tuple[float, float]]], cell: float) -> None:
        if cell <= 0:
            raise GraphError("grid cell size must be positive")
        self._cell = cell
        self._cells: dict[tuple[int, int], list[tuple[int, tuple[float, float]]]] = {}
        for node, pos in points:
            self._cells.setdefault(self._key(pos), []).append((node, pos))

    def _key(self, pos: tuple[float, float]) -> tuple[int, int]:
        return (int(math.floor(pos[0] / self._cell)), int(math.floor(pos[1] / self._cell)))

    def _scan_ring(
        self,
        pos: tuple[float, float],
        cx: int,
        cy: int,
        ring: int,
        best: tuple[int, float],
    ) -> tuple[int, float]:
        """Scan the square ring at Chebyshev distance ``ring`` around the cell."""
        best_node, best_dist = best
        for dx in range(-ring, ring + 1):
            for dy in range(-ring, ring + 1):
                if max(abs(dx), abs(dy)) != ring:
                    continue
                bucket = self._cells.get((cx + dx, cy + dy))
                if not bucket:
                    continue
                for node, p in bucket:
                    d = _euclidean(pos, p)
                    if d < best_dist:
                        best_dist = d
                        best_node = node
        return best_node, best_dist

    def nearest(self, pos: tuple[float, float]) -> tuple[int, float]:
        """Return ``(node, distance)`` of the nearest indexed point.

        Rings are scanned outward.  Once a candidate is known at distance
        ``d``, every point in an unscanned ring ``R`` lies at Euclidean
        distance at least ``(R - 1) * cell`` from ``pos``, so scanning
        stops as soon as ``(R - 1) * cell > d``.
        """
        cx, cy = self._key(pos)
        best: tuple[int, float] = (-1, math.inf)
        ring = 0
        while True:
            best = self._scan_ring(pos, cx, cy, ring, best)
            ring += 1
            if best[0] >= 0 and (ring - 1) * self._cell > best[1]:
                return best
            if ring > 100_000:  # pragma: no cover - defensive guard
                raise GraphError("grid search failed to find any node")


def attach_objects(
    builder: RoadNetworkBuilder,
    objects: Iterable[ObjectSpec],
    *,
    min_edge_weight: float = 1e-9,
) -> list[int]:
    """Attach objects to a road network under construction (paper §6).

    Each object becomes an :class:`~repro.graph.road_network.NodeKind.OBJECT`
    node connected to its nearest already-present positioned node by an
    edge whose weight is their Euclidean distance (floored at
    ``min_edge_weight`` so co-located objects still get a valid positive
    weight).

    Returns the list of newly created object node ids, in input order.
    """
    road_points = [
        (node, pos)
        for node in range(builder.num_nodes)
        if (pos := builder.position(node)) is not None
    ]
    if not road_points:
        raise GraphError("attach_objects requires positioned road nodes")

    xs = [p[1][0] for p in road_points]
    ys = [p[1][1] for p in road_points]
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1e-9)
    cell = span / max(1.0, math.sqrt(len(road_points)))
    grid = _GridIndex(road_points, cell)

    created: list[int] = []
    for spec in objects:
        nearest, dist = grid.nearest(spec.position)
        node = builder.add_object(spec.keywords, spec.position)
        builder.add_edge(node, nearest, max(dist, min_edge_weight))
        created.append(node)
    return created
