"""Summary statistics of a road network.

Used to check that synthetic datasets match the structural profile of the
paper's Table 1 (node/object/edge/keyword counts, degree and weight
distributions) and by the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.road_network import RoadNetwork

__all__ = ["NetworkStats", "compute_stats"]


@dataclass(frozen=True)
class NetworkStats:
    """A Table-1-style summary of a road network."""

    num_nodes: int
    num_objects: int
    num_edges: int
    num_keywords: int
    avg_degree: float
    max_degree: int
    avg_edge_weight: float
    min_edge_weight: float
    max_edge_weight: float
    avg_keywords_per_object: float
    connected: bool

    def as_table_row(self, name: str) -> str:
        """Format like the paper's Table 1 (name, nodes, objects, edges, keywords)."""
        return (
            f"{name:<10} {self.num_nodes:>10,} {self.num_objects:>9,} "
            f"{self.num_edges:>10,} {self.num_keywords:>9,}"
        )


def compute_stats(network: RoadNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``network``."""
    n = network.num_nodes
    degrees = [network.degree(u) for u in network.nodes()] if n else [0]
    weights = [w for _u, _v, w in network.edges()]
    num_objects = network.num_objects()
    kw_counts = [len(network.keywords(u)) for u in network.object_nodes()]
    vocabulary = network.all_keywords()
    return NetworkStats(
        num_nodes=n,
        num_objects=num_objects,
        num_edges=network.num_edges,
        num_keywords=len(vocabulary),
        avg_degree=(sum(degrees) / n) if n else 0.0,
        max_degree=max(degrees) if degrees else 0,
        avg_edge_weight=(sum(weights) / len(weights)) if weights else 0.0,
        min_edge_weight=min(weights) if weights else 0.0,
        max_edge_weight=max(weights) if weights else 0.0,
        avg_keywords_per_object=(sum(kw_counts) / num_objects) if num_objects else 0.0,
        connected=network.is_connected(),
    )
