"""Synthetic road-network generators.

The paper evaluates on OpenStreetMap extracts of Britain and Australia
(Table 1).  Those datasets cannot be bundled here, so these generators
produce structurally comparable stand-ins: connected, planar-ish,
low-degree graphs with metric (Euclidean-length) edge weights.

Two families are provided:

* :func:`generate_grid_network` — a perturbed lattice resembling an urban
  street grid (most of a country road network by node count).
* :func:`generate_delaunay_network` — a Delaunay triangulation of random
  points with long edges pruned, resembling inter-town road webs.

:func:`generate_road_network` dispatches on a :class:`GeneratorConfig`.
Keyword/object placement is deliberately *not* done here — see
:mod:`repro.workloads.datasets`, which composes a generator with the
clustered Zipf keyword placer to reproduce the paper's dataset shape.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.build import RoadNetworkBuilder
from repro.graph.road_network import RoadNetwork

__all__ = [
    "GeneratorConfig",
    "generate_grid_network",
    "generate_delaunay_network",
    "generate_road_network",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters for :func:`generate_road_network`.

    Attributes
    ----------
    kind:
        ``"grid"`` or ``"delaunay"``.
    num_nodes:
        Target junction count.  Grid networks round up to the nearest
        full rectangle.
    seed:
        RNG seed; generation is fully deterministic given the config.
    drop_fraction:
        Fraction of *removable* edges (those outside a spanning tree) to
        delete, creating dead ends and detours as in real road networks.
    jitter:
        Positional jitter applied to lattice points, as a fraction of the
        unit spacing (grid networks only).
    weight_noise:
        Multiplicative weight noise amplitude: each edge weight is scaled
        by ``uniform(1, 1 + weight_noise)``, modelling speed/curvature
        differences between segments of equal geometric length.
    directed:
        Build a directed network (each road becomes two anti-parallel
        arcs; a small fraction may be made one-way via ``oneway_fraction``).
    oneway_fraction:
        Fraction of roads kept as a single direction when ``directed``.
    """

    kind: str = "grid"
    num_nodes: int = 1024
    seed: int = 0
    drop_fraction: float = 0.12
    jitter: float = 0.25
    weight_noise: float = 0.3
    directed: bool = False
    oneway_fraction: float = 0.05


def _spanning_tree_edges(
    num_nodes: int,
    edges: list[tuple[int, int]],
    rng: random.Random,
) -> set[tuple[int, int]]:
    """Return the edges of a random spanning forest over ``edges``.

    Implemented as Kruskal over a shuffled edge list with union-find; used
    to mark edges that must be kept so that dropping the rest cannot
    disconnect the graph.
    """
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    shuffled = list(edges)
    rng.shuffle(shuffled)
    tree: set[tuple[int, int]] = set()
    for u, v in shuffled:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.add((u, v))
    return tree


def _assemble(
    positions: list[tuple[float, float]],
    edges: list[tuple[int, int]],
    config: GeneratorConfig,
    rng: random.Random,
) -> RoadNetwork:
    """Drop non-tree edges, apply weight noise and lower into a network."""
    tree = _spanning_tree_edges(len(positions), edges, rng)
    builder = RoadNetworkBuilder(directed=config.directed)
    for pos in positions:
        builder.add_junction(pos)
    for u, v in edges:
        if (u, v) not in tree and rng.random() < config.drop_fraction:
            continue
        base = math.hypot(
            positions[u][0] - positions[v][0], positions[u][1] - positions[v][1]
        )
        weight = max(base, 1e-9) * rng.uniform(1.0, 1.0 + max(0.0, config.weight_noise))
        if config.directed:
            builder.add_edge(u, v, weight)
            if (u, v) in tree or rng.random() >= config.oneway_fraction:
                builder.add_edge(v, u, weight)
        else:
            builder.add_edge(u, v, weight)
    return builder.build()


def generate_grid_network(config: GeneratorConfig) -> RoadNetwork:
    """Generate a perturbed street-grid network.

    Junctions sit near the points of a ``rows x cols`` unit lattice
    (jittered); edges connect lattice neighbours.  A random spanning tree
    is always retained so the result is connected.
    """
    if config.num_nodes < 2:
        raise GraphError("a road network needs at least two junctions")
    rows = max(2, int(math.sqrt(config.num_nodes)))
    cols = max(2, (config.num_nodes + rows - 1) // rows)
    rng = random.Random(config.seed)

    positions: list[tuple[float, float]] = []
    for r in range(rows):
        for c in range(cols):
            jx = rng.uniform(-config.jitter, config.jitter)
            jy = rng.uniform(-config.jitter, config.jitter)
            positions.append((c + jx, r + jy))

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return _assemble(positions, edges, config, rng)


def generate_delaunay_network(config: GeneratorConfig) -> RoadNetwork:
    """Generate a road network from a Delaunay triangulation.

    Random points are triangulated (via :mod:`scipy.spatial`); the longest
    edges are discarded first when applying ``drop_fraction``, which
    mimics how real road networks avoid long direct links, while a random
    spanning tree keeps the result connected.
    """
    try:
        from scipy.spatial import Delaunay  # imported lazily: optional dependency
    except ImportError as exc:  # pragma: no cover - scipy is present in CI
        raise GraphError("generate_delaunay_network requires scipy") from exc

    if config.num_nodes < 4:
        raise GraphError("Delaunay generation needs at least four points")
    rng = random.Random(config.seed)
    side = math.sqrt(config.num_nodes)
    positions = [
        (rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(config.num_nodes)
    ]
    tri = Delaunay(positions)
    edge_set: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edge_set.add((u, v) if u < v else (v, u))

    def length(edge: tuple[int, int]) -> float:
        (ux, uy), (vx, vy) = positions[edge[0]], positions[edge[1]]
        return math.hypot(ux - vx, uy - vy)

    # Longest edges are the least road-like: sort so that the drop pass
    # (random per edge) is biased toward them via a length-rank threshold.
    edges = sorted(edge_set, key=length)
    keep_count = int(len(edges) * (1.0 - config.drop_fraction))
    tree = _spanning_tree_edges(config.num_nodes, edges, rng)
    kept = [e for e in edges[:keep_count]] + [e for e in edges[keep_count:] if e in tree]

    trimmed = GeneratorConfig(
        kind=config.kind,
        num_nodes=config.num_nodes,
        seed=config.seed,
        drop_fraction=0.0,  # dropping already happened above
        jitter=config.jitter,
        weight_noise=config.weight_noise,
        directed=config.directed,
        oneway_fraction=config.oneway_fraction,
    )
    return _assemble(positions, kept, trimmed, rng)


def generate_road_network(config: GeneratorConfig) -> RoadNetwork:
    """Generate a junction-only road network according to ``config``."""
    if config.kind == "grid":
        return generate_grid_network(config)
    if config.kind == "delaunay":
        return generate_delaunay_network(config)
    raise GraphError(f"unknown generator kind {config.kind!r}")
