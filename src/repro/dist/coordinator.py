"""The cluster coordinator (paper §2.2 problem statement).

The coordinator receives a query, sends one task message per worker,
gathers one result message per fragment, and unions the local results
(Lemma 1's outer ⋃).  Response-time accounting follows §5.1: the
distributed response time is the *slowest machine's* task time (machines
run concurrently; a machine hosting several fragments runs them
serially) plus the modelled coordinator round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import FragmentTaskResult
from repro.core.queries import QClassQuery
from repro.dist.machine import WorkerMachine
from repro.dist.messages import QueryTaskMessage, TaskResultMessage
from repro.dist.network import COORDINATOR_ID, NetworkModel, TrafficLedger
from repro.exceptions import ClusterError

__all__ = ["ClusterResponse", "Coordinator"]


@dataclass(frozen=True)
class ClusterResponse:
    """Everything the coordinator knows after answering one query.

    Attributes
    ----------
    result_nodes:
        The global answer ``⋃ᵢ F(… ∩ Uᵢ)``.
    task_results:
        Per-fragment task outcomes, ordered by fragment id.
    machine_seconds:
        Serial task time per machine id (concurrent across machines).
    response_seconds:
        Makespan over machines + modelled communication time.
    communication_seconds:
        The modelled dispatch/collect transfer time alone.
    total_message_bytes:
        Bytes moved for this query (task + result messages).
    """

    result_nodes: frozenset[int]
    task_results: tuple[FragmentTaskResult, ...]
    machine_seconds: dict[int, float]
    response_seconds: float
    communication_seconds: float
    total_message_bytes: int


@dataclass
class Coordinator:
    """Dispatches queries to workers and merges their results."""

    machines: list[WorkerMachine]
    network: NetworkModel = field(default_factory=NetworkModel)
    ledger: TrafficLedger = field(default_factory=TrafficLedger)

    def execute(self, query: QClassQuery) -> ClusterResponse:
        """Answer ``query`` over all workers.

        Workers are simulated sequentially but timed individually; the
        reported ``response_seconds`` is what a concurrent deployment
        would observe (max over machines), matching how the paper reports
        distributed query time.
        """
        if not self.machines:
            raise ClusterError("the cluster has no worker machines")

        comm_seconds = 0.0
        total_bytes = 0
        machine_seconds: dict[int, float] = {}
        all_results: list[FragmentTaskResult] = []
        merged: set[int] = set()

        for machine in self.machines:
            task_msg = QueryTaskMessage(
                sender=COORDINATOR_ID, receiver=machine.machine_id, query=query
            )
            task_bytes = task_msg.estimated_bytes()
            self.ledger.record(COORDINATOR_ID, machine.machine_id, task_bytes, "task")
            comm_seconds += self.network.transfer_seconds(task_bytes)
            total_bytes += task_bytes

            results = machine.execute(query)
            machine_seconds[machine.machine_id] = sum(r.wall_seconds for r in results)
            all_results.extend(results)

            for message in machine.result_messages(results):
                result_bytes = message.estimated_bytes()
                self.ledger.record(message.sender, COORDINATOR_ID, result_bytes, "result")
                comm_seconds += self.network.transfer_seconds(result_bytes)
                total_bytes += result_bytes
                merged.update(message.result_nodes)

        response = max(machine_seconds.values()) + comm_seconds
        all_results.sort(key=lambda r: r.fragment_id)
        return ClusterResponse(
            result_nodes=frozenset(merged),
            task_results=tuple(all_results),
            machine_seconds=machine_seconds,
            response_seconds=response,
            communication_seconds=comm_seconds,
            total_message_bytes=total_bytes,
        )
