"""The cluster coordinator (paper §2.2 problem statement).

The coordinator receives a query, sends one task message per worker,
gathers one result message per fragment, and unions the local results
(Lemma 1's outer ⋃).  Response-time accounting follows §5.1: the
distributed response time is the *slowest machine's* task time (machines
run concurrently; a machine hosting several fragments runs them
serially) plus the modelled coordinator round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.executor import FragmentTaskResult
from repro.core.queries import QClassQuery
from repro.dist.machine import WorkerMachine
from repro.dist.messages import QueryTaskMessage, TaskResultMessage
from repro.dist.network import COORDINATOR_ID, NetworkModel, TrafficLedger
from repro.exceptions import ClusterError
from repro.obs.trace import Span, SpanCollector, TraceContext

__all__ = ["ClusterResponse", "Coordinator"]


@dataclass(frozen=True)
class ClusterResponse:
    """Everything the coordinator knows after answering one query.

    Attributes
    ----------
    result_nodes:
        The global answer ``⋃ᵢ F(… ∩ Uᵢ)``.
    task_results:
        Per-fragment task outcomes, ordered by fragment id.
    machine_seconds:
        Serial task time per machine id (concurrent across machines).
    response_seconds:
        Makespan over machines + modelled communication time.
    communication_seconds:
        The modelled dispatch/collect transfer time alone.
    total_message_bytes:
        Bytes moved for this query (task + result messages).
    spans:
        The trace spans recorded for this query (empty unless a
        :class:`~repro.obs.trace.TraceContext` was passed to
        :meth:`Coordinator.execute`).
    """

    result_nodes: frozenset[int]
    task_results: tuple[FragmentTaskResult, ...]
    machine_seconds: dict[int, float]
    response_seconds: float
    communication_seconds: float
    total_message_bytes: int
    spans: tuple[Span, ...] = ()


@dataclass
class Coordinator:
    """Dispatches queries to workers and merges their results."""

    machines: list[WorkerMachine]
    network: NetworkModel = field(default_factory=NetworkModel)
    ledger: TrafficLedger = field(default_factory=TrafficLedger)

    def execute(
        self, query: QClassQuery, *, trace: TraceContext | None = None
    ) -> ClusterResponse:
        """Answer ``query`` over all workers.

        Workers are simulated sequentially but timed individually; the
        reported ``response_seconds`` is what a concurrent deployment
        would observe (max over machines), matching how the paper reports
        distributed query time.

        With a ``trace`` context the response additionally carries the
        full span tree of the query: a root ``query`` span, one
        ``dispatch`` span per machine, and under each a modelled
        ``queue-wait`` span (duration = the task message's transfer
        time), the worker-side ``task``/``eval``/``union`` spans, and a
        modelled ``serialize`` span (duration = the result message's
        transfer time) — the same shape the real process clusters
        record, so trace trees are comparable across all three.
        """
        if not self.machines:
            raise ClusterError("the cluster has no worker machines")

        collector: SpanCollector | None = None
        root = None
        if trace is not None:
            collector = SpanCollector(trace.trace_id)
            root = collector.start("query", parent_id=trace.span_id)

        comm_seconds = 0.0
        total_bytes = 0
        machine_seconds: dict[int, float] = {}
        all_results: list[FragmentTaskResult] = []
        merged: set[int] = set()

        for machine in self.machines:
            task_msg = QueryTaskMessage(
                sender=COORDINATOR_ID, receiver=machine.machine_id, query=query
            )
            task_bytes = task_msg.estimated_bytes()
            self.ledger.record(COORDINATOR_ID, machine.machine_id, task_bytes, "task")
            task_transfer = self.network.transfer_seconds(task_bytes)
            comm_seconds += task_transfer
            total_bytes += task_bytes

            dispatch = None
            if collector is not None and root is not None:
                dispatch = collector.start(
                    "dispatch", parent_id=root.span_id, machine_id=machine.machine_id
                )
                now = dispatch.start
                collector.record(
                    "queue-wait",
                    now,
                    now + task_transfer,
                    parent_id=dispatch.span_id,
                    machine_id=machine.machine_id,
                    bytes=task_bytes,
                    modelled=True,
                )

            results = machine.execute(
                query,
                collector=collector,
                parent_id=dispatch.span_id if dispatch is not None else None,
            )
            machine_seconds[machine.machine_id] = sum(r.wall_seconds for r in results)
            all_results.extend(results)

            result_bytes_total = 0
            for message in machine.result_messages(results):
                result_bytes = message.estimated_bytes()
                self.ledger.record(message.sender, COORDINATOR_ID, result_bytes, "result")
                comm_seconds += self.network.transfer_seconds(result_bytes)
                total_bytes += result_bytes
                result_bytes_total += result_bytes
                merged.update(message.result_nodes)

            if collector is not None and dispatch is not None:
                now = perf_counter()
                collector.record(
                    "serialize",
                    now,
                    now + self.network.transfer_seconds(result_bytes_total),
                    parent_id=dispatch.span_id,
                    machine_id=machine.machine_id,
                    bytes=result_bytes_total,
                    modelled=True,
                )
                dispatch.finish()

        if root is not None:
            root.finish()

        response = max(machine_seconds.values()) + comm_seconds
        all_results.sort(key=lambda r: r.fragment_id)
        return ClusterResponse(
            result_nodes=frozenset(merged),
            task_results=tuple(all_results),
            machine_seconds=machine_seconds,
            response_seconds=response,
            communication_seconds=comm_seconds,
            total_message_bytes=total_bytes,
            spans=tuple(collector.spans) if collector is not None else (),
        )
