"""Network model and traffic ledger.

:class:`NetworkModel` converts message sizes into transfer times for the
modelled interconnect (default: the paper's 100 Mb switch).
:class:`TrafficLedger` records every transfer and *enforces* the design
guarantee that no worker ever talks to another worker (Theorem 3): such
a transfer raises :class:`CommunicationViolationError` the moment it is
recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CommunicationViolationError

__all__ = ["NetworkModel", "Transfer", "TrafficLedger", "COORDINATOR_ID"]

COORDINATOR_ID = -1


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth cost model for one interconnect.

    Defaults model the paper's cluster: a commodity switch at 100 Mb/s
    (12.5 MB/s) and a fraction-of-a-millisecond LAN round trip.
    """

    latency_seconds: float = 2e-4
    bandwidth_bytes_per_second: float = 12_500_000.0

    def transfer_seconds(self, num_bytes: int) -> float:
        """Modelled wall time to move ``num_bytes`` over one link."""
        if num_bytes < 0:
            raise ValueError("byte counts cannot be negative")
        return self.latency_seconds + num_bytes / self.bandwidth_bytes_per_second


@dataclass(frozen=True)
class Transfer:
    """One recorded message transfer."""

    sender: int
    receiver: int
    num_bytes: int
    kind: str


@dataclass
class TrafficLedger:
    """Append-only record of all

    transfers, with the worker-to-worker prohibition built in.
    """

    transfers: list[Transfer] = field(default_factory=list)

    def record(self, sender: int, receiver: int, num_bytes: int, kind: str) -> Transfer:
        """Record one transfer; rejects worker-to-worker traffic."""
        if sender != COORDINATOR_ID and receiver != COORDINATOR_ID:
            raise CommunicationViolationError(
                f"worker {sender} attempted to send {num_bytes} bytes to worker "
                f"{receiver} ({kind}); the NPD design requires zero "
                "inter-machine communication"
            )
        transfer = Transfer(sender, receiver, num_bytes, kind)
        self.transfers.append(transfer)
        return transfer

    @property
    def total_bytes(self) -> int:
        """Bytes moved over all recorded transfers."""
        return sum(t.num_bytes for t in self.transfers)

    def bytes_by_kind(self) -> dict[str, int]:
        """Byte totals grouped by message kind."""
        totals: dict[str, int] = {}
        for t in self.transfers:
            totals[t.kind] = totals.get(t.kind, 0) + t.num_bytes
        return totals

    def worker_to_worker_bytes(self) -> int:
        """Always 0 by construction; exists so tests can assert the invariant."""
        return sum(
            t.num_bytes
            for t in self.transfers
            if t.sender != COORDINATOR_ID and t.receiver != COORDINATOR_ID
        )
