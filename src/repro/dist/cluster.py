"""Wiring fragments, indexes and machines into a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coverage import FragmentRuntime
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.coordinator import ClusterResponse, Coordinator
from repro.dist.machine import WorkerMachine
from repro.dist.network import NetworkModel, TrafficLedger
from repro.exceptions import ClusterError

__all__ = ["SimulatedCluster"]


@dataclass
class SimulatedCluster:
    """A coordinator plus its workers, ready to answer queries.

    Use :meth:`from_fragments` to assemble one.  Fragments are assigned
    to machines round-robin, which reproduces the paper's default of one
    fragment per machine when ``num_machines == len(fragments)`` and
    degrades gracefully (serial tasks per machine) otherwise.
    """

    coordinator: Coordinator

    @classmethod
    def from_fragments(
        cls,
        fragments: list[Fragment],
        indexes: list[NPDIndex],
        *,
        num_machines: int | None = None,
        network: NetworkModel | None = None,
        cache_capacity: int = 0,
        cache_max_entry_nodes: int | None = None,
        compiled: bool = True,
    ) -> "SimulatedCluster":
        """Build a cluster hosting ``fragments`` with their ``indexes``."""
        if len(fragments) != len(indexes):
            raise ClusterError(
                f"{len(fragments)} fragments but {len(indexes)} indexes"
            )
        if num_machines is None:
            num_machines = len(fragments)
        if num_machines < 1:
            raise ClusterError("a cluster needs at least one worker machine")
        if num_machines > len(fragments):
            num_machines = len(fragments)

        machines = [WorkerMachine(machine_id=m) for m in range(num_machines)]
        for i, (fragment, index) in enumerate(zip(fragments, indexes)):
            machines[i % num_machines].host(
                FragmentRuntime(
                    fragment,
                    index,
                    cache_capacity=cache_capacity,
                    cache_max_entry_nodes=cache_max_entry_nodes,
                    compiled=compiled,
                )
            )

        coordinator = Coordinator(
            machines=machines,
            network=network or NetworkModel(),
            ledger=TrafficLedger(),
        )
        return cls(coordinator=coordinator)

    @property
    def num_machines(self) -> int:
        """Worker count (the coordinator is not counted)."""
        return len(self.coordinator.machines)

    @property
    def ledger(self) -> TrafficLedger:
        """The cluster's traffic ledger."""
        return self.coordinator.ledger

    def coverage_cache_stats(self) -> dict[str, int]:
        """Coverage-cache counters summed over every hosted runtime."""
        hits = misses = skipped = 0
        for machine in self.coordinator.machines:
            for runtime in machine.runtimes:
                stats = runtime.cache_stats
                hits += stats.hits
                misses += stats.misses
                skipped += stats.skipped
        return {"hits": hits, "misses": misses, "skipped": skipped}

    def execute(self, query: QClassQuery) -> ClusterResponse:
        """Answer one query."""
        return self.coordinator.execute(query)
