"""Wiring fragments, indexes and machines into a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.coverage import FragmentRuntime
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.coordinator import ClusterResponse, Coordinator
from repro.dist.machine import WorkerMachine
from repro.dist.messages import ApplyUpdatesMessage, EpochAckMessage
from repro.dist.network import COORDINATOR_ID, NetworkModel, TrafficLedger
from repro.exceptions import ClusterError

__all__ = ["SimulatedCluster"]


@dataclass
class SimulatedCluster:
    """A coordinator plus its workers, ready to answer queries.

    Use :meth:`from_fragments` to assemble one.  Fragments are assigned
    to machines round-robin, which reproduces the paper's default of one
    fragment per machine when ``num_machines == len(fragments)`` and
    degrades gracefully (serial tasks per machine) otherwise.
    """

    coordinator: Coordinator
    current_epoch: int = field(default=0)

    @classmethod
    def from_fragments(
        cls,
        fragments: list[Fragment],
        indexes: list[NPDIndex],
        *,
        num_machines: int | None = None,
        network: NetworkModel | None = None,
        cache_capacity: int = 0,
        cache_max_entry_nodes: int | None = None,
        compiled: bool = True,
    ) -> "SimulatedCluster":
        """Build a cluster hosting ``fragments`` with their ``indexes``."""
        if len(fragments) != len(indexes):
            raise ClusterError(
                f"{len(fragments)} fragments but {len(indexes)} indexes"
            )
        if num_machines is None:
            num_machines = len(fragments)
        if num_machines < 1:
            raise ClusterError("a cluster needs at least one worker machine")
        if num_machines > len(fragments):
            num_machines = len(fragments)

        machines = [WorkerMachine(machine_id=m) for m in range(num_machines)]
        for i, (fragment, index) in enumerate(zip(fragments, indexes)):
            machines[i % num_machines].host(
                FragmentRuntime(
                    fragment,
                    index,
                    cache_capacity=cache_capacity,
                    cache_max_entry_nodes=cache_max_entry_nodes,
                    compiled=compiled,
                )
            )

        coordinator = Coordinator(
            machines=machines,
            network=network or NetworkModel(),
            ledger=TrafficLedger(),
        )
        return cls(coordinator=coordinator)

    @property
    def num_machines(self) -> int:
        """Worker count (the coordinator is not counted)."""
        return len(self.coordinator.machines)

    @property
    def ledger(self) -> TrafficLedger:
        """The cluster's traffic ledger."""
        return self.coordinator.ledger

    def coverage_cache_stats(self) -> dict[str, int]:
        """Coverage-cache counters summed over every hosted runtime."""
        hits = misses = skipped = 0
        for machine in self.coordinator.machines:
            for runtime in machine.runtimes:
                stats = runtime.cache_stats
                hits += stats.hits
                misses += stats.misses
                skipped += stats.skipped
        return {"hits": hits, "misses": misses, "skipped": skipped}

    def execute(self, query: QClassQuery, *, trace=None) -> ClusterResponse:
        """Answer one query.

        ``trace`` (a :class:`~repro.obs.trace.TraceContext`) opts the
        query into span recording; see :meth:`Coordinator.execute`.
        """
        return self.coordinator.execute(query, trace=trace)

    def apply_updates(
        self, epoch: int, replacements: list[tuple[Fragment, NPDIndex]]
    ) -> dict[str, object]:
        """Push an epoch delta to the workers hosting the changed fragments.

        Each worker receives one :class:`ApplyUpdatesMessage` carrying
        only its own fragments' new state, swaps its hosted runtimes
        (kernels and coverage caches drop), and acks with an
        :class:`EpochAckMessage`; both directions are metered on the
        ledger under the ``apply`` / ``epoch-ack`` kinds.
        """
        if epoch <= self.current_epoch:
            raise ClusterError(
                f"epoch must advance: cluster at {self.current_epoch}, got {epoch}"
            )
        total_bytes = 0
        swapped: list[int] = []
        for machine in self.coordinator.machines:
            hosted = set(machine.fragment_ids)
            mine = [
                (fragment, index)
                for fragment, index in replacements
                if fragment.fragment_id in hosted
            ]
            if not mine:
                continue
            message = ApplyUpdatesMessage(
                sender=COORDINATOR_ID,
                receiver=machine.machine_id,
                epoch=epoch,
                replacements=tuple(mine),
            )
            apply_bytes = message.estimated_bytes()
            self.ledger.record(COORDINATOR_ID, machine.machine_id, apply_bytes, "apply")
            total_bytes += apply_bytes

            machine_swapped = machine.apply_replacements(mine)
            swapped.extend(machine_swapped)

            ack = EpochAckMessage(
                sender=machine.machine_id,
                receiver=COORDINATOR_ID,
                epoch=epoch,
                fragment_ids=tuple(machine_swapped),
                wall_seconds=0.0,
            )
            ack_bytes = ack.estimated_bytes()
            self.ledger.record(machine.machine_id, COORDINATOR_ID, ack_bytes, "epoch-ack")
            total_bytes += ack_bytes
        self.current_epoch = epoch
        return {
            "epoch": epoch,
            "swapped_fragments": sorted(swapped),
            "total_message_bytes": total_bytes,
        }
