"""A worker machine of the simulated cluster.

A worker owns one or more :class:`FragmentRuntime` instances (the paper
assigns one fragment per machine in §6; fewer machines than fragments is
also supported, in which case a machine executes its tasks serially) and
answers :class:`QueryTaskMessage` with one :class:`TaskResultMessage`
per fragment.  Workers hold no global state whatsoever — that is the
share-nothing property under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.coverage import FragmentRuntime
from repro.core.executor import FragmentTaskResult, execute_fragment_task
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.messages import TaskResultMessage
from repro.exceptions import ClusterError

__all__ = ["WorkerMachine"]


@dataclass
class WorkerMachine:
    """One share-nothing worker hosting fragment runtimes."""

    machine_id: int
    runtimes: list[FragmentRuntime] = field(default_factory=list)

    def host(self, runtime: FragmentRuntime) -> None:
        """Place a fragment runtime on this machine."""
        self.runtimes.append(runtime)

    @property
    def fragment_ids(self) -> list[int]:
        """Ids of the fragments this machine hosts."""
        return [rt.fragment.fragment_id for rt in self.runtimes]

    def apply_replacements(
        self, replacements: list[tuple["Fragment", "NPDIndex"]]
    ) -> list[int]:
        """Swap hosted runtimes onto new epoch state; returns swapped ids.

        Pairs for fragments this machine does not host are ignored (the
        coordinator ships each worker only its own delta, but being
        lenient keeps broadcast-style callers correct too).
        """
        hosted = {rt.fragment.fragment_id: rt for rt in self.runtimes}
        swapped: list[int] = []
        for fragment, index in replacements:
            runtime = hosted.get(fragment.fragment_id)
            if runtime is not None:
                runtime.refresh(fragment, index)
                swapped.append(fragment.fragment_id)
        return swapped

    def execute(
        self,
        query: QClassQuery,
        *,
        collector=None,
        parent_id: str | None = None,
    ) -> list[FragmentTaskResult]:
        """Run the query task on every hosted fragment, serially.

        ``collector``/``parent_id`` opt into per-stage span recording
        (see :func:`repro.core.executor.execute_fragment_task`); the
        spans carry this machine's id.
        """
        if not self.runtimes:
            raise ClusterError(f"machine {self.machine_id} hosts no fragments")
        if collector is None:
            return [execute_fragment_task(runtime, query) for runtime in self.runtimes]
        results = []
        marker = len(collector.spans)
        for runtime in self.runtimes:
            results.append(
                execute_fragment_task(
                    runtime, query, collector=collector, parent_id=parent_id
                )
            )
        for span in collector.spans[marker:]:
            span.machine_id = self.machine_id
        return results

    def result_messages(self, results: list[FragmentTaskResult]) -> list[TaskResultMessage]:
        """Wrap task results as coordinator-bound messages."""
        return [
            TaskResultMessage.from_nodes(
                self.machine_id, r.fragment_id, r.local_result, r.wall_seconds
            )
            for r in results
        ]
