"""Fragment replication and failure handling.

The paper's deployment has exactly one machine per fragment; a machine
loss would make part of the answer unreachable.  Because a worker's
whole state is two immutable artefacts (the fragment and ``IND(P)``),
replication is trivial and powerful: place each fragment's runtime on
``replication_factor`` machines, and at query time have the coordinator
pick, per fragment, one *alive* replica (the least-loaded one).  The
share-nothing property is untouched — replicas never talk to each other;
they are just extra read-only copies.

:class:`ReplicatedCluster` implements this with failure injection for
testing and chaos-style benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.coverage import FragmentRuntime
from repro.core.executor import FragmentTaskResult, execute_fragment_task
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.messages import QueryTaskMessage, TaskResultMessage
from repro.dist.network import COORDINATOR_ID, NetworkModel, TrafficLedger
from repro.exceptions import ClusterError

__all__ = ["ReplicatedClusterResponse", "ReplicatedCluster"]


@dataclass(frozen=True)
class ReplicatedClusterResponse:
    """Answer plus placement decisions of one replicated execution."""

    result_nodes: frozenset[int]
    task_results: tuple[FragmentTaskResult, ...]
    chosen_machines: dict[int, int]  # fragment -> machine that served it
    machine_seconds: dict[int, float]
    response_seconds: float


@dataclass
class ReplicatedCluster:
    """A cluster with ``replication_factor`` copies of every fragment."""

    machines: dict[int, list[FragmentRuntime]]
    replication_factor: int
    network: NetworkModel = field(default_factory=NetworkModel)
    ledger: TrafficLedger = field(default_factory=TrafficLedger)
    _failed: set[int] = field(default_factory=set)

    @classmethod
    def from_fragments(
        cls,
        fragments: list[Fragment],
        indexes: list[NPDIndex],
        *,
        num_machines: int,
        replication_factor: int = 2,
        network: NetworkModel | None = None,
    ) -> "ReplicatedCluster":
        """Place each fragment on ``replication_factor`` distinct machines.

        Fragment ``i``'s replicas land on machines ``i % m``,
        ``(i + 1) % m``, … — the classic chained-declustering layout, so
        any single machine's fragments are fully covered by its
        neighbours.
        """
        if len(fragments) != len(indexes):
            raise ClusterError("fragments and indexes must align")
        if num_machines < 1:
            raise ClusterError("need at least one machine")
        if not (1 <= replication_factor <= num_machines):
            raise ClusterError(
                f"replication factor {replication_factor} must be in "
                f"[1, {num_machines}]"
            )
        machines: dict[int, list[FragmentRuntime]] = {
            m: [] for m in range(num_machines)
        }
        for i, (fragment, index) in enumerate(zip(fragments, indexes)):
            for j in range(replication_factor):
                machine_id = (i + j) % num_machines
                machines[machine_id].append(FragmentRuntime(fragment, index))
        return cls(
            machines=machines,
            replication_factor=replication_factor,
            network=network or NetworkModel(),
        )

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    @property
    def failed_machines(self) -> frozenset[int]:
        """Currently failed machine ids."""
        return frozenset(self._failed)

    def fail_machine(self, machine_id: int) -> None:
        """Mark a machine as down (idempotent)."""
        if machine_id not in self.machines:
            raise ClusterError(f"no machine {machine_id}")
        self._failed.add(machine_id)

    def restore_machine(self, machine_id: int) -> None:
        """Bring a machine back (idempotent)."""
        if machine_id not in self.machines:
            raise ClusterError(f"no machine {machine_id}")
        self._failed.discard(machine_id)

    # ------------------------------------------------------------------
    # Placement and execution
    # ------------------------------------------------------------------
    def replicas_of(self, fragment_id: int) -> list[int]:
        """Machine ids hosting ``fragment_id`` (alive or not)."""
        return [
            machine_id
            for machine_id, runtimes in self.machines.items()
            if any(rt.fragment.fragment_id == fragment_id for rt in runtimes)
        ]

    def _plan_placement(self, fragment_ids: list[int]) -> dict[int, int]:
        """Choose one alive machine per fragment, balancing assignments."""
        load: dict[int, int] = {m: 0 for m in self.machines if m not in self._failed}
        if not load:
            raise ClusterError("every machine has failed")
        placement: dict[int, int] = {}
        for fragment_id in fragment_ids:
            alive = [m for m in self.replicas_of(fragment_id) if m not in self._failed]
            if not alive:
                raise ClusterError(
                    f"fragment {fragment_id} has no alive replica "
                    f"(replication={self.replication_factor}, "
                    f"failed={sorted(self._failed)})"
                )
            chosen = min(alive, key=lambda m: (load[m], m))
            placement[fragment_id] = chosen
            load[chosen] += 1
        return placement

    def execute(self, query: QClassQuery) -> ReplicatedClusterResponse:
        """Answer ``query`` using one alive replica per fragment."""
        fragment_ids = sorted(
            {
                rt.fragment.fragment_id
                for runtimes in self.machines.values()
                for rt in runtimes
            }
        )
        placement = self._plan_placement(fragment_ids)

        comm_seconds = 0.0
        machine_seconds: dict[int, float] = {}
        merged: set[int] = set()
        results: list[FragmentTaskResult] = []
        for fragment_id, machine_id in placement.items():
            runtime = next(
                rt
                for rt in self.machines[machine_id]
                if rt.fragment.fragment_id == fragment_id
            )
            task_msg = QueryTaskMessage(COORDINATOR_ID, machine_id, query)
            self.ledger.record(COORDINATOR_ID, machine_id, task_msg.estimated_bytes(), "task")
            comm_seconds += self.network.transfer_seconds(task_msg.estimated_bytes())

            result = execute_fragment_task(runtime, query)
            results.append(result)
            machine_seconds[machine_id] = (
                machine_seconds.get(machine_id, 0.0) + result.wall_seconds
            )
            reply = TaskResultMessage.from_nodes(
                machine_id, fragment_id, result.local_result, result.wall_seconds
            )
            self.ledger.record(machine_id, COORDINATOR_ID, reply.estimated_bytes(), "result")
            comm_seconds += self.network.transfer_seconds(reply.estimated_bytes())
            merged.update(result.local_result)

        return ReplicatedClusterResponse(
            result_nodes=frozenset(merged),
            task_results=tuple(sorted(results, key=lambda r: r.fragment_id)),
            chosen_machines=placement,
            machine_seconds=machine_seconds,
            response_seconds=max(machine_seconds.values()) + comm_seconds,
        )
