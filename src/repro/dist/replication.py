"""Fragment replication: placement, routing, and failure handling.

The paper's deployment has exactly one machine per fragment; a machine
loss would make part of the answer unreachable.  Because a worker's
whole state is two immutable artefacts (the fragment and ``IND(P)``),
replication is trivial and powerful: place each fragment's runtime on
``replication_factor`` machines, and at query time have the coordinator
pick, per fragment, one *alive* replica.  The share-nothing property is
untouched — replicas never talk to each other; they are just extra
read-only copies.

Two layers live here:

* :class:`ReplicaPlacement` — the pure placement/routing core: the
  chained-declustering layout, replica lookup, and the per-fragment
  alive-replica picker (load-aware or round-robin).  This is the single
  source of truth for replica routing; both the in-process
  :class:`ReplicatedCluster` simulation and the multiprocess
  :class:`repro.ha.HACluster` serving tier plan through it.
* :class:`ReplicatedCluster` — an in-process simulation with failure
  injection for tests and chaos-style benchmarks.  Since the kernel/shm
  era it also understands live epochs: :meth:`apply_updates` refreshes
  *every* replica of a changed fragment via
  :meth:`FragmentRuntime.refresh`, mirroring what the real serving tier
  does across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.coverage import FragmentRuntime
from repro.core.executor import FragmentTaskResult, execute_fragment_task
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.messages import QueryTaskMessage, TaskResultMessage
from repro.dist.network import COORDINATOR_ID, NetworkModel, TrafficLedger
from repro.exceptions import ClusterError

__all__ = ["ReplicaPlacement", "ReplicatedClusterResponse", "ReplicatedCluster"]

ROUTING_POLICIES = ("load", "rr")


@dataclass(frozen=True)
class ReplicaPlacement:
    """Which machines host which fragments, plus the routing picker.

    ``replicas[i]`` is the tuple of machine ids hosting fragment ``i``.
    The layout is chained declustering — fragment ``i`` lands on
    machines ``i % m``, ``(i+1) % m``, … — which is automatically
    anti-affine (no machine holds two replicas of the same fragment)
    whenever ``replication_factor <= num_machines``.
    """

    replicas: tuple[tuple[int, ...], ...]
    num_machines: int
    replication_factor: int

    @classmethod
    def chained(
        cls,
        num_fragments: int,
        num_machines: int,
        replication_factor: int = 2,
    ) -> "ReplicaPlacement":
        """The classic chained-declustering layout."""
        if num_machines < 1:
            raise ClusterError("need at least one machine")
        if not (1 <= replication_factor <= num_machines):
            raise ClusterError(
                f"replication factor {replication_factor} must be in "
                f"[1, {num_machines}]"
            )
        replicas = tuple(
            tuple((i + j) % num_machines for j in range(replication_factor))
            for i in range(num_fragments)
        )
        return cls(
            replicas=replicas,
            num_machines=num_machines,
            replication_factor=replication_factor,
        )

    @property
    def num_fragments(self) -> int:
        return len(self.replicas)

    def machines_of(self, fragment_id: int) -> tuple[int, ...]:
        """Machine ids hosting ``fragment_id`` (alive or not)."""
        if 0 <= fragment_id < len(self.replicas):
            return self.replicas[fragment_id]
        return ()

    def fragments_of(self, machine_id: int) -> tuple[int, ...]:
        """Fragment ids hosted by ``machine_id``, in fragment order."""
        return tuple(
            i for i, machines in enumerate(self.replicas) if machine_id in machines
        )

    def assignments(self) -> list[list[int]]:
        """Per-machine fragment-id lists, indexed by machine id."""
        return [list(self.fragments_of(m)) for m in range(self.num_machines)]

    def plan(
        self,
        fragment_ids: Iterable[int],
        alive: Iterable[int],
        *,
        load: Mapping[int, float] | None = None,
        policy: str = "load",
        start: int = 0,
    ) -> dict[int, int]:
        """Choose one alive replica per fragment.

        ``policy="load"`` picks the least-busy alive replica, breaking
        ties by machine id; ``load`` carries the caller's view of each
        machine's busyness (outstanding tasks, busy-seconds, …) and the
        plan itself adds one unit per task it assigns, so a single
        fan-out spreads even when all machines start equal.
        ``policy="rr"`` rotates over alive replicas from ``start`` —
        the load-oblivious baseline the benchmark compares against.

        Raises :class:`ClusterError` if no machine is alive at all, or
        names the first fragment with no alive replica.
        """
        if policy not in ROUTING_POLICIES:
            raise ClusterError(f"unknown routing policy {policy!r}")
        alive_set = set(alive)
        if not alive_set:
            raise ClusterError("every machine has failed")
        failed = sorted(set(range(self.num_machines)) - alive_set)
        running: dict[int, float] = {m: 0.0 for m in alive_set}
        if load:
            for machine_id, busy in load.items():
                if machine_id in running:
                    running[machine_id] += busy
        placement: dict[int, int] = {}
        for fragment_id in fragment_ids:
            candidates = [m for m in self.machines_of(fragment_id) if m in alive_set]
            if not candidates:
                raise ClusterError(
                    f"fragment {fragment_id} has no alive replica "
                    f"(replication={self.replication_factor}, "
                    f"failed={failed})"
                )
            if policy == "rr":
                chosen = candidates[(start + fragment_id) % len(candidates)]
            else:
                chosen = min(candidates, key=lambda m: (running[m], m))
            placement[fragment_id] = chosen
            running[chosen] += 1.0
        return placement


@dataclass(frozen=True)
class ReplicatedClusterResponse:
    """Answer plus placement decisions of one replicated execution."""

    result_nodes: frozenset[int]
    task_results: tuple[FragmentTaskResult, ...]
    chosen_machines: dict[int, int]  # fragment -> machine that served it
    machine_seconds: dict[int, float]
    response_seconds: float


@dataclass
class ReplicatedCluster:
    """A cluster with ``replication_factor`` copies of every fragment."""

    machines: dict[int, list[FragmentRuntime]]
    placement: ReplicaPlacement
    network: NetworkModel = field(default_factory=NetworkModel)
    ledger: TrafficLedger = field(default_factory=TrafficLedger)
    routing: str = "load"
    _failed: set[int] = field(default_factory=set)
    _epoch: int = 0

    @property
    def replication_factor(self) -> int:
        return self.placement.replication_factor

    @property
    def current_epoch(self) -> int:
        """Epoch of the last applied update batch (0 = as built)."""
        return self._epoch

    @classmethod
    def from_fragments(
        cls,
        fragments: Sequence[Fragment],
        indexes: Sequence[NPDIndex],
        *,
        num_machines: int,
        replication_factor: int = 2,
        network: NetworkModel | None = None,
        routing: str = "load",
    ) -> "ReplicatedCluster":
        """Place each fragment on ``replication_factor`` distinct machines.

        Fragment ``i``'s replicas land on machines ``i % m``,
        ``(i + 1) % m``, … — the classic chained-declustering layout, so
        any single machine's fragments are fully covered by its
        neighbours.
        """
        if len(fragments) != len(indexes):
            raise ClusterError("fragments and indexes must align")
        placement = ReplicaPlacement.chained(
            len(fragments), num_machines, replication_factor
        )
        machines: dict[int, list[FragmentRuntime]] = {
            m: [] for m in range(num_machines)
        }
        for i, (fragment, index) in enumerate(zip(fragments, indexes)):
            for machine_id in placement.machines_of(i):
                machines[machine_id].append(FragmentRuntime(fragment, index))
        return cls(
            machines=machines,
            placement=placement,
            network=network or NetworkModel(),
            routing=routing,
        )

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    @property
    def failed_machines(self) -> frozenset[int]:
        """Currently failed machine ids."""
        return frozenset(self._failed)

    def fail_machine(self, machine_id: int) -> None:
        """Mark a machine as down (idempotent)."""
        if machine_id not in self.machines:
            raise ClusterError(f"no machine {machine_id}")
        self._failed.add(machine_id)

    def restore_machine(self, machine_id: int) -> None:
        """Bring a machine back (idempotent)."""
        if machine_id not in self.machines:
            raise ClusterError(f"no machine {machine_id}")
        self._failed.discard(machine_id)

    # ------------------------------------------------------------------
    # Placement and execution
    # ------------------------------------------------------------------
    def replicas_of(self, fragment_id: int) -> list[int]:
        """Machine ids hosting ``fragment_id`` (alive or not)."""
        return sorted(self.placement.machines_of(fragment_id))

    def _plan_placement(self, fragment_ids: list[int]) -> dict[int, int]:
        """Choose one alive machine per fragment via the shared core."""
        alive = [m for m in self.machines if m not in self._failed]
        return self.placement.plan(fragment_ids, alive, policy=self.routing)

    def execute(self, query: QClassQuery) -> ReplicatedClusterResponse:
        """Answer ``query`` using one alive replica per fragment."""
        fragment_ids = list(range(self.placement.num_fragments))
        placement = self._plan_placement(fragment_ids)

        comm_seconds = 0.0
        machine_seconds: dict[int, float] = {}
        merged: set[int] = set()
        results: list[FragmentTaskResult] = []
        for fragment_id, machine_id in placement.items():
            runtime = next(
                rt
                for rt in self.machines[machine_id]
                if rt.fragment.fragment_id == fragment_id
            )
            task_msg = QueryTaskMessage(COORDINATOR_ID, machine_id, query)
            self.ledger.record(COORDINATOR_ID, machine_id, task_msg.estimated_bytes(), "task")
            comm_seconds += self.network.transfer_seconds(task_msg.estimated_bytes())

            result = execute_fragment_task(runtime, query)
            results.append(result)
            machine_seconds[machine_id] = (
                machine_seconds.get(machine_id, 0.0) + result.wall_seconds
            )
            reply = TaskResultMessage.from_nodes(
                machine_id, fragment_id, result.local_result, result.wall_seconds
            )
            self.ledger.record(machine_id, COORDINATOR_ID, reply.estimated_bytes(), "result")
            comm_seconds += self.network.transfer_seconds(reply.estimated_bytes())
            merged.update(result.local_result)

        return ReplicatedClusterResponse(
            result_nodes=frozenset(merged),
            task_results=tuple(sorted(results, key=lambda r: r.fragment_id)),
            chosen_machines=placement,
            machine_seconds=machine_seconds,
            response_seconds=max(machine_seconds.values()) + comm_seconds,
        )

    # ------------------------------------------------------------------
    # Live epochs
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        epoch: int,
        replacements: Iterable[tuple[Fragment, NPDIndex]],
    ) -> dict[int, int]:
        """Swap replacement state into *every* replica of each fragment.

        Mirrors the real serving tier's epoch-atomic apply: a changed
        fragment is refreshed on all its replicas (alive and failed —
        a restored machine must not resurrect a stale epoch), via
        :meth:`FragmentRuntime.refresh`.  Returns fragment id →
        replica-count refreshed.
        """
        if epoch <= self._epoch:
            raise ClusterError(
                f"epoch must advance: have {self._epoch}, got {epoch}"
            )
        refreshed: dict[int, int] = {}
        for fragment, index in replacements:
            fragment_id = fragment.fragment_id
            count = 0
            for machine_id in self.placement.machines_of(fragment_id):
                for rt in self.machines[machine_id]:
                    if rt.fragment.fragment_id == fragment_id:
                        rt.refresh(fragment, index)
                        count += 1
            refreshed[fragment_id] = count
        self._epoch = epoch
        return refreshed
