"""Coordinator-based share-nothing cluster substrate.

The paper evaluates on 16 machines behind a 100 Mb switch.  This
subpackage simulates that deployment faithfully enough to reproduce the
experiment shapes on one host:

* every fragment task runs and is *timed independently* (per-machine
  work), and the distributed response time is the makespan under the
  §5.2 scheduling strategy plus a modelled coordinator round-trip;
* every byte that would cross the network is metered by a
  :class:`TrafficLedger`, which *enforces* the paper's zero
  worker-to-worker communication guarantee (Theorem 3);
* :mod:`repro.dist.parallel` additionally runs tasks in real OS
  processes for genuine parallelism.
"""

from repro.dist.messages import (
    ApplyUpdatesMessage,
    AttachSegmentsMessage,
    EpochAckMessage,
    Message,
    QueryTaskMessage,
    TaskResultMessage,
)
from repro.dist.network import NetworkModel, TrafficLedger, Transfer
from repro.dist.machine import WorkerMachine
from repro.dist.coordinator import Coordinator, ClusterResponse
from repro.dist.cluster import SimulatedCluster
from repro.dist.replication import (
    ReplicaPlacement,
    ReplicatedCluster,
    ReplicatedClusterResponse,
)
from repro.dist.process_cluster import ProcessCluster, ProcessClusterResponse

__all__ = [
    "ReplicaPlacement",
    "ReplicatedCluster",
    "ReplicatedClusterResponse",
    "ProcessCluster",
    "ProcessClusterResponse",
    "Message",
    "QueryTaskMessage",
    "TaskResultMessage",
    "ApplyUpdatesMessage",
    "AttachSegmentsMessage",
    "EpochAckMessage",
    "NetworkModel",
    "TrafficLedger",
    "Transfer",
    "WorkerMachine",
    "Coordinator",
    "ClusterResponse",
    "SimulatedCluster",
]
