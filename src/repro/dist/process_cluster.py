"""A real coordinator/worker deployment on OS processes.

Where :class:`~repro.dist.cluster.SimulatedCluster` *models* the cluster
(individual task timing + makespan arithmetic), this module actually
runs one: persistent worker processes each hold their fragment runtimes
and serve queries over pipes, concurrently.  It demonstrates that the
share-nothing design really is share-nothing — each worker process owns
nothing but its fragments and indexes, and the only channels in the
topology connect workers to the coordinator.

Use as a context manager::

    with ProcessCluster.start(fragments, indexes) as cluster:
        response = cluster.execute(query)

Workers are daemons and also shut down cleanly on ``shutdown()``; a
worker that raises ships the traceback back instead of hanging the
coordinator.
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass
from multiprocessing import Pipe, Process, get_context
from multiprocessing.connection import Connection

from repro.core.coverage import FragmentRuntime
from repro.core.executor import execute_fragment_task
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.dist.network import NetworkModel
from repro.exceptions import ClusterError
from repro.obs.trace import Span, SpanCollector, TraceContext
from repro.shm import SharedSegmentStore, ShmWorkerRuntimes

__all__ = [
    "ProcessClusterResponse",
    "ProcessCluster",
    "spawn_workers",
    "build_worker_runtimes",
    "emulate_delivery",
    "worker_trace_collector",
    "finish_worker_spans",
]

_DEFAULT_TIMEOUT = 120.0


def spawn_workers(
    fragments: list[Fragment],
    indexes: list[NPDIndex],
    num_machines: int | None,
    worker_main,
    network_model: NetworkModel | None = None,
    compiled: bool = True,
    shm_store=None,
    fragment_assignments: list[list[int]] | None = None,
) -> tuple[list[Process], list[Connection], list[list[int]], list[int]]:
    """Fork one worker process per machine, fragments assigned round-robin.

    Shared by :class:`ProcessCluster` and the pipelined serving cluster
    (:class:`repro.serve.PipelinedCluster`); the two differ only in the
    worker loop they run over the returned pipe connections.  The third
    returned value maps each machine to the fragment ids it hosts, so
    epoch deltas (:meth:`ProcessCluster.apply_updates`) can be routed to
    only the owning worker; the fourth is the per-machine startup
    payload size in bytes (what actually crossed the pipe at fork).

    ``shm_store`` (a :class:`repro.shm.SharedSegmentStore`) switches the
    startup hand-off to the zero-copy plane: each fragment's compiled
    kernel is packed into a shared-memory segment on the coordinator and
    the worker receives only the O(1)-byte manifests — the fragments and
    indexes themselves never cross the pipe.  Requires ``compiled``.

    ``network_model`` turns the analytic interconnect model into *wall
    clock*: every message carries its send timestamp, and the receiving
    end sleeps until the modelled delivery time ``sent_at + latency +
    bytes/bandwidth`` (an uncongested link — latency is propagation
    delay, so concurrent transfers overlap; only the bandwidth term
    occupies the wire).  Pipes on one host are orders of magnitude
    faster than the paper's 100 Mb switch, so without this the
    coordinator↔machine round trips the paper charges for are invisible;
    with it, single-host experiments reproduce their cost honestly.
    ``None`` (the default) adds nothing.

    ``fragment_assignments`` overrides the round-robin layout with an
    explicit machine → fragment-id mapping (one list per machine, ids
    may repeat across machines).  This is how the HA tier forks replica
    groups: :meth:`ReplicaPlacement.assignments` hands the chained
    layout straight in, ``num_machines`` is ignored, and a fragment
    hosted by several machines is published into shared memory exactly
    once (``publish`` is idempotent per fragment+epoch).
    """
    if len(fragments) != len(indexes):
        raise ClusterError("fragments and indexes must align")
    if not fragments:
        raise ClusterError("a cluster needs at least one fragment")
    if shm_store is not None and not compiled:
        raise ClusterError(
            "shared-memory workers run packed kernels; compiled=False needs "
            "the pickled hand-off"
        )
    if fragment_assignments is not None:
        by_id = {
            fragment.fragment_id: (fragment, index)
            for fragment, index in zip(fragments, indexes)
        }
        unknown = {
            fid for hosted in fragment_assignments for fid in hosted
        } - set(by_id)
        if unknown:
            raise ClusterError(f"assignment names unknown fragments {sorted(unknown)}")
        num_machines = len(fragment_assignments)
        assignments: list[list[tuple[Fragment, NPDIndex]]] = [
            [by_id[fid] for fid in hosted] for hosted in fragment_assignments
        ]
    else:
        if num_machines is None:
            num_machines = len(fragments)
        num_machines = max(1, min(num_machines, len(fragments)))
        assignments = [[] for _ in range(num_machines)]
        for i, pair in enumerate(zip(fragments, indexes)):
            assignments[i % num_machines].append(pair)

    context = get_context("fork")
    processes: list[Process] = []
    connections: list[Connection] = []
    startup_bytes: list[int] = []
    for machine_id, pairs in enumerate(assignments):
        if shm_store is not None:
            manifests = [
                shm_store.publish(fragment, index, epoch=0)
                for fragment, index in pairs
            ]
            shm_store.lease(machine_id, manifests)
            payload = pickle.dumps(("shm", manifests, network_model, compiled))
        else:
            payload = pickle.dumps(("pickle", pairs, network_model, compiled))
        startup_bytes.append(len(payload))
        parent_end, child_end = Pipe()
        process = context.Process(
            target=worker_main,
            args=(child_end, payload),
            name=f"disks-worker-{machine_id}",
            daemon=True,
        )
        process.start()
        child_end.close()
        processes.append(process)
        connections.append(parent_end)
    fragment_assignments = [
        [fragment.fragment_id for fragment, _index in pairs] for pairs in assignments
    ]
    return processes, connections, fragment_assignments, startup_bytes


def emulate_delivery(
    network_model: NetworkModel | None, sent_at: float | None, num_bytes: int
) -> None:
    """Sleep until a message's modelled delivery time.

    ``sent_at`` is the sender's ``time.perf_counter()`` — system-wide
    monotonic on Linux, so it is comparable across the forked worker
    processes.  A message that has already "arrived" (the receiver was
    busy past its delivery time) costs nothing, which is exactly how
    propagation delay pipelines on a real link.
    """
    if network_model is None or sent_at is None:
        return
    delay = sent_at + network_model.transfer_seconds(num_bytes) - time.perf_counter()
    if delay > 0:
        time.sleep(delay)


def worker_trace_collector(
    trace_wire: tuple[str, str | None] | None,
    sent_at: float | None,
    received: float,
    wire_bytes: int,
) -> tuple[SpanCollector | None, str | None]:
    """Worker-side trace setup, shared by both worker loops.

    For a traced query (``trace_wire`` = ``(trace_id, parent span
    id)``) this builds the local collector and records the
    ``queue-wait`` span — sender timestamp to post-delivery dequeue,
    which covers pipe transit, the emulated link, and time spent
    behind earlier messages in the FIFO.  Returns ``(None, None)`` for
    the untraced fast path.
    """
    if trace_wire is None:
        return None, None
    trace_id, parent_id = trace_wire
    collector = SpanCollector(trace_id)
    if sent_at is not None:
        collector.record(
            "queue-wait",
            sent_at,
            received,
            parent_id=parent_id,
            bytes=wire_bytes,
        )
    return collector, parent_id


def finish_worker_spans(
    collector: SpanCollector,
    parent_id: str | None,
    reply_body: object,
    elapsed: float,
) -> list[Span]:
    """Measure reply serialisation, then return the spans to piggyback.

    The serialize span must itself travel inside the reply, so the
    reply body is pickled once as a measured probe and the final
    message (with spans attached) is pickled by the caller — the double
    pickle only happens on sampled queries.
    """
    started = time.perf_counter()
    probe = pickle.dumps(("results", (reply_body, elapsed), 0.0))
    ended = time.perf_counter()
    collector.record(
        "serialize", started, ended, parent_id=parent_id, bytes=len(probe)
    )
    return collector.spans


def build_worker_runtimes(mode: str, data, compiled: bool):
    """Materialise a worker's runtimes from either startup hand-off.

    ``("pickle", pairs)`` compiles kernels from the shipped fragments —
    the scratch arrays live where the queries run and never cross a
    pipe.  ``("shm", manifests)`` attaches the coordinator-packed
    shared-memory segments instead: nothing but the manifests crossed
    the pipe, and the flat arrays are mapped, not copied.  Returns
    ``(registry, runtimes)`` — the registry is ``None`` in pickle mode
    and the attach point for ``apply_shm`` epoch swaps otherwise.
    """
    if mode == "shm":
        registry = ShmWorkerRuntimes()
        registry.attach(data)
        return registry, registry.runtimes()
    if mode != "pickle":
        raise ClusterError(f"unknown worker startup mode {mode!r}")
    runtimes = [
        FragmentRuntime(fragment, index, compiled=compiled)
        for fragment, index in data
    ]
    return None, runtimes


def _worker_main(connection: Connection, payload: bytes) -> None:
    """Worker loop: deserialise runtimes once, then serve queries."""
    registry = None
    try:
        mode, data, network_model, compiled = pickle.loads(payload)
        registry, runtimes = build_worker_runtimes(mode, data, compiled)
        connection.send(("ready", len(runtimes)))
        while True:
            raw = connection.recv_bytes()
            kind, body, *meta = pickle.loads(raw)
            if kind == "stop":
                connection.send(("stopped", None))
                return
            if kind == "apply_shm":
                epoch, manifests = body
                emulate_delivery(network_model, meta[0] if meta else None, len(raw))
                started = time.perf_counter()
                swapped = registry.attach(manifests)
                runtimes = registry.runtimes()
                elapsed = time.perf_counter() - started
                connection.send_bytes(
                    pickle.dumps(
                        ("applied", (epoch, swapped, elapsed), time.perf_counter())
                    )
                )
                continue
            if kind == "apply":
                epoch, new_pairs = body
                emulate_delivery(network_model, meta[0] if meta else None, len(raw))
                started = time.perf_counter()
                hosted = {rt.fragment.fragment_id: rt for rt in runtimes}
                swapped = []
                for fragment, index in new_pairs:
                    runtime = hosted.get(fragment.fragment_id)
                    if runtime is not None:
                        runtime.refresh(fragment, index)
                        swapped.append(fragment.fragment_id)
                elapsed = time.perf_counter() - started
                connection.send_bytes(
                    pickle.dumps(
                        ("applied", (epoch, swapped, elapsed), time.perf_counter())
                    )
                )
                continue
            if kind != "query":  # pragma: no cover - protocol guard
                connection.send(("error", f"unknown message kind {kind!r}"))
                continue
            emulate_delivery(network_model, meta[0] if meta else None, len(raw))
            received = time.perf_counter()
            query, trace_wire = body
            collector, parent_id = worker_trace_collector(
                trace_wire, meta[0] if meta else None, received, len(raw)
            )
            started = time.perf_counter()
            results = [
                execute_fragment_task(
                    runtime, query, collector=collector, parent_id=parent_id
                )
                for runtime in runtimes
            ]
            elapsed = time.perf_counter() - started
            reply = [
                (r.fragment_id, set(r.local_result), r.wall_seconds) for r in results
            ]
            if collector is not None:
                body_out = (
                    reply,
                    elapsed,
                    finish_worker_spans(collector, parent_id, reply, elapsed),
                )
            else:
                body_out = (reply, elapsed)
            connection.send_bytes(
                pickle.dumps(("results", body_out, time.perf_counter()))
            )
    except EOFError:  # coordinator went away
        return
    except Exception:  # pragma: no cover - surfaced to the coordinator
        connection.send(("error", traceback.format_exc()))
    finally:
        # Unmap attached segments before interpreter shutdown so their
        # __del__ never races the kernels' exported memoryviews.
        if registry is not None:
            registry.release_all()


@dataclass(frozen=True)
class ProcessClusterResponse:
    """Outcome of one concurrently executed query.

    ``spans`` holds the assembled trace spans when the query was
    executed with a trace context (empty otherwise).
    """

    result_nodes: frozenset[int]
    fragment_seconds: dict[int, float]
    machine_seconds: dict[int, float]
    wall_seconds: float
    message_bytes: int
    spans: tuple[Span, ...] = ()


class ProcessCluster:
    """Persistent worker processes behind a pipe-based coordinator."""

    def __init__(
        self,
        processes: list[Process],
        connections: list[Connection],
        network_model: NetworkModel | None = None,
        fragment_assignments: list[list[int]] | None = None,
        shm_store: SharedSegmentStore | None = None,
        startup_bytes: list[int] | None = None,
    ) -> None:
        self._processes = processes
        self._connections = connections
        self._network_model = network_model
        self._assignments = fragment_assignments or [[] for _ in processes]
        self._shm_store = shm_store
        self.startup_bytes = startup_bytes or []
        self._alive = True
        self.current_epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        fragments: list[Fragment],
        indexes: list[NPDIndex],
        *,
        num_machines: int | None = None,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
        network_model: NetworkModel | None = None,
        compiled: bool = True,
        use_shm: bool = False,
    ) -> "ProcessCluster":
        """Fork the workers and wait until every one reports ready.

        ``network_model`` makes workers *emulate* the modelled link by
        sleeping for each message's transfer time (see
        :func:`spawn_workers`).  ``compiled`` selects the packed kernel
        (default) or the dict-based reference evaluator in the workers.
        ``use_shm`` hands fragments to workers as shared-memory segment
        manifests instead of pickled state (see :mod:`repro.shm`).
        """
        shm_store = SharedSegmentStore() if use_shm else None
        processes, connections, assignments, startup_bytes = spawn_workers(
            fragments,
            indexes,
            num_machines,
            _worker_main,
            network_model,
            compiled,
            shm_store,
        )
        cluster = cls(
            processes, connections, network_model, assignments, shm_store, startup_bytes
        )
        for machine_id, connection in enumerate(connections):
            try:
                kind, body, _ = cls._receive(connection, timeout_seconds, machine_id)
            except ClusterError:
                cluster.shutdown()
                raise
            if kind != "ready":
                cluster.shutdown()
                raise ClusterError(f"worker {machine_id} failed to start: {body}")
        return cluster

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    @property
    def num_machines(self) -> int:
        """Worker-process count."""
        return len(self._processes)

    def shutdown(self, timeout_seconds: float = 10.0) -> None:
        """Stop every worker; forceful termination as a last resort."""
        if not self._alive:
            return
        self._alive = False
        for connection in self._connections:
            try:
                connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=timeout_seconds)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        for connection in self._connections:
            connection.close()
        if self._shm_store is not None:
            self._shm_store.unlink_all()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @staticmethod
    def _receive(
        connection: Connection,
        timeout_seconds: float,
        machine_id: int,
        network_model: NetworkModel | None = None,
    ):
        """One framed reply as ``(kind, body, wire_bytes)``.

        Reads the raw pickle frame (``recv_bytes``) so byte accounting
        and transport share one buffer, and converts a vanished worker
        (EOF on the pipe) into a :class:`ClusterError` instead of
        leaking :class:`EOFError` or hanging.
        """
        if not connection.poll(timeout_seconds):
            raise ClusterError(
                f"worker {machine_id} did not answer within {timeout_seconds}s"
            )
        try:
            raw = connection.recv_bytes()
        except (EOFError, OSError):
            raise ClusterError(
                f"worker {machine_id} died before answering"
            ) from None
        kind, body, *meta = pickle.loads(raw)
        emulate_delivery(network_model, meta[0] if meta else None, len(raw))
        return kind, body, len(raw)

    def execute(
        self,
        query: QClassQuery,
        *,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
        trace: TraceContext | None = None,
    ) -> ProcessClusterResponse:
        """Broadcast the query, gather concurrently computed results.

        With a ``trace`` context each worker records its stage spans
        (queue wait, per-fragment task/eval/union, serialization) and
        piggybacks them on the result message it already sends; the
        coordinator stamps machine ids and assembles the tree.  Traced
        queries send per-machine payloads (each machine's dispatch span
        id differs); the untraced fast path broadcasts one shared
        payload exactly as before.
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        started = time.perf_counter()

        collector: SpanCollector | None = None
        root = None
        dispatch_spans: dict[int, Span] = {}
        total_bytes = 0
        if trace is None:
            payload = pickle.dumps(("query", (query, None), started))
            for machine_id, connection in enumerate(self._connections):
                try:
                    connection.send_bytes(payload)
                except (BrokenPipeError, OSError):
                    raise ClusterError(
                        f"worker {machine_id} is gone; the cluster is unusable"
                    ) from None
            total_bytes = len(payload) * len(self._connections)
        else:
            collector = SpanCollector(trace.trace_id)
            root = collector.start("query", parent_id=trace.span_id)
            for machine_id, connection in enumerate(self._connections):
                dispatch = collector.start(
                    "dispatch", parent_id=root.span_id, machine_id=machine_id
                )
                dispatch_spans[machine_id] = dispatch
                payload = pickle.dumps(
                    (
                        "query",
                        (query, (trace.trace_id, dispatch.span_id)),
                        time.perf_counter(),
                    )
                )
                try:
                    connection.send_bytes(payload)
                except (BrokenPipeError, OSError):
                    raise ClusterError(
                        f"worker {machine_id} is gone; the cluster is unusable"
                    ) from None
                total_bytes += len(payload)

        merged: set[int] = set()
        fragment_seconds: dict[int, float] = {}
        machine_seconds: dict[int, float] = {}
        for machine_id, connection in enumerate(self._connections):
            kind, body, wire_bytes = self._receive(
                connection, timeout_seconds, machine_id, self._network_model
            )
            if kind == "error":
                raise ClusterError(f"worker {machine_id} failed:\n{body}")
            reply, elapsed, *extra = body
            machine_seconds[machine_id] = elapsed
            total_bytes += wire_bytes
            for fragment_id, nodes, seconds in reply:
                merged.update(nodes)
                fragment_seconds[fragment_id] = seconds
            if collector is not None:
                worker_spans: list[Span] = extra[0] if extra else []
                for span in worker_spans:
                    span.machine_id = machine_id
                collector.extend(worker_spans)
                dispatch_spans[machine_id].finish()
        if root is not None:
            root.finish()
        return ProcessClusterResponse(
            result_nodes=frozenset(merged),
            fragment_seconds=fragment_seconds,
            machine_seconds=machine_seconds,
            wall_seconds=time.perf_counter() - started,
            message_bytes=total_bytes,
            spans=tuple(collector.spans) if collector is not None else (),
        )

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        epoch: int,
        replacements: list[tuple[Fragment, NPDIndex]],
        *,
        timeout_seconds: float = _DEFAULT_TIMEOUT,
    ) -> dict[str, object]:
        """Ship an epoch delta to the owning workers and await their acks.

        Each worker receives only the ``(fragment, index)`` pairs it
        hosts, swaps the corresponding runtimes in place (compiled
        kernels and coverage caches drop), and acks with the epoch and
        the swapped fragment ids.  Lockstep like :meth:`execute`: the
        call returns only after every involved worker has swapped, so a
        subsequent query observes the new epoch everywhere.
        """
        if not self._alive:
            raise ClusterError("the cluster has been shut down")
        if epoch <= self.current_epoch:
            raise ClusterError(
                f"epoch must advance: cluster at {self.current_epoch}, got {epoch}"
            )
        started = time.perf_counter()
        involved: list[int] = []
        leases: dict[int, list] = {}
        total_bytes = 0
        for machine_id, connection in enumerate(self._connections):
            hosted = set(self._assignments[machine_id])
            mine = [
                (fragment, index)
                for fragment, index in replacements
                if fragment.fragment_id in hosted
            ]
            if not mine:
                continue
            if self._shm_store is not None:
                manifests = [
                    self._shm_store.publish(fragment, index, epoch=epoch)
                    for fragment, index in mine
                ]
                leases[machine_id] = manifests
                payload = pickle.dumps(
                    ("apply_shm", (epoch, manifests), time.perf_counter())
                )
            else:
                payload = pickle.dumps(("apply", (epoch, mine), time.perf_counter()))
            total_bytes += len(payload)
            try:
                connection.send_bytes(payload)
            except (BrokenPipeError, OSError):
                raise ClusterError(
                    f"worker {machine_id} is gone; the cluster is unusable"
                ) from None
            involved.append(machine_id)

        swapped: list[int] = []
        for machine_id in involved:
            kind, body, wire_bytes = self._receive(
                self._connections[machine_id],
                timeout_seconds,
                machine_id,
                self._network_model,
            )
            if kind == "error":
                raise ClusterError(f"worker {machine_id} failed to apply:\n{body}")
            if kind != "applied":  # pragma: no cover - protocol guard
                raise ClusterError(
                    f"worker {machine_id} sent {kind!r} instead of an epoch ack"
                )
            acked_epoch, machine_swapped, _elapsed = body
            if acked_epoch != epoch:  # pragma: no cover - protocol guard
                raise ClusterError(
                    f"worker {machine_id} acked epoch {acked_epoch}, expected {epoch}"
                )
            swapped.extend(machine_swapped)
            total_bytes += wire_bytes
            if self._shm_store is not None:
                # The ack proves the serial worker holds no old-epoch
                # reads; its lease moves forward and fully superseded
                # segments are unlinked.
                self._shm_store.lease(machine_id, leases[machine_id])
        self.current_epoch = epoch
        return {
            "epoch": epoch,
            "swapped_fragments": sorted(swapped),
            "total_message_bytes": total_bytes,
            "wall_seconds": time.perf_counter() - started,
        }
