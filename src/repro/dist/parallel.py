"""Real process parallelism for index construction and query tasks.

The simulated cluster times tasks individually and reports a makespan;
this module actually runs them concurrently in OS processes, which is
how a single multi-core host realises the paper's per-machine
parallelism.  Everything shipped to workers is picklable by design
(fragments, indexes, queries are plain data).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.core.builder import BuildStats, NPDBuildConfig, build_npd_index
from repro.core.coverage import FragmentRuntime
from repro.core.executor import FragmentTaskResult, execute_fragment_task
from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import QClassQuery
from repro.graph.road_network import RoadNetwork

__all__ = ["parallel_build_indexes", "parallel_execute_query"]


# The road network a pool worker builds against, stashed once per
# worker process by the pool initializer.  Shipping it per *job* would
# pickle the whole network N-fragments times over the pool; with the
# initializer it crosses to each worker exactly once and every job
# carries only its (fragment, config).
_WORKER_NETWORK: RoadNetwork | None = None


def _pool_init(network: RoadNetwork) -> None:
    global _WORKER_NETWORK
    _WORKER_NETWORK = network


def _build_one(
    args: tuple[Fragment, NPDBuildConfig],
) -> tuple[NPDIndex, BuildStats]:
    fragment, config = args
    network = _WORKER_NETWORK
    if network is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker pool was started without _pool_init")
    return build_npd_index(network, fragment, config)


def parallel_build_indexes(
    network: RoadNetwork,
    fragments: Sequence[Fragment],
    config: NPDBuildConfig | None = None,
    *,
    processes: int | None = None,
) -> tuple[list[NPDIndex], list[BuildStats]]:
    """Build every fragment's NPD-index in a process pool.

    Mirrors the paper's §4.1 observation that construction is naturally
    fragment-parallel ("one machine only takes charge of one fragment").
    The network is shipped once per worker via the pool initializer, not
    once per fragment job.
    """
    config = config or NPDBuildConfig()
    jobs = [(fragment, config) for fragment in fragments]
    with ProcessPoolExecutor(
        max_workers=processes, initializer=_pool_init, initargs=(network,)
    ) as pool:
        outcomes = list(pool.map(_build_one, jobs))
    indexes = [index for index, _stats in outcomes]
    stats = [s for _index, s in outcomes]
    return indexes, stats


# Same pattern for the query path: the runtimes (fragment + index each)
# dwarf the query, so they cross to each worker exactly once via the
# initializer and every job carries only (runtime position, query).
_WORKER_RUNTIMES: Sequence[FragmentRuntime] | None = None


def _query_pool_init(runtimes: Sequence[FragmentRuntime]) -> None:
    global _WORKER_RUNTIMES
    _WORKER_RUNTIMES = runtimes


def _run_one(args: tuple[int, QClassQuery]) -> FragmentTaskResult:
    position, query = args
    runtimes = _WORKER_RUNTIMES
    if runtimes is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker pool was started without _query_pool_init")
    return execute_fragment_task(runtimes[position], query)


def parallel_execute_query(
    runtimes: Sequence[FragmentRuntime],
    query: QClassQuery,
    *,
    processes: int | None = None,
) -> tuple[frozenset[int], list[FragmentTaskResult]]:
    """Run one query's fragment tasks concurrently; returns (answer, tasks).

    The answer is the Lemma-1 union of the per-fragment results.
    """
    jobs = [(position, query) for position in range(len(runtimes))]
    with ProcessPoolExecutor(
        max_workers=processes, initializer=_query_pool_init, initargs=(tuple(runtimes),)
    ) as pool:
        results = list(pool.map(_run_one, jobs))
    merged: set[int] = set()
    for result in results:
        merged.update(result.local_result)
    return frozenset(merged), results
