"""Typed messages with deterministic byte accounting.

The problem statement (§2.2) accepts exactly two unavoidable transfers
on the *query* path: the coordinator assigning a task to each machine
and each machine returning its results.  The *update* path
(:mod:`repro.live`) adds a coordinator-push epoch delta and its ack —
still strictly coordinator <-> worker; there deliberately is *no*
worker-to-worker message class.

Sizes are estimated with a fixed, documented formula rather than a
serialiser's whim so benchmark numbers are reproducible across runs and
platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.fragment import Fragment
from repro.core.npd import NPDIndex
from repro.core.queries import KeywordSource, NodeSource, QClassQuery

__all__ = [
    "Message",
    "QueryTaskMessage",
    "TaskResultMessage",
    "ApplyUpdatesMessage",
    "AttachSegmentsMessage",
    "EpochAckMessage",
]

_HEADER_BYTES = 24  # message kind + ids + length framing
_NODE_ID_BYTES = 8
_FLOAT_BYTES = 8
_OP_BYTES = 1


@dataclass(frozen=True)
class Message:
    """Base class: source/destination machine ids (-1 = coordinator)."""

    sender: int
    receiver: int

    def estimated_bytes(self) -> int:
        """Wire size estimate of this message."""
        return _HEADER_BYTES


@dataclass(frozen=True)
class QueryTaskMessage(Message):
    """Coordinator -> worker: evaluate ``query`` on your fragment(s)."""

    query: QClassQuery

    def estimated_bytes(self) -> int:
        """Header + per-term source description + radius + operators."""
        size = _HEADER_BYTES
        for term in self.query.terms:
            size += _FLOAT_BYTES  # radius
            source = term.source
            if isinstance(source, KeywordSource):
                size += len(source.keyword.encode("utf-8")) + 2
            elif isinstance(source, NodeSource):
                size += _NODE_ID_BYTES
        # The expression tree: one op byte per internal node; a tree over
        # t leaves has at most t - 1 internal nodes per term reference.
        size += _OP_BYTES * max(0, len(self.query.terms) - 1)
        return size


@dataclass(frozen=True)
class TaskResultMessage(Message):
    """Worker -> coordinator: the fragment-local result node set."""

    fragment_id: int
    result_nodes: frozenset[int]
    wall_seconds: float

    @classmethod
    def from_nodes(
        cls,
        sender: int,
        fragment_id: int,
        nodes: Iterable[int],
        wall_seconds: float,
    ) -> "TaskResultMessage":
        """Convenience constructor from any node iterable."""
        return cls(
            sender=sender,
            receiver=-1,
            fragment_id=fragment_id,
            result_nodes=frozenset(nodes),
            wall_seconds=wall_seconds,
        )

    def estimated_bytes(self) -> int:
        """Header + one node id per result + the timing float."""
        return _HEADER_BYTES + _NODE_ID_BYTES * len(self.result_nodes) + _FLOAT_BYTES


def _fragment_bytes(fragment: Fragment) -> int:
    """Wire size estimate of one fragment's local state."""
    size = _NODE_ID_BYTES * len(fragment.members)
    size += _NODE_ID_BYTES * len(fragment.portals)
    for row in fragment.adjacency.values():
        size += (_NODE_ID_BYTES + _FLOAT_BYTES) * len(row) + _NODE_ID_BYTES
    return size


def _index_bytes(index: NPDIndex) -> int:
    """Wire size estimate of one NPD-index: every recorded distance."""
    return (
        (2 * _NODE_ID_BYTES + _FLOAT_BYTES) * index.num_shortcuts
        + (_NODE_ID_BYTES + _FLOAT_BYTES) * (index.num_recorded_distances - index.num_shortcuts)
        + sum(len(kw.encode("utf-8")) + 2 for kw in index.keyword_entries)
        + _NODE_ID_BYTES * len(index.node_entries)
    )


@dataclass(frozen=True)
class ApplyUpdatesMessage(Message):
    """Coordinator -> worker: replace these fragments' state for ``epoch``.

    Carries only the fragments that actually changed (the epoch delta
    computed by :class:`repro.live.epochs.EpochManager`), each as its
    full post-update ``(fragment, index)`` pair — state shipping, not
    op shipping, so a worker's epoch transition never re-runs impact
    analysis and cannot drift from the coordinator's result.
    """

    epoch: int
    replacements: tuple[tuple[Fragment, NPDIndex], ...]

    def estimated_bytes(self) -> int:
        """Header + epoch + the shipped fragment and index payloads."""
        size = _HEADER_BYTES + _NODE_ID_BYTES
        for fragment, index in self.replacements:
            size += _fragment_bytes(fragment) + _index_bytes(index)
        return size


@dataclass(frozen=True)
class AttachSegmentsMessage(Message):
    """Coordinator -> worker: attach these shared-memory segments.

    The zero-copy counterpart of :class:`ApplyUpdatesMessage`: instead
    of shipping each changed fragment's full state through the pipe, the
    coordinator packs it into a shared-memory segment
    (:func:`repro.shm.pack_fragment`) and sends only the manifests —
    segment name, epoch stamp, array offsets.  The message cost is O(1)
    per fragment regardless of fragment size, which is the whole point.
    """

    epoch: int
    manifests: tuple["object", ...]

    def estimated_bytes(self) -> int:
        """Header + epoch + one fixed-size manifest per fragment.

        A manifest is a segment name (~14 bytes), five integers and two
        floats plus per-array (field, typecode, offset, count) rows —
        budgeted at a flat 128 bytes, matching the measured pickled size
        to within a few dozen bytes and independent of fragment size.
        """
        return _HEADER_BYTES + _NODE_ID_BYTES + 128 * len(self.manifests)


@dataclass(frozen=True)
class EpochAckMessage(Message):
    """Worker -> coordinator: fragments swapped, now serving ``epoch``."""

    epoch: int
    fragment_ids: tuple[int, ...]
    wall_seconds: float

    def estimated_bytes(self) -> int:
        """Header + epoch + acked fragment ids + the timing float."""
        return (
            _HEADER_BYTES
            + _NODE_ID_BYTES * (1 + len(self.fragment_ids))
            + _FLOAT_BYTES
        )
