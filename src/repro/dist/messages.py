"""Typed messages with deterministic byte accounting.

The problem statement (§2.2) accepts exactly two unavoidable transfers:
the coordinator assigning a task to each machine and each machine
returning its results.  These are the only message types that exist —
there deliberately is *no* worker-to-worker message class.

Sizes are estimated with a fixed, documented formula rather than a
serialiser's whim so benchmark numbers are reproducible across runs and
platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.queries import KeywordSource, NodeSource, QClassQuery

__all__ = ["Message", "QueryTaskMessage", "TaskResultMessage"]

_HEADER_BYTES = 24  # message kind + ids + length framing
_NODE_ID_BYTES = 8
_FLOAT_BYTES = 8
_OP_BYTES = 1


@dataclass(frozen=True)
class Message:
    """Base class: source/destination machine ids (-1 = coordinator)."""

    sender: int
    receiver: int

    def estimated_bytes(self) -> int:
        """Wire size estimate of this message."""
        return _HEADER_BYTES


@dataclass(frozen=True)
class QueryTaskMessage(Message):
    """Coordinator -> worker: evaluate ``query`` on your fragment(s)."""

    query: QClassQuery

    def estimated_bytes(self) -> int:
        """Header + per-term source description + radius + operators."""
        size = _HEADER_BYTES
        for term in self.query.terms:
            size += _FLOAT_BYTES  # radius
            source = term.source
            if isinstance(source, KeywordSource):
                size += len(source.keyword.encode("utf-8")) + 2
            elif isinstance(source, NodeSource):
                size += _NODE_ID_BYTES
        # The expression tree: one op byte per internal node; a tree over
        # t leaves has at most t - 1 internal nodes per term reference.
        size += _OP_BYTES * max(0, len(self.query.terms) - 1)
        return size


@dataclass(frozen=True)
class TaskResultMessage(Message):
    """Worker -> coordinator: the fragment-local result node set."""

    fragment_id: int
    result_nodes: frozenset[int]
    wall_seconds: float

    @classmethod
    def from_nodes(
        cls,
        sender: int,
        fragment_id: int,
        nodes: Iterable[int],
        wall_seconds: float,
    ) -> "TaskResultMessage":
        """Convenience constructor from any node iterable."""
        return cls(
            sender=sender,
            receiver=-1,
            fragment_id=fragment_id,
            result_nodes=frozenset(nodes),
            wall_seconds=wall_seconds,
        )

    def estimated_bytes(self) -> int:
        """Header + one node id per result + the timing float."""
        return _HEADER_BYTES + _NODE_ID_BYTES * len(self.result_nodes) + _FLOAT_BYTES
