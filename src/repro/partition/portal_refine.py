"""Portal-minimising partition refinement.

Classic partitioners minimise *edge cut*, but the NPD-index pays for
*portal nodes*: every portal launches an Algorithm-1 backward search and
every DL list is portal-keyed (§3.3–§3.4, Theorem 5's α/β).  Edge cut
and portal count correlate but are not the same objective — moving one
node can remove several cut edges' worth of portals at once, or cut more
edges while exposing fewer nodes.

:func:`refine_portals` post-processes any partition with a greedy pass:
boundary nodes are moved to a neighbouring fragment whenever the move
strictly reduces the total portal count without violating the balance
constraint.  The pass repeats until a sweep makes no move (or the sweep
limit is hit).  It never invalidates partition validity — moves only
reassign nodes.
"""

from __future__ import annotations

from repro.exceptions import PartitionError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition

__all__ = ["refine_portals"]


def _portal_count(network: RoadNetwork, assignment: list[int]) -> int:
    portals = set()
    for u, v, _w in network.edges():
        if assignment[u] != assignment[v]:
            portals.add(u)
            portals.add(v)
    return len(portals)


def _is_portal(network: RoadNetwork, assignment: list[int], node: int) -> bool:
    frag = assignment[node]
    return any(assignment[v] != frag for v, _w in network.neighbors(node)) or (
        network.directed
        and any(assignment[v] != frag for v, _w in network.in_neighbors(node))
    )


def _neighbors_both(network: RoadNetwork, node: int):
    seen = set()
    for v, _w in network.neighbors(node):
        if v not in seen:
            seen.add(v)
            yield v
    if network.directed:
        for v, _w in network.in_neighbors(node):
            if v not in seen:
                seen.add(v)
                yield v


def _portal_delta(
    network: RoadNetwork, assignment: list[int], node: int, target: int
) -> int:
    """Change in total portal count if ``node`` moves to ``target``.

    Only ``node`` and its neighbours can change portal status, so the
    delta is evaluated locally.
    """
    affected = [node] + list(_neighbors_both(network, node))
    before = sum(1 for n in affected if _is_portal(network, assignment, n))
    original = assignment[node]
    assignment[node] = target
    after = sum(1 for n in affected if _is_portal(network, assignment, n))
    assignment[node] = original
    return after - before


def refine_portals(
    network: RoadNetwork,
    partition: Partition,
    *,
    balance_tolerance: float = 0.1,
    max_sweeps: int = 4,
) -> Partition:
    """Greedily move boundary nodes to reduce the total portal count.

    Fragment sizes are kept within ``(1 + balance_tolerance)`` of the
    ideal and never drop below one node.  Returns a new
    :class:`Partition`; the input is not modified.
    """
    if balance_tolerance < 0:
        raise PartitionError("balance_tolerance must be non-negative")
    assignment = list(partition.assignment)
    k = partition.num_fragments
    sizes = partition.sizes()
    max_size = (1.0 + balance_tolerance) * network.num_nodes / k

    for _sweep in range(max_sweeps):
        moved = False
        for node in range(network.num_nodes):
            frag = assignment[node]
            if not _is_portal(network, assignment, node):
                continue
            if sizes[frag] <= 1:
                continue
            candidates = {
                assignment[v]
                for v in _neighbors_both(network, node)
                if assignment[v] != frag
            }
            best_target = -1
            best_delta = 0
            for target in candidates:
                if sizes[target] + 1 > max_size:
                    continue
                delta = _portal_delta(network, assignment, node, target)
                if delta < best_delta:
                    best_delta = delta
                    best_target = target
            if best_target >= 0:
                assignment[node] = best_target
                sizes[frag] -= 1
                sizes[best_target] += 1
                moved = True
        if not moved:
            break
    return Partition.from_assignment(assignment, k)
