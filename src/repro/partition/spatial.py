"""Recursive coordinate-bisection partitioner.

Splits the positioned node set along alternating axes, dividing the
fragment budget proportionally, so any ``k`` (not just powers of two) is
supported.  Road networks embed in the plane, so coordinate bisection
yields compact fragments with short borders — a classic geometric
baseline against the multilevel partitioner.
"""

from __future__ import annotations

from repro.exceptions import PartitionError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition

__all__ = ["SpatialPartitioner"]


class SpatialPartitioner:
    """Balanced recursive bisection on node coordinates."""

    def partition(self, network: RoadNetwork, k: int) -> Partition:
        """Partition ``network`` into ``k`` spatially compact fragments.

        Requires node positions; raises :class:`PartitionError` otherwise.
        """
        n = network.num_nodes
        if k < 1 or k > n:
            raise PartitionError(f"cannot split {n} nodes into {k} fragments")
        if not network.has_positions:
            raise PartitionError("SpatialPartitioner requires node coordinates")

        assignment = [0] * n
        nodes = list(range(n))
        next_fragment = 0

        def bisect(node_set: list[int], parts: int, axis: int) -> None:
            nonlocal next_fragment
            if parts == 1:
                frag = next_fragment
                next_fragment += 1
                for node in node_set:
                    assignment[node] = frag
                return
            left_parts = parts // 2
            right_parts = parts - left_parts
            node_set.sort(key=lambda u: (network.position(u)[axis], u))
            split = len(node_set) * left_parts // parts
            split = max(left_parts, min(split, len(node_set) - right_parts))
            bisect(node_set[:split], left_parts, 1 - axis)
            bisect(node_set[split:], right_parts, 1 - axis)

        bisect(nodes, k, 0)
        return Partition.from_assignment(assignment, k)
