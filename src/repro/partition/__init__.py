"""Graph-partitioning substrate (the paper's ParMETIS stand-in).

The paper fragments each road network into ``N`` node-disjoint fragments
"aiming at minimizing cross-partition edges" with balanced sizes (§6).
This subpackage provides that capability from scratch:

* :class:`MultilevelPartitioner` — METIS-style multilevel k-way
  partitioning (heavy-edge-matching coarsening, greedy-growing initial
  partition, boundary FM refinement); the default.
* :class:`BfsPartitioner` — seeded region growing; fast, decent locality.
* :class:`SpatialPartitioner` — recursive coordinate bisection; needs
  node positions.
* :class:`RandomPartitioner` — balanced random assignment; the ablation
  worst case (maximal portal counts).
"""

from repro.partition.base import Partition, Partitioner, validate_partition
from repro.partition.metrics import PartitionQuality, evaluate_partition
from repro.partition.random_parts import RandomPartitioner
from repro.partition.bfs import BfsPartitioner
from repro.partition.spatial import SpatialPartitioner
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.portal_refine import refine_portals

__all__ = [
    "refine_portals",
    "Partition",
    "Partitioner",
    "validate_partition",
    "PartitionQuality",
    "evaluate_partition",
    "RandomPartitioner",
    "BfsPartitioner",
    "SpatialPartitioner",
    "MultilevelPartitioner",
]
