"""Quality metrics for a fragmentation.

The two quantities the paper cares about are the *edge cut* (cross-
fragment edges create portal nodes, and portal count drives both index
size and construction cost — §3.3/§4.1) and *balance* (Theorem 6 ties
the unbalance factor to per-fragment task costs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition

__all__ = ["PartitionQuality", "evaluate_partition"]


@dataclass(frozen=True)
class PartitionQuality:
    """Metrics of one partition of one network."""

    num_fragments: int
    edge_cut: int
    cut_fraction: float
    sizes: tuple[int, ...]
    balance: float
    total_portals: int
    portals_per_fragment: tuple[int, ...]

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"k={self.num_fragments} cut={self.edge_cut} "
            f"({self.cut_fraction:.2%} of edges) balance={self.balance:.3f} "
            f"portals={self.total_portals}"
        )


def evaluate_partition(network: RoadNetwork, partition: Partition) -> PartitionQuality:
    """Compute :class:`PartitionQuality` for ``partition`` on ``network``.

    * ``edge_cut`` — number of edges whose endpoints lie in different
      fragments (each such endpoint is a *portal node*, §3.2).
    * ``balance`` — ``max fragment size / ideal size``; 1.0 is perfect.
    * ``portals_per_fragment`` — portal-node count of each fragment.
    """
    assignment = partition.assignment
    cut = 0
    portal_sets: list[set[int]] = [set() for _ in range(partition.num_fragments)]
    for u, v, _w in network.edges():
        fu, fv = assignment[u], assignment[v]
        if fu != fv:
            cut += 1
            portal_sets[fu].add(u)
            portal_sets[fv].add(v)
    sizes = tuple(partition.sizes())
    ideal = network.num_nodes / partition.num_fragments if partition.num_fragments else 1.0
    balance = (max(sizes) / ideal) if ideal > 0 and sizes else 1.0
    portals = tuple(len(s) for s in portal_sets)
    return PartitionQuality(
        num_fragments=partition.num_fragments,
        edge_cut=cut,
        cut_fraction=(cut / network.num_edges) if network.num_edges else 0.0,
        sizes=sizes,
        balance=balance,
        total_portals=sum(portals),
        portals_per_fragment=portals,
    )
