"""Partition result type and partitioner protocol.

A *partition* (the paper calls its parts "fragments") assigns every node
of a road network to exactly one of ``k`` fragments.  Node-disjointness
and coverage are structural here — the assignment is a dense array — and
:func:`validate_partition` checks the remaining integrity conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.exceptions import PartitionError
from repro.graph.road_network import RoadNetwork

__all__ = ["Partition", "Partitioner", "validate_partition"]


@dataclass(frozen=True)
class Partition:
    """An assignment of nodes to fragments.

    Attributes
    ----------
    assignment:
        ``assignment[node]`` is the fragment id (``0..num_fragments-1``).
    num_fragments:
        The fragment count ``N`` of the paper's problem statement.
    """

    assignment: tuple[int, ...]
    num_fragments: int

    def __post_init__(self) -> None:
        if self.num_fragments < 1:
            raise PartitionError("a partition needs at least one fragment")
        for node, frag in enumerate(self.assignment):
            if not (0 <= frag < self.num_fragments):
                raise PartitionError(
                    f"node {node} assigned to invalid fragment {frag} "
                    f"(num_fragments={self.num_fragments})"
                )

    @classmethod
    def from_assignment(cls, assignment: Sequence[int], num_fragments: int | None = None) -> "Partition":
        """Build from any integer sequence; infers ``num_fragments`` if omitted."""
        tup = tuple(int(a) for a in assignment)
        if num_fragments is None:
            num_fragments = (max(tup) + 1) if tup else 1
        return cls(tup, num_fragments)

    @property
    def num_nodes(self) -> int:
        """Number of assigned nodes."""
        return len(self.assignment)

    def fragment_of(self, node: int) -> int:
        """The paper's ``part(A)``: the fragment containing ``node``."""
        return self.assignment[node]

    def members(self, fragment: int) -> list[int]:
        """Sorted node ids of one fragment."""
        if not (0 <= fragment < self.num_fragments):
            raise PartitionError(f"fragment {fragment} out of range")
        return [node for node, frag in enumerate(self.assignment) if frag == fragment]

    def all_members(self) -> list[list[int]]:
        """Node lists of every fragment, indexed by fragment id."""
        buckets: list[list[int]] = [[] for _ in range(self.num_fragments)]
        for node, frag in enumerate(self.assignment):
            buckets[frag].append(node)
        return buckets

    def sizes(self) -> list[int]:
        """Node count per fragment."""
        counts = [0] * self.num_fragments
        for frag in self.assignment:
            counts[frag] += 1
        return counts


@runtime_checkable
class Partitioner(Protocol):
    """Anything that can fragment a road network into ``k`` parts."""

    def partition(self, network: RoadNetwork, k: int) -> Partition:
        """Produce a :class:`Partition` of ``network`` into ``k`` fragments."""
        ...


def validate_partition(
    network: RoadNetwork,
    partition: Partition,
    *,
    require_nonempty: bool = True,
) -> None:
    """Raise :class:`PartitionError` if ``partition`` does not fit ``network``.

    Checks the node count matches and (optionally) that no fragment is
    empty — an empty fragment would make a worker machine idle and, more
    importantly, break the paper's per-fragment accounting.
    """
    if partition.num_nodes != network.num_nodes:
        raise PartitionError(
            f"partition covers {partition.num_nodes} nodes but the network has "
            f"{network.num_nodes}"
        )
    if require_nonempty:
        sizes = partition.sizes()
        empty = [i for i, s in enumerate(sizes) if s == 0]
        if empty:
            raise PartitionError(f"fragments {empty} are empty")
