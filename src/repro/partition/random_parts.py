"""Balanced random partitioner.

Assigns a shuffled node permutation to fragments in equal-size chunks.
Locality is deliberately terrible — nearly every edge is cut — which
makes this the worst-case ablation baseline for portal counts and
NPD-index size.
"""

from __future__ import annotations

import random

from repro.exceptions import PartitionError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition

__all__ = ["RandomPartitioner"]


class RandomPartitioner:
    """Uniformly random, perfectly balanced fragment assignment."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def partition(self, network: RoadNetwork, k: int) -> Partition:
        """Partition ``network`` into ``k`` equal-size random fragments."""
        n = network.num_nodes
        if k < 1 or k > n:
            raise PartitionError(f"cannot split {n} nodes into {k} fragments")
        rng = random.Random(self._seed)
        order = list(range(n))
        rng.shuffle(order)
        assignment = [0] * n
        for rank, node in enumerate(order):
            assignment[node] = rank * k // n
        return Partition.from_assignment(assignment, k)
