"""Seeded BFS region-growing partitioner.

Seeds are spread with a farthest-point sweep (in BFS hops), then the
``k`` regions grow breadth-first, always expanding the currently
smallest fragment.  The result is balanced and spatially contiguous,
cutting far fewer edges than random assignment; the multilevel
partitioner also uses it to seed coarse-level partitions.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappop, heappush

from repro.exceptions import PartitionError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition

__all__ = ["BfsPartitioner"]


class BfsPartitioner:
    """Balanced BFS region growing from farthest-point seeds."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def _spread_seeds(self, network: RoadNetwork, k: int, rng: random.Random) -> list[int]:
        """Pick ``k`` seed nodes pairwise far apart (BFS-hop metric)."""
        n = network.num_nodes
        seeds = [rng.randrange(n)]
        hop_dist = [0] * n  # min hops to any chosen seed

        def bfs_update(source: int) -> None:
            dist = {source: 0}
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for v, _w in network.neighbors(u):
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        queue.append(v)
            for node in range(n):
                d = dist.get(node, n)
                if len(seeds) == 1:
                    hop_dist[node] = d
                else:
                    hop_dist[node] = min(hop_dist[node], d)

        bfs_update(seeds[0])
        while len(seeds) < k:
            candidate = max(range(n), key=lambda node: (hop_dist[node], node))
            if candidate in seeds:  # graph smaller than hoped; fall back to random
                remaining = [node for node in range(n) if node not in seeds]
                candidate = rng.choice(remaining)
            seeds.append(candidate)
            bfs_update(candidate)
        return seeds

    def partition(self, network: RoadNetwork, k: int) -> Partition:
        """Partition ``network`` into ``k`` contiguous balanced fragments."""
        n = network.num_nodes
        if k < 1 or k > n:
            raise PartitionError(f"cannot split {n} nodes into {k} fragments")
        rng = random.Random(self._seed)
        assignment = [-1] * n
        seeds = self._spread_seeds(network, k, rng)

        frontiers: list[deque[int]] = [deque([s]) for s in seeds]
        sizes = [0] * k
        # Heap keyed by (fragment size, fragment id): always grow the
        # smallest fragment next, which keeps the result balanced.
        heap: list[tuple[int, int]] = [(0, frag) for frag in range(k)]
        unassigned = n

        while unassigned:
            progressed = False
            while heap:
                size, frag = heappop(heap)
                if size != sizes[frag]:
                    continue  # stale entry
                frontier = frontiers[frag]
                node = -1
                while frontier:
                    candidate = frontier.popleft()
                    if assignment[candidate] == -1:
                        node = candidate
                        break
                if node == -1:
                    # Frontier exhausted: steal an arbitrary unassigned node
                    # (covers disconnected components and boxed-in seeds).
                    for candidate in range(n):
                        if assignment[candidate] == -1:
                            node = candidate
                            break
                if node == -1:
                    break
                assignment[node] = frag
                sizes[frag] += 1
                unassigned -= 1
                progressed = True
                for v, _w in network.neighbors(node):
                    if assignment[v] == -1:
                        frontiers[frag].append(v)
                heappush(heap, (sizes[frag], frag))
                break
            if not progressed:  # pragma: no cover - defensive guard
                raise PartitionError("region growing stalled with unassigned nodes")
        return Partition.from_assignment(assignment, k)
