"""Multilevel k-way graph partitioner (the ParMETIS stand-in).

The paper fragments its road networks with ParMETIS "for a balanced
fragmenting" (§6).  This module reimplements the multilevel scheme that
family of tools uses:

1. **Coarsening** — repeated heavy-edge matching contracts the graph
   until it is small;
2. **Initial partitioning** — weighted greedy region growing on the
   coarsest graph;
3. **Uncoarsening + refinement** — the partition is projected back level
   by level and improved with a boundary Fiduccia–Mattheyses (FM) pass
   that moves nodes by cut-gain under a balance constraint.

The implementation works on an internal weighted-graph form so that
coarse levels can carry merged node weights and parallel-edge sums.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import PartitionError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition
from repro.search.heap import IndexedBinaryHeap

__all__ = ["MultilevelPartitioner"]


@dataclass
class _Level:
    """One graph in the coarsening hierarchy."""

    adjacency: list[dict[int, float]]  # node -> {neighbor: edge weight}
    node_weights: list[int]  # merged original-node counts
    fine_to_coarse: list[int] | None  # mapping from the next-finer level


def _network_to_level(network: RoadNetwork) -> _Level:
    adjacency: list[dict[int, float]] = [dict() for _ in range(network.num_nodes)]
    for u, v, w in network.edges():
        # Treat the graph as undirected for partitioning purposes even in
        # directed mode: locality is symmetric.
        adjacency[u][v] = adjacency[u].get(v, 0.0) + w
        adjacency[v][u] = adjacency[v].get(u, 0.0) + w
    return _Level(adjacency, [1] * network.num_nodes, None)


def _coarsen(level: _Level, rng: random.Random) -> _Level | None:
    """One round of heavy-edge matching; ``None`` when it stops shrinking."""
    n = len(level.adjacency)
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for u in order:
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for v, w in level.adjacency[u].items():
            if match[v] == -1 and w > best_w:
                best, best_w = v, w
        if best != -1:
            match[u] = best
            match[best] = u

    fine_to_coarse = [-1] * n
    coarse_count = 0
    for u in range(n):
        if fine_to_coarse[u] != -1:
            continue
        fine_to_coarse[u] = coarse_count
        if match[u] != -1:
            fine_to_coarse[match[u]] = coarse_count
        coarse_count += 1

    if coarse_count > 0.95 * n:  # matching stalled; stop coarsening
        return None

    adjacency: list[dict[int, float]] = [dict() for _ in range(coarse_count)]
    node_weights = [0] * coarse_count
    for u in range(n):
        cu = fine_to_coarse[u]
        node_weights[cu] += level.node_weights[u]
        for v, w in level.adjacency[u].items():
            cv = fine_to_coarse[v]
            if cu == cv:
                continue
            adjacency[cu][cv] = adjacency[cu].get(cv, 0.0) + w
    return _Level(adjacency, node_weights, fine_to_coarse)


def _grow_initial(level: _Level, k: int, rng: random.Random) -> list[int]:
    """Weighted greedy region growing on the coarsest graph."""
    n = len(level.adjacency)
    assignment = [-1] * n
    weights = level.node_weights
    seeds = rng.sample(range(n), k)
    part_weight = [0] * k
    frontiers: list[list[int]] = [[s] for s in seeds]
    unassigned = n

    while unassigned:
        frag = min(range(k), key=lambda f: part_weight[f])
        node = -1
        frontier = frontiers[frag]
        while frontier:
            candidate = frontier.pop()
            if assignment[candidate] == -1:
                node = candidate
                break
        if node == -1:
            for candidate in range(n):
                if assignment[candidate] == -1:
                    node = candidate
                    break
        if node == -1:
            break
        assignment[node] = frag
        part_weight[frag] += weights[node]
        unassigned -= 1
        for v in level.adjacency[node]:
            if assignment[v] == -1:
                frontiers[frag].append(v)
    return assignment


def _refine(
    level: _Level,
    assignment: list[int],
    k: int,
    *,
    balance_tolerance: float,
    max_passes: int,
) -> None:
    """Boundary FM refinement: greedy positive-gain moves under balance."""
    adjacency = level.adjacency
    weights = level.node_weights
    total_weight = sum(weights)
    max_part = (1.0 + balance_tolerance) * total_weight / k
    part_weight = [0] * k
    for u, frag in enumerate(assignment):
        part_weight[frag] += weights[u]

    def best_move(u: int) -> tuple[float, int]:
        """Highest cut-gain move of ``u``, as ``(gain, target_fragment)``."""
        here = assignment[u]
        link: dict[int, float] = {}
        for v, w in adjacency[u].items():
            link[assignment[v]] = link.get(assignment[v], 0.0) + w
        internal = link.get(here, 0.0)
        gain, target = 0.0, here
        for frag, w in link.items():
            if frag == here:
                continue
            g = w - internal
            if g > gain and part_weight[frag] + weights[u] <= max_part:
                gain, target = g, frag
        return gain, target

    for _ in range(max_passes):
        heap: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        boundary = [
            u
            for u in range(len(adjacency))
            if any(assignment[v] != assignment[u] for v in adjacency[u])
        ]
        for u in boundary:
            gain, _target = best_move(u)
            if gain > 0:
                heap.push(u, -gain)  # min-heap: negate for max-gain order
        improved = False
        moved: set[int] = set()
        while heap:
            u, neg_gain = heap.pop()
            if u in moved:
                continue
            gain, target = best_move(u)  # recompute: neighbours may have moved
            if gain <= 0 or target == assignment[u]:
                continue
            if part_weight[target] + weights[u] > max_part:
                continue
            part_weight[assignment[u]] -= weights[u]
            part_weight[target] += weights[u]
            assignment[u] = target
            moved.add(u)
            improved = True
            for v in adjacency[u]:
                if v in moved:
                    continue
                g, _t = best_move(v)
                if g > 0:
                    heap.push_or_update(v, -g)
                elif v in heap:
                    heap.remove(v)
        if not improved:
            break


class MultilevelPartitioner:
    """METIS-style multilevel k-way partitioner.

    Parameters
    ----------
    seed:
        RNG seed (matching order, initial seeds).
    balance_tolerance:
        Allowed overshoot of the ideal fragment weight (0.05 = 5%),
        matching the paper's "balanced fragmenting" requirement.
    coarsen_to:
        Stop coarsening once the graph has at most
        ``max(coarsen_to, 8 * k)`` nodes.
    refine_passes:
        FM passes per uncoarsening level.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        balance_tolerance: float = 0.05,
        coarsen_to: int = 128,
        refine_passes: int = 4,
    ) -> None:
        if balance_tolerance < 0:
            raise PartitionError("balance_tolerance must be non-negative")
        self._seed = seed
        self._balance_tolerance = balance_tolerance
        self._coarsen_to = coarsen_to
        self._refine_passes = refine_passes

    def partition(self, network: RoadNetwork, k: int) -> Partition:
        """Partition ``network`` into ``k`` balanced min-cut fragments."""
        n = network.num_nodes
        if k < 1 or k > n:
            raise PartitionError(f"cannot split {n} nodes into {k} fragments")
        if k == 1:
            return Partition.from_assignment([0] * n, 1)

        rng = random.Random(self._seed)
        levels = [_network_to_level(network)]
        target = max(self._coarsen_to, 8 * k)
        while len(levels[-1].adjacency) > target:
            coarser = _coarsen(levels[-1], rng)
            if coarser is None:
                break
            levels.append(coarser)

        assignment = _grow_initial(levels[-1], k, rng)
        _refine(
            levels[-1],
            assignment,
            k,
            balance_tolerance=self._balance_tolerance,
            max_passes=self._refine_passes,
        )

        for level_index in range(len(levels) - 1, 0, -1):
            mapping = levels[level_index].fine_to_coarse
            assert mapping is not None
            finer = levels[level_index - 1]
            assignment = [assignment[mapping[u]] for u in range(len(finer.adjacency))]
            _refine(
                finer,
                assignment,
                k,
                balance_tolerance=self._balance_tolerance,
                max_passes=self._refine_passes,
            )

        assignment = _repair_empty_fragments(levels[0], assignment, k)
        return Partition.from_assignment(assignment, k)


def _repair_empty_fragments(level: _Level, assignment: list[int], k: int) -> list[int]:
    """Give every empty fragment a node from the largest fragment.

    Greedy growing can starve a fragment on adversarial graphs; workers
    must all own at least one node, so fix it up explicitly.
    """
    sizes = [0] * k
    for frag in assignment:
        sizes[frag] += 1
    for frag in range(k):
        if sizes[frag]:
            continue
        donor = max(range(k), key=lambda f: sizes[f])
        victim = next(u for u, f in enumerate(assignment) if f == donor)
        assignment[victim] = frag
        sizes[donor] -= 1
        sizes[frag] += 1
    return assignment
