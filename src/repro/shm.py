"""Shared-memory fragment segments: the zero-copy side of the data plane.

Workers used to receive their fragments as pickled ``(Fragment,
NPDIndex)`` pairs — megabytes per fork, re-sent on every epoch swap.
This module packs the *compiled* query-time state
(:class:`repro.core.kernel.FragmentKernel`'s flat CSR arrays, seed
tables and scalars) into one ``multiprocessing.shared_memory`` segment
per fragment.  The coordinator owns the segments; workers receive only
a tiny :class:`SegmentManifest` (segment name, dtypes, offsets, epoch
stamp) and attach read-only, ``cast``-ing memoryviews straight over the
mapped pages — the CSR never crosses a pipe and is shared, not copied,
across every worker on the host.

Segment layout (all little-endian, offsets 8-byte aligned)::

    [indptr  int64 × (n+1)]
    [indices int64 × nnz  ]
    [weights f64   × nnz  ]
    [globals int64 × n    ]   sorted global node ids (dense id -> global)
    [tables  utf-8 JSON   ]   keyword seed lists + DL portal arrays

The variable-size keyword/portal tables ride *inside* the segment as a
JSON blob (Python ``json`` round-trips floats exactly), so the manifest
stays O(1) bytes regardless of fragment size — that is what makes the
per-worker startup payload shrink by orders of magnitude.

Epoch lifecycle (:class:`SharedSegmentStore`): an epoch swap *publishes*
fresh segments, then the old ``(fragment, epoch)`` segments are retired
refcount-style — a segment is unlinked only once every worker leasing
that fragment has acknowledged a newer epoch.  Workers are serial FIFO
loops, so an apply-ack proves the worker holds no in-flight query on
the old epoch; in-flight queries therefore always finish on the epoch
they started (the all-old-or-all-new guarantee is preserved end to
end).  Worker death releases its leases; shutdown unlinks everything.
"""

from __future__ import annotations

import json
import threading
from array import array
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.core.coverage import CacheStats
from repro.core.fragment import Fragment
from repro.core.kernel import FragmentKernel
from repro.core.npd import NPDIndex
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource

__all__ = [
    "SegmentManifest",
    "pack_fragment",
    "attach_segment",
    "SharedKernelRuntime",
    "ShmWorkerRuntimes",
    "SharedSegmentStore",
]

_ALIGN = 8
_ITEMSIZE = 8  # both 'q' and 'd' are 8 bytes


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to attach one fragment segment.

    ``arrays`` maps each fixed-layout array to ``(field, typecode,
    byte offset, element count)``; the JSON tables region follows at
    ``tables_offset``.  The manifest is a few hundred bytes however
    large the fragment is.
    """

    name: str
    fragment_id: int
    epoch: int
    num_nodes: int
    nbytes: int
    max_radius: float
    inv_delta: float
    bucket_limit: int
    arrays: tuple[tuple[str, str, int, int], ...]
    tables_offset: int
    tables_nbytes: int


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_fragment(
    fragment: Fragment, index: NPDIndex, *, epoch: int = 0
) -> tuple[SegmentManifest, shared_memory.SharedMemory]:
    """Compile ``(fragment, index)`` and pack the kernel into a segment.

    Returns the manifest plus the owning :class:`SharedMemory` handle —
    the caller (normally :class:`SharedSegmentStore`) keeps the handle
    and is responsible for ``unlink``.  The kernel is compiled here, on
    the coordinator, exactly once per epoch; attaching workers skip
    compilation entirely.
    """
    kernel = FragmentKernel(fragment, index)
    fixed: list[tuple[str, array]] = [
        ("indptr", kernel.indptr),
        ("indices", kernel.indices),
        ("weights", kernel.weights),
        ("globals", array("q", kernel._globals)),
    ]
    tables = {
        "kw_local": {kw: list(ids) for kw, ids in kernel._kw_local.items()},
        "kw_portals": {
            kw: [list(ids), list(dists)] for kw, (ids, dists) in kernel._kw_portals.items()
        },
        "node_portals": {
            str(node): [list(ids), list(dists)]
            for node, (ids, dists) in kernel._node_portals.items()
        },
    }
    tables_blob = json.dumps(tables, separators=(",", ":")).encode("utf-8")

    layout: list[tuple[str, str, int, int]] = []
    cursor = 0
    for field, arr in fixed:
        cursor = _align(cursor)
        layout.append((field, arr.typecode, cursor, len(arr)))
        cursor += len(arr) * _ITEMSIZE
    tables_offset = _align(cursor)
    total = max(1, tables_offset + len(tables_blob))

    shm = shared_memory.SharedMemory(create=True, size=total)
    buf = shm.buf
    for (_field, typecode, offset, count), (_name, arr) in zip(layout, fixed):
        if count:
            buf[offset : offset + count * _ITEMSIZE].cast(typecode)[:] = arr
    buf[tables_offset : tables_offset + len(tables_blob)] = tables_blob

    manifest = SegmentManifest(
        name=shm.name,
        fragment_id=kernel.fragment_id,
        epoch=epoch,
        num_nodes=kernel.num_nodes,
        nbytes=total,
        max_radius=index.max_radius,
        inv_delta=kernel._inv_delta,
        bucket_limit=kernel.bucket_limit,
        arrays=tuple(layout),
        tables_offset=tables_offset,
        tables_nbytes=len(tables_blob),
    )
    return manifest, shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup responsibility.

    Python < 3.13 registers *every* ``SharedMemory`` — even pure
    attaches — with the resource tracker, which would unlink the
    coordinator-owned segment when an attaching worker exits.  3.13+
    has ``track=False`` for exactly this; on older versions the
    registration is suppressed for the duration of the attach.
    (``unregister`` would be wrong: forked workers share the
    coordinator's tracker process, so unregistering after the duplicate
    attach-registration would cancel the coordinator's own entry and
    lose the crash-cleanup safety net.)
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *_a, **_k: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class _FragmentHandle:
    """The one attribute of ``Fragment`` the executors actually read."""

    __slots__ = ("fragment_id",)

    def __init__(self, fragment_id: int) -> None:
        self.fragment_id = fragment_id


class SharedKernelRuntime:
    """Duck-typed :class:`~repro.core.coverage.FragmentRuntime` over a segment.

    Implements exactly the surface
    :func:`repro.core.executor.execute_fragment_task` and
    :func:`repro.core.coverage.batch_distance_maps` touch: ``fragment``
    (id only), ``compiled``, ``kernel``, ``max_radius``, ``_cache_key``
    and the (disabled) coverage-cache trio.  No ``Fragment`` or
    ``NPDIndex`` objects exist in the worker at all.
    """

    compiled = True

    def __init__(self, manifest: SegmentManifest, shm: shared_memory.SharedMemory) -> None:
        self.manifest = manifest
        self._shm = shm
        self.fragment = _FragmentHandle(manifest.fragment_id)
        self.max_radius = manifest.max_radius
        buf = shm.buf
        views = {
            field: buf[offset : offset + count * _ITEMSIZE].cast(typecode)
            for field, typecode, offset, count in manifest.arrays
        }
        raw = bytes(
            buf[manifest.tables_offset : manifest.tables_offset + manifest.tables_nbytes]
        )
        tables = json.loads(raw.decode("utf-8"))
        kw_local = {kw: tuple(ids) for kw, ids in tables["kw_local"].items()}
        kw_portals = {
            kw: (array("q", ids), array("d", dists))
            for kw, (ids, dists) in tables["kw_portals"].items()
        }
        node_portals = {
            int(node): (array("q", ids), array("d", dists))
            for node, (ids, dists) in tables["node_portals"].items()
        }
        self.kernel = FragmentKernel.from_packed(
            fragment_id=manifest.fragment_id,
            num_nodes=manifest.num_nodes,
            indptr=views["indptr"],
            indices=views["indices"],
            weights=views["weights"],
            node_globals=views["globals"],
            kw_local=kw_local,
            kw_portals=kw_portals,
            node_portals=node_portals,
            inv_delta=manifest.inv_delta,
            bucket_limit=manifest.bucket_limit,
        )

    # -- coverage-cache surface (caching is a coordinator-policy feature;
    # shm workers run cacheless like the default serving runtimes) -----
    def _cache_key(self, term: CoverageTerm):
        source = term.source
        if isinstance(source, KeywordSource):
            return ("kw", source.keyword), term.radius
        assert isinstance(source, NodeSource)
        return ("node", source.node), term.radius

    def cached_distance_map(self, term: CoverageTerm):
        """Always None: shared segments are read-only, so nothing is memoised."""
        return None

    def store_distance_map(self, term: CoverageTerm, distances) -> None:
        """No-op: a read-only attachment cannot grow a per-term cache."""
        return None

    @property
    def cache_stats(self) -> CacheStats:
        return CacheStats(0, 0, 0)

    def release(self) -> None:
        """Drop the kernel's memoryviews and unmap the segment.

        The segment itself stays alive until the *coordinator* unlinks
        it; releasing twice is a no-op.  A ``BufferError`` (an exported
        view still referenced elsewhere) is suppressed — the mapping
        then dies with the process, which is equivalent for a worker.
        """
        self.kernel = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views remain
            pass


class ShmWorkerRuntimes:
    """Worker-side registry of attached fragment segments.

    ``attach`` is idempotent by segment name (double-attach keeps the
    existing mapping), and an epoch swap replaces the runtime for a
    fragment in place — dict key overwrite preserves fragment order, so
    ``runtimes()`` is stable across epochs.
    """

    def __init__(self) -> None:
        self._by_fragment: dict[int, SharedKernelRuntime] = {}

    def attach(self, manifests: list[SegmentManifest]) -> list[int]:
        """Attach/replace segments; returns the fragment ids swapped."""
        swapped: list[int] = []
        for manifest in manifests:
            current = self._by_fragment.get(manifest.fragment_id)
            if current is not None and current.manifest.name == manifest.name:
                continue
            shm = attach_segment(manifest.name)
            self._by_fragment[manifest.fragment_id] = SharedKernelRuntime(manifest, shm)
            if current is not None:
                current.release()
            swapped.append(manifest.fragment_id)
        return swapped

    def runtimes(self) -> list[SharedKernelRuntime]:
        """Every currently attached runtime, in attachment order."""
        return list(self._by_fragment.values())

    def release_all(self) -> None:
        """Close every attachment (without unlinking the segments)."""
        for runtime in self._by_fragment.values():
            runtime.release()
        self._by_fragment.clear()


class SharedSegmentStore:
    """Coordinator-side segment registry with refcounted epoch retirement.

    ``publish`` packs a new segment for ``(fragment, epoch)``;
    ``lease`` records which epoch each machine currently serves for
    each of its fragments (called on startup hand-off and on every
    apply-ack).  A superseded segment is unlinked once every machine
    leasing its fragment has moved past its epoch — workers are serial,
    so their ack proves no in-flight query still reads the old pages.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[tuple[int, int], tuple[SegmentManifest, object]] = {}
        self._leases: dict[int, dict[int, int]] = {}

    def publish(self, fragment: Fragment, index: NPDIndex, *, epoch: int) -> SegmentManifest:
        """Pack a fragment into a new segment and start tracking it.

        Idempotent per ``(fragment, epoch)``: with replica groups the
        same fragment is published once per hosting machine, and packing
        a second segment would orphan the first (the dict overwrite
        drops its only handle).  The existing manifest is returned
        instead — replicas attach the same read-only pages.
        """
        with self._lock:
            tracked = self._segments.get((fragment.fragment_id, epoch))
            if tracked is not None:
                return tracked[0]
        manifest, shm = pack_fragment(fragment, index, epoch=epoch)
        with self._lock:
            raced = self._segments.get((manifest.fragment_id, epoch))
            if raced is not None:
                _destroy(shm)
                return raced[0]
            self._segments[(manifest.fragment_id, epoch)] = (manifest, shm)
        return manifest

    def lease(self, machine_id: int, manifests: list[SegmentManifest]) -> None:
        """Record that a machine now reads these segments; retire superseded ones."""
        with self._lock:
            held = self._leases.setdefault(machine_id, {})
            for manifest in manifests:
                held[manifest.fragment_id] = max(
                    manifest.epoch, held.get(manifest.fragment_id, manifest.epoch)
                )
            self._retire_superseded_locked()

    def release_machine(self, machine_id: int) -> None:
        """Forget a dead machine's leases (its mapping died with it)."""
        with self._lock:
            self._leases.pop(machine_id, None)
            self._retire_superseded_locked()

    def _retire_superseded_locked(self) -> None:
        for key in list(self._segments):
            fragment_id, epoch = key
            held = [
                leases[fragment_id]
                for leases in self._leases.values()
                if fragment_id in leases
            ]
            if held and all(e > epoch for e in held):
                _manifest, shm = self._segments.pop(key)
                _destroy(shm)

    def leases_snapshot(self) -> dict[int, dict[int, int]]:
        """machine id → {fragment id → leased epoch} (introspection)."""
        with self._lock:
            return {m: dict(held) for m, held in self._leases.items()}

    def segment_names(self) -> list[str]:
        """Names of every live segment (test/debug introspection)."""
        with self._lock:
            return [manifest.name for manifest, _shm in self._segments.values()]

    def unlink_all(self) -> None:
        """Unlink every tracked segment — the cluster-shutdown sweep."""
        with self._lock:
            for _manifest, shm in self._segments.values():
                _destroy(shm)
            self._segments.clear()
            self._leases.clear()


def _destroy(shm) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views remain
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
