"""Exception hierarchy for the DiSKS library.

Every error raised deliberately by this library derives from
:class:`DisksError`, so callers can catch a single base class at API
boundaries while still being able to discriminate failure modes.
"""

from __future__ import annotations

__all__ = [
    "DisksError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeError",
    "DisconnectedGraphError",
    "PartitionError",
    "IndexBuildError",
    "IndexLookupError",
    "QueryError",
    "UnknownKeywordError",
    "RadiusExceededError",
    "StorageError",
    "CodecError",
    "ChecksumError",
    "ClusterError",
    "CommunicationViolationError",
    "LiveUpdateError",
]


class DisksError(Exception):
    """Base class for all DiSKS library errors."""


class GraphError(DisksError):
    """A road-network graph is malformed or an operation on it is invalid."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node id does not exist in the graph."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id!r} does not exist in the road network")
        self.node_id = node_id

    def __reduce__(self):
        """Rebuild from the original argument (pickles across processes)."""
        return (type(self), (self.node_id,))


class EdgeError(GraphError):
    """An edge is invalid (negative weight, self loop, duplicate, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation required a connected graph but the graph is not connected."""


class PartitionError(DisksError):
    """A fragmentation of the road network is invalid or cannot be produced."""


class IndexBuildError(DisksError):
    """NPD-index construction failed or was mis-parameterised."""


class IndexLookupError(DisksError, KeyError):
    """A lookup into an NPD-index referenced a missing entry."""


class QueryError(DisksError):
    """A query object is malformed or cannot be planned/executed."""


class UnknownKeywordError(QueryError):
    """A query referenced a keyword absent from the vocabulary."""

    def __init__(self, keyword: str) -> None:
        super().__init__(f"keyword {keyword!r} is not in the vocabulary")
        self.keyword = keyword

    def __reduce__(self):
        """Rebuild from the original argument (pickles across processes)."""
        return (type(self), (self.keyword,))


class RadiusExceededError(QueryError):
    """A query radius exceeds the index ``maxR`` and no fallback index exists."""

    def __init__(self, radius: float, max_radius: float) -> None:
        super().__init__(
            f"query radius {radius} exceeds index maxR {max_radius}; "
            "build a bi-level index (see repro.core.bilevel) to serve it"
        )
        self.radius = radius
        self.max_radius = max_radius

    def __reduce__(self):
        """Rebuild from the original arguments (pickles across processes)."""
        return (type(self), (self.radius, self.max_radius))


class StorageError(DisksError):
    """On-disk index file operations failed."""


class CodecError(StorageError):
    """A binary record could not be encoded or decoded."""


class ChecksumError(CodecError):
    """A stored record failed checksum validation."""


class ClusterError(DisksError):
    """The simulated cluster was driven into an invalid state."""


class CommunicationViolationError(ClusterError):
    """Inter-machine communication happened where the design forbids it.

    The NPD-index design guarantees that query evaluation requires no
    machine-to-machine traffic (paper Theorem 3); the message accountant
    raises this error if any such transfer is attempted.
    """


class LiveUpdateError(DisksError):
    """An online index update (``repro.live``) is invalid or failed to apply."""
