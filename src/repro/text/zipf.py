"""Zipf keyword sampling and spatially clustered keyword placement.

Real POI keyword data is heavily skewed (a few tags like "restaurant"
dominate) and spatially correlated (shops cluster in town centres).  The
paper's query generator exploits exactly these two properties (§6,
*Generating queries*), so the synthetic datasets must exhibit them for
the benchmark shapes to be meaningful.

:class:`ZipfSampler` draws keyword ranks from a Zipf(``s``) law;
:class:`ClusteredKeywordPlacer` assigns keyword sets to positioned
objects by blending a per-cluster topic distribution with the global one.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import DisksError

__all__ = ["ZipfSampler", "PlacementConfig", "ClusteredKeywordPlacer"]


class ZipfSampler:
    """Draws integer ranks ``0..n-1`` with probability ``∝ 1/(rank+1)^s``.

    Uses inverse-CDF sampling over the precomputed cumulative weights, so
    draws are O(log n) and fully deterministic given the RNG.
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n <= 0:
            raise DisksError("ZipfSampler needs a positive support size")
        if s < 0:
            raise DisksError("Zipf exponent must be non-negative")
        self._n = n
        self._s = s
        weights = [1.0 / (rank + 1.0) ** s for rank in range(n)]
        total = 0.0
        self._cdf: list[float] = []
        for w in weights:
            total += w
            self._cdf.append(total)
        self._total = total

    @property
    def support_size(self) -> int:
        """Number of distinct ranks."""
        return self._n

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank``."""
        if not (0 <= rank < self._n):
            return 0.0
        prev = self._cdf[rank - 1] if rank else 0.0
        return (self._cdf[rank] - prev) / self._total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        u = rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        """Draw ``count`` ranks (with replacement)."""
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class PlacementConfig:
    """Parameters for :class:`ClusteredKeywordPlacer`.

    Attributes
    ----------
    vocabulary_size:
        Number of distinct keywords to synthesise (``kw0001`` ...).
    zipf_exponent:
        Skew of the global keyword frequency law.
    num_clusters:
        Number of spatial topic clusters; objects are assigned to the
        nearest cluster centre.
    cluster_affinity:
        Probability that a keyword of an object is drawn from its
        cluster's topic sub-vocabulary rather than the global law; 0
        disables spatial correlation entirely.
    topic_size:
        Number of keywords in each cluster topic.
    min_keywords, max_keywords:
        Inclusive bounds on the per-object keyword-set size.
    seed:
        RNG seed for cluster layout and topic choice.
    """

    vocabulary_size: int = 500
    zipf_exponent: float = 1.0
    num_clusters: int = 12
    cluster_affinity: float = 0.6
    topic_size: int = 25
    min_keywords: int = 1
    max_keywords: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocabulary_size <= 0:
            raise DisksError("vocabulary_size must be positive")
        if not (0.0 <= self.cluster_affinity <= 1.0):
            raise DisksError("cluster_affinity must lie in [0, 1]")
        if self.min_keywords < 1 or self.max_keywords < self.min_keywords:
            raise DisksError("keyword-count bounds are invalid")


class ClusteredKeywordPlacer:
    """Assigns Zipf-skewed, spatially clustered keyword sets to objects."""

    def __init__(self, config: PlacementConfig, area: tuple[float, float, float, float]) -> None:
        """``area`` is the bounding box ``(min_x, min_y, max_x, max_y)``."""
        self._config = config
        self._rng = random.Random(config.seed)
        self._global = ZipfSampler(config.vocabulary_size, config.zipf_exponent)
        min_x, min_y, max_x, max_y = area
        if max_x < min_x or max_y < min_y:
            raise DisksError("placement area bounding box is inverted")
        self._centres = [
            (self._rng.uniform(min_x, max_x), self._rng.uniform(min_y, max_y))
            for _ in range(max(1, config.num_clusters))
        ]
        topic_size = min(config.topic_size, config.vocabulary_size)
        self._topics = [
            self._global.sample_many(self._rng, topic_size) for _ in self._centres
        ]

    @staticmethod
    def keyword_name(rank: int) -> str:
        """Canonical keyword string for a rank (``kw0000`` is the most frequent)."""
        return f"kw{rank:04d}"

    def _nearest_cluster(self, position: tuple[float, float]) -> int:
        best, best_d = 0, math.inf
        for i, (cx, cy) in enumerate(self._centres):
            d = (position[0] - cx) ** 2 + (position[1] - cy) ** 2
            if d < best_d:
                best, best_d = i, d
        return best

    def keywords_for(self, position: tuple[float, float]) -> frozenset[str]:
        """Draw the keyword set of an object at ``position``."""
        cfg = self._config
        count = self._rng.randint(cfg.min_keywords, cfg.max_keywords)
        topic = self._topics[self._nearest_cluster(position)]
        ranks: set[int] = set()
        attempts = 0
        while len(ranks) < count and attempts < 20 * count:
            attempts += 1
            if topic and self._rng.random() < cfg.cluster_affinity:
                ranks.add(topic[self._rng.randrange(len(topic))])
            else:
                ranks.add(self._global.sample(self._rng))
        return frozenset(self.keyword_name(rank) for rank in ranks)

    def place_all(self, positions: Sequence[tuple[float, float]]) -> list[frozenset[str]]:
        """Keyword sets for a sequence of object positions, in order."""
        return [self.keywords_for(pos) for pos in positions]
