"""Keyword vocabulary with interning and frequency statistics.

The paper's ``K`` is a vocabulary of keywords and ``L`` maps nodes to
keyword sets (Definition 1).  The engine stores keywords as strings at
API boundaries but interns them to dense integer ids internally so that
index files and message payloads stay compact.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import UnknownKeywordError

__all__ = ["Vocabulary"]


class Vocabulary:
    """A bidirectional keyword <-> id mapping with occurrence counts.

    Ids are assigned densely in first-seen order, which makes them stable
    for a given construction order and suitable for on-disk storage.
    """

    def __init__(self, keywords: Iterable[str] = ()) -> None:
        self._id_of: dict[str, int] = {}
        self._word_of: list[str] = []
        self._counts: list[int] = []
        for kw in keywords:
            self.intern(kw)

    def __len__(self) -> int:
        return len(self._word_of)

    def __contains__(self, keyword: object) -> bool:
        return keyword in self._id_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._word_of)

    def intern(self, keyword: str, *, count: int = 0) -> int:
        """Return the id of ``keyword``, creating it if needed.

        ``count`` increments the keyword's occurrence counter, so callers
        indexing nodes can intern and count in one call.
        """
        kw_id = self._id_of.get(keyword)
        if kw_id is None:
            kw_id = len(self._word_of)
            self._id_of[keyword] = kw_id
            self._word_of.append(keyword)
            self._counts.append(0)
        self._counts[kw_id] += count
        return kw_id

    def id_of(self, keyword: str) -> int:
        """Id of a known keyword; raises :class:`UnknownKeywordError` otherwise."""
        try:
            return self._id_of[keyword]
        except KeyError:
            raise UnknownKeywordError(keyword) from None

    def word_of(self, kw_id: int) -> str:
        """Keyword string for ``kw_id``."""
        if not (0 <= kw_id < len(self._word_of)):
            raise UnknownKeywordError(f"<id {kw_id}>")
        return self._word_of[kw_id]

    def count(self, keyword: str) -> int:
        """Occurrence count recorded for ``keyword`` (0 for unknown)."""
        kw_id = self._id_of.get(keyword)
        return self._counts[kw_id] if kw_id is not None else 0

    def frequencies(self) -> dict[str, int]:
        """All ``keyword -> count`` pairs."""
        return {self._word_of[i]: self._counts[i] for i in range(len(self._word_of))}

    def to_list(self) -> list[tuple[str, int]]:
        """Serialise as ``[(keyword, count), ...]`` in id order."""
        return [(self._word_of[i], self._counts[i]) for i in range(len(self._word_of))]

    @classmethod
    def from_list(cls, items: Iterable[tuple[str, int]]) -> "Vocabulary":
        """Rebuild from :meth:`to_list` output."""
        vocab = cls()
        for keyword, count in items:
            vocab.intern(keyword, count=count)
        return vocab
