"""Keyword substrate: vocabulary, inverted indexes, Zipf placement.

The paper's road networks carry OSM keyword tags (Table 1: 57,600 /
18,750 distinct keywords).  This subpackage provides keyword interning,
the node<->keyword inverted maps used at query time, and the clustered
Zipf placement model used to synthesise keyword data with realistic
frequency skew and spatial correlation.
"""

from repro.text.vocabulary import Vocabulary
from repro.text.inverted import InvertedIndex, FragmentKeywordIndex
from repro.text.zipf import ZipfSampler, ClusteredKeywordPlacer, PlacementConfig

__all__ = [
    "Vocabulary",
    "InvertedIndex",
    "FragmentKeywordIndex",
    "ZipfSampler",
    "ClusteredKeywordPlacer",
    "PlacementConfig",
]
