"""Inverted keyword indexes over a road network and its fragments.

:class:`InvertedIndex` maps keywords to the nodes carrying them over a
whole network (used by the centralized baseline and index construction);
:class:`FragmentKeywordIndex` is the per-fragment restriction each worker
machine holds, so Alg. 2 can seed its local virtual-source search without
touching any other machine.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.graph.road_network import RoadNetwork
from repro.text.vocabulary import Vocabulary

__all__ = ["InvertedIndex", "FragmentKeywordIndex"]


class InvertedIndex:
    """Keyword -> sorted node-id postings for a whole road network."""

    def __init__(self, network: RoadNetwork) -> None:
        self._vocabulary = Vocabulary()
        postings: dict[int, list[int]] = {}
        for node in network.nodes():
            for keyword in network.keywords(node):
                kw_id = self._vocabulary.intern(keyword, count=1)
                postings.setdefault(kw_id, []).append(node)
        self._postings: dict[int, tuple[int, ...]] = {
            kw_id: tuple(sorted(nodes)) for kw_id, nodes in postings.items()
        }

    @property
    def vocabulary(self) -> Vocabulary:
        """The interned vocabulary (with occurrence counts)."""
        return self._vocabulary

    def __contains__(self, keyword: object) -> bool:
        return isinstance(keyword, str) and keyword in self._vocabulary

    def nodes_with(self, keyword: str) -> tuple[int, ...]:
        """All nodes carrying ``keyword`` (empty tuple when unknown)."""
        if keyword not in self._vocabulary:
            return ()
        return self._postings.get(self._vocabulary.id_of(keyword), ())

    def frequency(self, keyword: str) -> int:
        """Number of nodes carrying ``keyword``."""
        return len(self.nodes_with(keyword))

    def keywords(self) -> list[str]:
        """All indexed keywords in id order."""
        return list(self._vocabulary)


class FragmentKeywordIndex:
    """Keyword -> local node postings restricted to one fragment.

    This is the keyword side of what a worker machine stores next to its
    fragment: enough to find the *local* keyword nodes of any query
    keyword (the zero-seeds of the virtual-source search) with no
    communication.
    """

    def __init__(self, network: RoadNetwork, member_nodes: Iterable[int]) -> None:
        self._postings: dict[str, tuple[int, ...]] = {}
        buckets: dict[str, list[int]] = {}
        for node in member_nodes:
            for keyword in network.keywords(node):
                buckets.setdefault(keyword, []).append(node)
        for keyword, nodes in buckets.items():
            self._postings[keyword] = tuple(sorted(nodes))

    @classmethod
    def from_postings(cls, postings: Mapping[str, Iterable[int]]) -> "FragmentKeywordIndex":
        """Rebuild from serialised postings (used by index-file loading)."""
        instance = cls.__new__(cls)
        instance._postings = {kw: tuple(nodes) for kw, nodes in postings.items()}
        return instance

    def local_nodes_with(self, keyword: str) -> tuple[int, ...]:
        """Fragment-local nodes carrying ``keyword``."""
        return self._postings.get(keyword, ())

    def local_keywords(self) -> list[str]:
        """All keywords present in this fragment, sorted."""
        return sorted(self._postings)

    def to_postings(self) -> dict[str, tuple[int, ...]]:
        """Serialisable ``{keyword: nodes}`` view."""
        return dict(self._postings)

    def __len__(self) -> int:
        return len(self._postings)
