"""A BLINKS/HiTi-style partition-based *centralized* index (paper §3.6).

The paper's Remark contrasts the NPD-index with earlier partition-based
schemes [11, 10] that record (1) distances between boundary (portal)
nodes and (2) distances between each node and the boundary nodes *of its
own partition*; a distance between two nodes is then assembled *via the
boundary nodes of both partitions*.  Those schemes are exact and fast in
a centralized setting, but the assembly step runs over a **global portal
graph** spanning every partition — the "extensive interactions between
partitions" that make them unsuitable for share-nothing distribution.

This module implements that scheme faithfully (undirected networks):

* per fragment, restricted shortest distances from every portal to every
  member (computed within the fragment subgraph only);
* a portal graph whose edges are the original cross-partition edges plus
  intra-fragment portal-to-portal restricted distances.

Coverage evaluation stitches three phases — local multi-source, portal-
graph relaxation, local re-entry — and the stats expose exactly how much
of the work happened on the global portal graph, i.e. what a distributed
port would have to ship between machines.  It also serves as a third
independent oracle in the tests.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.fragment import Fragment, build_fragments
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.exceptions import GraphError, NodeNotFoundError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition
from repro.search.dijkstra import shortest_path_distances

__all__ = ["PortalGraphStats", "PortalGraphIndex"]


@dataclass
class PortalGraphStats:
    """Work accounting of one evaluation; the portal-graph share is the
    part a distributed deployment would pay in communication."""

    local_settled: int = 0
    portal_graph_settled: int = 0
    portal_graph_edges: int = 0


class PortalGraphIndex:
    """Centralized partition-based index and evaluator (§3.6 comparison)."""

    def __init__(self, network: RoadNetwork, partition: Partition) -> None:
        if network.directed:
            raise GraphError("PortalGraphIndex supports undirected networks only")
        self._network = network
        self._partition = partition
        self._fragments: list[Fragment] = build_fragments(network, partition)

        # (2) restricted portal -> member distances, per fragment.
        self._intra: list[dict[int, dict[int, float]]] = []
        for fragment in self._fragments:
            per_portal: dict[int, dict[int, float]] = {}
            for portal in sorted(fragment.portals):
                per_portal[portal] = shortest_path_distances(
                    lambda u: fragment.adjacency.get(u, ()), [portal]
                )
            self._intra.append(per_portal)

        # (1) the global portal graph: cross edges + intra portal pairs.
        portal_adjacency: dict[int, dict[int, float]] = {}

        def add_edge(u: int, v: int, w: float) -> None:
            row = portal_adjacency.setdefault(u, {})
            if w < row.get(v, math.inf):
                row[v] = w

        for u, v, w in network.edges():
            if partition.fragment_of(u) != partition.fragment_of(v):
                add_edge(u, v, w)
                add_edge(v, u, w)
        for fragment, per_portal in zip(self._fragments, self._intra):
            portals = sorted(fragment.portals)
            for i, p in enumerate(portals):
                for q in portals[i + 1 :]:
                    dist = per_portal[p].get(q, math.inf)
                    if math.isfinite(dist):
                        add_edge(p, q, dist)
                        add_edge(q, p, dist)
        self._portal_adjacency = {
            u: tuple(edges.items()) for u, edges in portal_adjacency.items()
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_portals(self) -> int:
        """Portal-node count of the whole deployment."""
        return len(self._portal_adjacency)

    @property
    def portal_graph_edges(self) -> int:
        """Arc count of the global portal graph."""
        return sum(len(edges) for edges in self._portal_adjacency.values())

    @property
    def num_recorded_distances(self) -> int:
        """Stored distances — comparable to NPDIndex's size measure."""
        intra = sum(
            len(dists) for per_portal in self._intra for dists in per_portal.values()
        )
        return intra + self.portal_graph_edges

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _seeds_of(self, term: CoverageTerm) -> list[int]:
        source = term.source
        if isinstance(source, KeywordSource):
            return [
                node
                for node in self._network.nodes()
                if source.keyword in self._network.keywords(node)
            ]
        if isinstance(source, NodeSource):
            if not (0 <= source.node < self._network.num_nodes):
                raise NodeNotFoundError(source.node)
            return [source.node]
        raise QueryError(f"unsupported source {source!r}")  # pragma: no cover

    def coverage(self, term: CoverageTerm, stats: PortalGraphStats | None = None) -> set[int]:
        """Exact ``R(source, r)`` via the three-phase portal assembly."""
        seeds = self._seeds_of(term)
        if not seeds:
            return set()
        radius = term.radius

        # Phase 1 — per fragment, restricted multi-source from local seeds.
        local_dist: list[dict[int, float]] = []
        portal_seeds: dict[int, float] = {}
        for fragment in self._fragments:
            local_seeds = [s for s in seeds if s in fragment.members]
            if local_seeds:
                dist = shortest_path_distances(
                    lambda u, f=fragment: f.adjacency.get(u, ()), local_seeds
                )
            else:
                dist = {}
            local_dist.append(dist)
            if stats is not None:
                stats.local_settled += len(dist)
            for portal in fragment.portals:
                d = dist.get(portal)
                if d is not None and d < portal_seeds.get(portal, math.inf):
                    portal_seeds[portal] = d

        # Phase 2 — relax over the GLOBAL portal graph (the step that
        # needs cross-partition interaction in a distributed port).
        portal_dist = shortest_path_distances(
            lambda u: self._portal_adjacency.get(u, ()),
            portal_seeds,
            bound=radius,
        )
        if stats is not None:
            stats.portal_graph_settled += len(portal_dist)
            stats.portal_graph_edges = self.portal_graph_edges

        # Phase 3 — re-enter each fragment through its portals.
        result: set[int] = set()
        for fragment, per_portal, dist in zip(self._fragments, self._intra, local_dist):
            for node in fragment.members:
                best = dist.get(node, math.inf)
                for portal in fragment.portals:
                    pd = portal_dist.get(portal)
                    if pd is None:
                        continue
                    through = pd + per_portal[portal].get(node, math.inf)
                    if through < best:
                        best = through
                if best <= radius:
                    result.add(node)
        return result

    def execute(self, query: QClassQuery) -> tuple[frozenset[int], PortalGraphStats, float]:
        """Answer a Q-class query; returns (result, stats, wall seconds)."""
        started = time.perf_counter()
        stats = PortalGraphStats()
        coverages = [self.coverage(term, stats) for term in query.terms]
        result = query.expression.evaluate(coverages)
        return frozenset(result), stats, time.perf_counter() - started

    def results(self, query: QClassQuery) -> frozenset[int]:
        """Just the answer node set."""
        return self.execute(query)[0]
