"""Answering SGKQ/RKQ with multi-round BSP message passing (the §2.3 strawman).

Without an NPD-index, a distributed deployment must run a distributed
shortest-path computation per coverage term: seed vertices start with
distance 0 and relax their neighbours superstep by superstep
(Bellman–Ford over BSP, as in Pregel's SSSP example).  Every relaxation
that crosses a fragment boundary is real network traffic, and the number
of supersteps grows with the radius measured in hops.

The evaluator is exact (used in tests as a second oracle); its value in
the benchmarks is the *communication accounting* — rounds and
cross-worker bytes — contrasted against the NPD engine's zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.bsp import BSPEngine, BSPStats
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.exceptions import NodeNotFoundError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.partition.base import Partition
from repro.text.inverted import InvertedIndex

__all__ = ["BSPQueryResult", "BSPQueryEvaluator"]


@dataclass(frozen=True)
class BSPQueryResult:
    """Answer plus the BSP communication bill."""

    result_nodes: frozenset[int]
    stats: BSPStats
    wall_seconds: float


class BSPQueryEvaluator:
    """Multi-round distributed evaluation of Q-class queries."""

    def __init__(self, network: RoadNetwork, partition: Partition) -> None:
        self._network = network
        self._partition = partition
        self._engine: BSPEngine[float, float] = BSPEngine(network, partition.assignment)
        self._inverted = InvertedIndex(network)

    def _seeds_for(self, term: CoverageTerm) -> dict[int, float]:
        source = term.source
        if isinstance(source, KeywordSource):
            return {node: 0.0 for node in self._inverted.nodes_with(source.keyword)}
        if isinstance(source, NodeSource):
            if not (0 <= source.node < self._network.num_nodes):
                raise NodeNotFoundError(source.node)
            return {source.node: 0.0}
        raise QueryError(f"unsupported coverage source {source!r}")  # pragma: no cover

    def coverage(self, term: CoverageTerm) -> tuple[set[int], BSPStats]:
        """One coverage term as a BSP SSSP run bounded by the radius."""
        seeds = self._seeds_for(term)
        if not seeds:
            return set(), BSPStats()
        network = self._network
        radius = term.radius

        def compute(node: int, value: float | None, messages: list[float]):
            best = min(messages) if messages else 0.0
            if value is not None and value <= best:
                return None, ()  # no improvement: stay quiet
            outgoing = []
            for neighbor, weight in network.neighbors(node):
                candidate = best + weight
                if candidate <= radius:
                    outgoing.append((neighbor, candidate))
            return best, outgoing

        values, stats = self._engine.run(seeds, compute)
        return {node for node, dist in values.items() if dist <= radius}, stats

    def execute(self, query: QClassQuery) -> BSPQueryResult:
        """Answer ``query`` with one BSP SSSP per term."""
        started = time.perf_counter()
        total = BSPStats()
        coverages = []
        for term in query.terms:
            coverage, stats = self.coverage(term)
            coverages.append(coverage)
            total = total.merged_with(stats)
        result = query.expression.evaluate(coverages)
        return BSPQueryResult(
            result_nodes=frozenset(result),
            stats=total,
            wall_seconds=time.perf_counter() - started,
        )
