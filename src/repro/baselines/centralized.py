"""Single-machine whole-graph query evaluation.

This is the algorithm a deployment without fragments runs — the "1
fragment" reference of EXP 3/4 — and, because it evaluates Definition 4
directly with plain Dijkstra over the full network, it is also the exact
ground truth the distributed engine is tested against.

Directionality note: in directed mode every coverage is the set of nodes
within ``r`` *from* the source along forward arcs, i.e.
``R(ω, r) = {A : d(ω → A) ≤ r}``.  The NPD builder and fragment
executor use the same convention, and on undirected networks (the
paper's setting) it coincides with ``d(A, ω)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.exceptions import NodeNotFoundError, QueryError, UnknownKeywordError
from repro.graph.road_network import RoadNetwork
from repro.search.dijkstra import shortest_path_distances
from repro.text.inverted import InvertedIndex

__all__ = ["CentralizedResult", "CentralizedEvaluator"]


@dataclass(frozen=True)
class CentralizedResult:
    """Answer and timing of one centralized evaluation."""

    result_nodes: frozenset[int]
    wall_seconds: float
    coverage_sizes: tuple[int, ...]


class CentralizedEvaluator:
    """Answers Q-class queries on the whole, unpartitioned network."""

    def __init__(self, network: RoadNetwork, *, strict_keywords: bool = True) -> None:
        self._network = network
        self._inverted = InvertedIndex(network)
        self._strict = strict_keywords

    @property
    def network(self) -> RoadNetwork:
        """The underlying network."""
        return self._network

    def coverage(self, term: CoverageTerm) -> set[int]:
        """Evaluate one keyword coverage ``R(source, r)`` exactly."""
        source = term.source
        if isinstance(source, KeywordSource):
            seeds = self._inverted.nodes_with(source.keyword)
            if not seeds and self._strict and source.keyword not in self._inverted:
                raise UnknownKeywordError(source.keyword)
        elif isinstance(source, NodeSource):
            if not (0 <= source.node < self._network.num_nodes):
                raise NodeNotFoundError(source.node)
            seeds = (source.node,)
        else:  # pragma: no cover - the Source union is closed
            raise QueryError(f"unsupported coverage source {source!r}")
        if not seeds:
            return set()
        distances = shortest_path_distances(
            self._network.neighbors, list(seeds), bound=term.radius
        )
        return set(distances)

    def execute(self, query: QClassQuery) -> CentralizedResult:
        """Answer ``query`` and time the evaluation."""
        started = time.perf_counter()
        coverages = [self.coverage(term) for term in query.terms]
        result = query.expression.evaluate(coverages)
        elapsed = time.perf_counter() - started
        return CentralizedResult(
            result_nodes=frozenset(result),
            wall_seconds=elapsed,
            coverage_sizes=tuple(len(c) for c in coverages),
        )

    def results(self, query: QClassQuery) -> frozenset[int]:
        """Just the answer node set."""
        return self.execute(query).result_nodes
