"""A miniature Pregel-style bulk-synchronous-parallel graph engine.

The paper's §2.3 argues that general BSP engines (Pregel) and
multi-round distributed shortest-path algorithms are ill-suited to
spatial keyword queries because every superstep whose messages cross a
fragment boundary costs a network round trip.  To quantify that claim,
this module implements the BSP model — vertex programs, superstep
barriers, message passing — with per-superstep accounting of exactly the
cross-worker traffic the NPD-index eliminates.

The engine is synchronous and single-process (the point is cost
*accounting*, not throughput): within a superstep every vertex with
pending messages (or everything, in superstep 0, if it holds a seed)
runs its compute function; messages are delivered at the next barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, Mapping, Sequence, TypeVar

from repro.exceptions import ClusterError
from repro.graph.road_network import RoadNetwork

__all__ = ["Halt", "BSPStats", "BSPEngine"]

V = TypeVar("V")  # vertex value
M = TypeVar("M")  # message


class Halt:
    """Sentinel a compute function returns to deactivate its vertex."""


@dataclass
class BSPStats:
    """Communication/rounds accounting of one BSP run.

    ``cross_worker_messages`` is the headline number: each one is a
    message that would traverse the network in a real deployment —
    the cost §2.3 says general engines cannot avoid.
    """

    supersteps: int = 0
    total_messages: int = 0
    cross_worker_messages: int = 0
    cross_worker_bytes: int = 0
    vertex_activations: int = 0

    def merged_with(self, other: "BSPStats") -> "BSPStats":
        """Element-wise sum (used to aggregate per-term runs)."""
        return BSPStats(
            supersteps=self.supersteps + other.supersteps,
            total_messages=self.total_messages + other.total_messages,
            cross_worker_messages=self.cross_worker_messages + other.cross_worker_messages,
            cross_worker_bytes=self.cross_worker_bytes + other.cross_worker_bytes,
            vertex_activations=self.vertex_activations + other.vertex_activations,
        )


# A compute function maps (node, value, incoming messages) to
# (new value, outgoing (neighbor, message) pairs) — returning Halt-like
# emptiness implicitly deactivates: a vertex is active next round only
# if it receives messages.
ComputeFn = Callable[
    [int, V | None, Sequence[M]],
    tuple[V | None, Iterable[tuple[int, M]]],
]

_MESSAGE_BYTES = 24  # node id + payload float + framing


class BSPEngine(Generic[V, M]):
    """Superstep executor over a partitioned road network."""

    def __init__(self, network: RoadNetwork, assignment: Sequence[int]) -> None:
        if len(assignment) != network.num_nodes:
            raise ClusterError("assignment length must equal the node count")
        self._network = network
        self._assignment = tuple(assignment)

    def run(
        self,
        initial_values: Mapping[int, V],
        compute: ComputeFn,
        *,
        max_supersteps: int = 10_000,
    ) -> tuple[dict[int, V], BSPStats]:
        """Run to quiescence (no messages in flight) or ``max_supersteps``.

        ``initial_values`` are delivered as superstep-0 messages to their
        vertices (whose stored value starts undefined), which both seeds
        the computation and marks those vertices active.  Returns the
        final vertex values and the accounting.
        """
        values: dict[int, V] = {}
        stats = BSPStats()
        inbox: dict[int, list[M]] = {
            node: [value] for node, value in initial_values.items()  # type: ignore[misc]
        }

        while inbox and stats.supersteps < max_supersteps:
            stats.supersteps += 1
            outbox: dict[int, list[M]] = {}
            for node, messages in inbox.items():
                stats.vertex_activations += 1
                new_value, outgoing = compute(node, values.get(node), messages)
                if new_value is not None:
                    values[node] = new_value
                for target, message in outgoing:
                    stats.total_messages += 1
                    if self._assignment[target] != self._assignment[node]:
                        stats.cross_worker_messages += 1
                        stats.cross_worker_bytes += _MESSAGE_BYTES
                    outbox.setdefault(target, []).append(message)
            inbox = outbox
        if inbox:
            raise ClusterError(
                f"BSP run did not quiesce within {max_supersteps} supersteps"
            )
        return values, stats
