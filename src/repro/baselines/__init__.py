"""Comparison systems: the centralized evaluator and the BSP strawman.

* :class:`CentralizedEvaluator` — single-machine whole-graph evaluation
  (the paper's "1 fragment" reference curves in EXP 3/4) and the exact
  ground truth the test suite checks the distributed engine against.
* :mod:`repro.baselines.bsp` — a miniature Pregel-style bulk-synchronous
  engine, and :mod:`repro.baselines.bsp_queries` which answers the same
  queries with multi-round message passing (§2.3's strawman), exposing
  the superstep/communication cost the NPD-index eliminates.
"""

from repro.baselines.centralized import CentralizedEvaluator
from repro.baselines.bsp import BSPEngine, BSPStats, Halt
from repro.baselines.bsp_queries import BSPQueryEvaluator
from repro.baselines.portal_graph import PortalGraphIndex, PortalGraphStats

__all__ = [
    "CentralizedEvaluator",
    "BSPEngine",
    "BSPStats",
    "Halt",
    "BSPQueryEvaluator",
    "PortalGraphIndex",
    "PortalGraphStats",
]
