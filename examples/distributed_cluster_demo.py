#!/usr/bin/env python3
"""A full distributed deployment: index files on disk, real processes.

Demonstrates the operational side of the system:

1. partition a dataset and build every fragment's NPD-index **in
   parallel OS processes** (the paper's fragment-wise construction,
   §4.1);
2. persist each worker's state as its two files (``IND(P)`` + fragment)
   and report the per-machine storage cost (what EXP 1 measures);
3. cold-start the workers from disk and answer a query batch, verifying
   the zero worker-to-worker communication guarantee (Theorem 3) and the
   load-balance bound (Theorem 6).

Run:  python examples/distributed_cluster_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DisksEngine, EngineConfig
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_fragments
from repro.core.coverage import FragmentRuntime
from repro.dist import SimulatedCluster
from repro.dist.parallel import parallel_build_indexes
from repro.partition import MultilevelPartitioner
from repro.storage import (
    read_fragment_file,
    read_index_file,
    write_fragment_file,
    write_index_file,
)
from repro.workloads import QueryGenConfig, QueryGenerator, load_dataset

NUM_FRAGMENTS = 8


def main() -> None:
    dataset = load_dataset("aus_tiny")
    network = dataset.network
    print(dataset.stats.as_table_row(dataset.name))

    # --- 1. Partition and build indexes in parallel processes ---------
    partition = MultilevelPartitioner(seed=7).partition(network, NUM_FRAGMENTS)
    fragments = build_fragments(network, partition)
    config = NPDBuildConfig(lambda_factor=15.0)
    indexes, build_stats = parallel_build_indexes(
        network, fragments, config, processes=4
    )
    print(f"\nBuilt {len(indexes)} NPD-indexes in parallel:")
    for stats in build_stats:
        print(
            f"  P{stats.fragment_id}: {stats.num_portals} portals, "
            f"{stats.settled_nodes:,} settled nodes, {stats.wall_seconds:.2f}s"
        )

    # --- 2. Persist per-machine state ---------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        print("\nPer-machine storage cost (the EXP-1 measure):")
        for fragment, index in zip(fragments, indexes):
            fsize = write_fragment_file(fragment, tmp_path / f"frag{fragment.fragment_id}.npf")
            isize = write_index_file(index, tmp_path / f"ind{index.fragment_id}.npd")
            print(
                f"  machine {fragment.fragment_id}: fragment {fsize / 1024:6.1f} KiB, "
                f"IND(P) {isize / 1024:6.1f} KiB "
                f"({index.num_recorded_distances:,} recorded distances)"
            )

        # --- 3. Cold-start workers from disk and run a query batch ----
        restored_fragments = [
            read_fragment_file(tmp_path / f"frag{i}.npf") for i in range(NUM_FRAGMENTS)
        ]
        restored_indexes = [
            read_index_file(tmp_path / f"ind{i}.npd") for i in range(NUM_FRAGMENTS)
        ]
    cluster = SimulatedCluster.from_fragments(restored_fragments, restored_indexes)
    oracle = CentralizedEvaluator(network)
    generator = QueryGenerator(network, QueryGenConfig(seed=99))
    max_radius = restored_indexes[0].max_radius

    print("\nQuery batch on the cold-started cluster:")
    for query in generator.sgkq_batch(5, 3, max_radius / 2):
        response = cluster.execute(query)
        assert response.result_nodes == oracle.results(query), "answer mismatch!"
        slowest = max(response.machine_seconds.values())
        print(
            f"  {query.label:<24} {len(response.result_nodes):5} results  "
            f"response {response.response_seconds * 1000:6.1f}ms  "
            f"slowest machine {slowest * 1000:6.1f}ms"
        )

    ledger = cluster.ledger
    print(
        f"\nTraffic ledger: {len(ledger.transfers)} transfers, "
        f"{ledger.total_bytes:,} bytes total, "
        f"{ledger.worker_to_worker_bytes()} worker-to-worker bytes "
        "(Theorem 3 upheld)"
    )


if __name__ == "__main__":
    main()
