"""Shared scenario builder for the example scripts.

Builds "Gridford", a synthetic city: a perturbed street grid with named
amenities (supermarkets, gyms, hospitals, pizza shops, ...) placed as
objects, exactly the way the paper preprocesses OSM data (§6).  All
examples run on this city so their outputs are comparable.
"""

from __future__ import annotations

import random

from repro import GeneratorConfig, generate_road_network
from repro.graph import RoadNetwork, RoadNetworkBuilder
from repro.graph.build import ObjectSpec, attach_objects

AMENITIES: dict[str, int] = {
    # keyword -> how many of them exist in Gridford
    "supermarket": 14,
    "gym": 10,
    "hospital": 5,
    "school": 12,
    "park": 8,
    "pizza shop": 9,
    "shopping mall": 6,
    "restaurant": 22,
    "seafood": 7,
    "chinese food": 9,
    "hotel": 8,
    "pharmacy": 11,
}


def build_gridford(seed: int = 2014, num_junctions: int = 2500) -> RoadNetwork:
    """Build the Gridford road network with its amenities."""
    roads = generate_road_network(
        GeneratorConfig(kind="grid", num_nodes=num_junctions, seed=seed)
    )
    builder = RoadNetworkBuilder()
    for node in roads.nodes():
        builder.add_junction(roads.position(node))
    for u, v, w in roads.edges():
        builder.add_edge(u, v, w)

    rng = random.Random(seed + 1)
    xs = [roads.position(n)[0] for n in roads.nodes()]
    ys = [roads.position(n)[1] for n in roads.nodes()]
    span = (min(xs), max(xs), min(ys), max(ys))

    specs: list[ObjectSpec] = []
    for keyword, count in AMENITIES.items():
        for _ in range(count):
            pos = (rng.uniform(span[0], span[1]), rng.uniform(span[2], span[3]))
            keywords = {keyword}
            # Restaurants sometimes advertise a cuisine too.
            if keyword == "restaurant" and rng.random() < 0.5:
                keywords.add(rng.choice(["seafood", "chinese food"]))
            specs.append(ObjectSpec(pos, keywords))
    attach_objects(builder, specs)
    return builder.build()


def describe(network: RoadNetwork) -> str:
    """One-line summary of the city."""
    return (
        f"Gridford: {network.num_nodes:,} nodes ({network.num_objects():,} amenities), "
        f"{network.num_edges:,} road segments, "
        f"avg segment length {network.average_edge_weight:.2f}"
    )
