#!/usr/bin/env python3
"""The paper's Q1: a real-estate agent hunting well-served locations.

    "A real estate agent wants to locate sites that are close (e.g.,
     within 1km) to daily facilities such as a supermarket, a gym and
     a hospital."  (paper §1, query Q1)

This is an SGKQ: the intersection of the keyword coverages of
*supermarket*, *gym* and *hospital* at the same radius.  The script
sweeps the radius to show how the candidate set grows, and compares the
distributed deployment against a single-machine run.

Run:  python examples/real_estate_site_finder.py
"""

from __future__ import annotations

from city_common import build_gridford, describe

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator

FACILITIES = ["supermarket", "gym", "hospital"]


def main() -> None:
    city = build_gridford()
    print(describe(city))

    engine = DisksEngine.build(city, EngineConfig(num_fragments=8, lambda_factor=12.0))
    oracle = CentralizedEvaluator(city)
    print(f"Deployed over {engine.partition.num_fragments} fragments; "
          f"index serves radiuses up to maxR = {engine.max_radius:.1f}\n")

    print(f"Sites within r of all of: {', '.join(FACILITIES)}")
    print(f"{'r':>6}  {'sites':>7}  {'dist time':>10}  {'1-machine':>10}  {'speedup':>8}")
    unit = city.average_edge_weight
    for factor in (2.0, 4.0, 6.0, 8.0, 10.0):
        radius = factor * unit
        query = sgkq(FACILITIES, radius, label=f"Q1 r={radius:.1f}")
        report = engine.execute(query)
        central = oracle.execute(query)
        assert report.result_nodes == central.result_nodes, "distributed != centralized"
        speedup = central.wall_seconds / max(report.response_seconds, 1e-9)
        print(
            f"{radius:6.1f}  {report.num_results:7,}  "
            f"{report.response_seconds * 1000:8.1f}ms  "
            f"{central.wall_seconds * 1000:8.1f}ms  {speedup:7.1f}x"
        )

    # Show a few concrete candidate sites with coordinates.
    radius = 6.0 * unit
    results = engine.results(sgkq(FACILITIES, radius))
    print(f"\nSample candidate sites at r = {radius:.1f}:")
    for node in sorted(results)[:5]:
        x, y = city.position(node)
        kind = "amenity " + "/".join(sorted(city.keywords(node))) if city.keywords(node) else "junction"
        print(f"  node {node:>5} at ({x:6.1f}, {y:6.1f})  [{kind}]")


if __name__ == "__main__":
    main()
