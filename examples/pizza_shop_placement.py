#!/usr/bin/env python3
"""The paper's Q2: placing a pizza shop away from the competition.

    "An investor wants to open a new pizza shop in a shopping mall that
     must be at least 1km far away from any of the existing pizza
     shops."  (paper §1, query Q2)

§3.1 reduces this to the D-function
``R("shopping mall", 0) − R("pizza shop", r)``: malls, minus everything
within ``r`` of an existing pizza shop.  The script sweeps the exclusion
radius and also demonstrates a richer D-function mixing all three
operators.

Run:  python examples/pizza_shop_placement.py
"""

from __future__ import annotations

from city_common import build_gridford, describe

from repro import DisksEngine, EngineConfig, sgkq_extended
from repro.baselines import CentralizedEvaluator


def main() -> None:
    city = build_gridford()
    print(describe(city))
    engine = DisksEngine.build(city, EngineConfig(num_fragments=8, lambda_factor=12.0))
    oracle = CentralizedEvaluator(city)

    malls = sum(1 for _ in city.keyword_nodes("shopping mall"))
    shops = sum(1 for _ in city.keyword_nodes("pizza shop"))
    print(f"{malls} shopping malls, {shops} existing pizza shops\n")

    unit = city.average_edge_weight
    print("Q2: malls at least r away from every pizza shop "
          "(R(mall, 0) − R(pizza shop, r))")
    print(f"{'r':>6}  {'candidate malls':>15}")
    for factor in (1.0, 2.0, 4.0, 6.0, 8.0):
        radius = factor * unit
        query = sgkq_extended(
            all_within=[("shopping mall", 0.0)],
            none_within=[("pizza shop", radius)],
            label=f"Q2 r={radius:.1f}",
        )
        result = engine.results(query)
        assert result == oracle.results(query)
        print(f"{radius:6.1f}  {len(result):15,}")

    # A richer D-function: malls or supermarkets, near a pharmacy, away
    # from pizza shops — mixes ∪, ∩ and − in one expression tree.
    radius = 4.0 * unit
    query = sgkq_extended(
        all_within=[("pharmacy", radius)],
        any_within=[("shopping mall", 0.0), ("supermarket", 0.0)],
        none_within=[("pizza shop", radius)],
        label="mixed D-function",
    )
    report = engine.execute(query)
    assert report.result_nodes == oracle.results(query)
    print(f"\nMixed D-function  {query.expression}")
    print(f"  (mall ∪ supermarket) sites near a pharmacy, clear of pizza shops: "
          f"{report.num_results} candidates")
    print(f"  evaluated in {report.response_seconds * 1000:.1f}ms across "
          f"{len(report.fragment_seconds)} machines, "
          f"unbalance U = {report.unbalance:.2f}")


if __name__ == "__main__":
    main()
