#!/usr/bin/env python3
"""The paper's Q3: a tourist's range keyword query from a hotel.

    "A tourist wants to find a restaurant offering both seafood and
     Chinese food within 500 meters from his hotel."  (paper §1, Q3)

An RKQ: the query location is a hotel node; results must lie within the
radius *and* contain every query keyword.  §3.1 reduces it to
``R(hotel, r) ∩ R(restaurant, 0) ∩ R(seafood, 0) ∩ R(chinese food, 0)``.

Run:  python examples/tourist_rkq.py
"""

from __future__ import annotations

from city_common import build_gridford, describe

from repro import DisksEngine, EngineConfig, rkq
from repro.baselines import CentralizedEvaluator


def main() -> None:
    city = build_gridford()
    print(describe(city))
    engine = DisksEngine.build(city, EngineConfig(num_fragments=8, lambda_factor=15.0))
    oracle = CentralizedEvaluator(city)

    hotels = list(city.keyword_nodes("hotel"))
    print(f"{len(hotels)} hotels in town; maxR = {engine.max_radius:.1f}\n")

    unit = city.average_edge_weight
    wanted = ["restaurant", "seafood"]
    print(f"Restaurants serving {' + '.join(wanted[1:])} within r of each hotel:")
    print(f"{'hotel':>6}  {'r':>6}  {'matches':>8}  nearest match")
    for hotel in hotels[:6]:
        for factor in (5.0, 10.0):
            radius = factor * unit
            query = rkq(hotel, wanted, radius, label=f"Q3 hotel={hotel}")
            result = engine.results(query)
            assert result == oracle.results(query)
            nearest = ""
            if result:
                from repro.search import shortest_path_distances

                dists = shortest_path_distances(
                    city.neighbors, [hotel], bound=radius
                )
                best = min(result, key=lambda n: dists.get(n, float("inf")))
                nearest = f"node {best} at distance {dists[best]:.1f}"
            print(f"{hotel:>6}  {radius:6.1f}  {len(result):8}  {nearest}")

    # Widening the cuisine: any hotel, three keywords.
    radius = 12.0 * unit
    hotel = hotels[0]
    for keywords in (["restaurant"], ["restaurant", "seafood"],
                     ["restaurant", "seafood", "chinese food"]):
        query = rkq(hotel, keywords, radius)
        result = engine.results(query)
        print(f"\nHotel {hotel}, r={radius:.1f}, must contain {keywords}: "
              f"{len(result)} places")


if __name__ == "__main__":
    main()
