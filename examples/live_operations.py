#!/usr/bin/env python3
"""A day of operations: top-k ranking, metadata churn, query throughput.

Exercises the extension surface built on top of the paper's NPD-index:

1. **Top-k nearest** (the paper's §8 future-work direction): rank the
   k closest amenities of a kind, still with zero worker-to-worker
   communication.
2. **Incremental keyword maintenance**: a new pharmacy opens and an old
   one closes — the DL entries are patched without rebuilding the
   index, and results update immediately.
3. **Batch throughput** (the paper's §1 motivation): push a query batch
   through the deployment and report queries/second.

Run:  python examples/live_operations.py
"""

from __future__ import annotations

from city_common import build_gridford, describe

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import KeywordMaintainer, KeywordSource, NodeSource, TopKQuery
from repro.core.coverage import FragmentRuntime
from repro.core.executor import execute_fragment_task
from repro.workloads import QueryGenConfig


def main() -> None:
    city = build_gridford()
    print(describe(city))
    engine = DisksEngine.build(city, EngineConfig(num_fragments=8, lambda_factor=15.0))
    unit = city.average_edge_weight

    # --- 1. Top-k nearest -------------------------------------------------
    hotel = next(iter(city.keyword_nodes("hotel")))
    print(f"\nTop-5 places nearest to hotel node {hotel} (kNN over the network):")
    for node, dist in engine.top_k(TopKQuery(NodeSource(hotel), 5, engine.max_radius)).ranking:
        kws = ", ".join(sorted(city.keywords(node))) or "junction"
        print(f"  {dist:6.2f}  node {node:<6} [{kws}]")

    print("\nTop-5 nodes closest to any pharmacy:")
    topk = engine.top_k(TopKQuery(KeywordSource("pharmacy"), 5, engine.max_radius))
    for node, dist in topk.ranking:
        print(f"  {dist:6.2f}  node {node}")

    # --- 2. Incremental maintenance ---------------------------------------
    maintainer = KeywordMaintainer(
        engine.network, engine.partition, list(engine.fragments), list(engine.indexes)
    )
    probe = sgkq(["pharmacy", "supermarket"], 6.0 * unit)

    def run(query) -> int:
        merged: set[int] = set()
        for fragment, index in zip(maintainer.fragments, maintainer.indexes):
            runtime = FragmentRuntime(fragment, index)
            merged |= execute_fragment_task(runtime, query).local_result
        return len(merged)

    before = run(probe)
    new_site = next(iter(city.keyword_nodes("supermarket")))  # co-located opening
    maintainer.add_keyword(new_site, "pharmacy")
    after_open = run(probe)
    maintainer.remove_keyword(new_site, "pharmacy")
    after_close = run(probe)
    oracle = CentralizedEvaluator(maintainer.network, strict_keywords=False)
    assert after_close == len(oracle.results(probe)), "maintenance drifted!"
    print(
        f"\nMaintenance: sites near a pharmacy+supermarket — {before} before, "
        f"{after_open} after a pharmacy opens at node {new_site}, "
        f"{after_close} after it closes (index patched in place, never rebuilt)"
    )

    # --- 3. Throughput ------------------------------------------------------
    from repro.workloads import QueryGenerator

    generator = QueryGenerator(city, QueryGenConfig(seed=5))
    batch = generator.sgkq_batch(20, 3, engine.max_radius / 2)
    report = engine.execute_many(batch)
    print(
        f"\nThroughput: {len(batch)} SGKQs in "
        f"{report.total_response_seconds * 1000:.0f}ms of response time "
        f"-> {report.queries_per_second:,.0f} queries/second, "
        f"{report.total_message_bytes / 1024:.1f} KiB of coordinator traffic"
    )


if __name__ == "__main__":
    main()
