#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 network, end to end in a minute.

Builds the five-node example road network, deploys it over two simulated
machines with NPD-indexes, and runs the paper's worked examples:

* Example 1 — ``SGKQ({museum, school}, 3)``       -> ``{B, E}``
* Example 2 — ``RKQ(B, {museum}, 4)``             -> ``{D}``
* the Q2-style subtraction and Q5-style union extensions.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DisksEngine, EngineConfig, rkq, sgkq, sgkq_extended
from repro.workloads import toy_figure1

NAMES = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E"}


def show(label: str, nodes: frozenset[int]) -> None:
    pretty = ", ".join(sorted(NAMES[n] for n in nodes)) or "(empty)"
    print(f"  {label:<50} -> {{{pretty}}}")


def main() -> None:
    network = toy_figure1()
    print(f"Fig. 1 network: {network.num_nodes} nodes, {network.num_edges} edges")
    for node in network.nodes():
        kws = ", ".join(sorted(network.keywords(node))) or "junction"
        print(f"  node {NAMES[node]}: {kws}")

    # Two fragments, one (simulated) machine each; untruncated index.
    engine = DisksEngine.build(
        network, EngineConfig(num_fragments=2, lambda_factor=10.0)
    )
    print(f"\nDeployment: {engine.partition.num_fragments} fragments, "
          f"maxR = {engine.max_radius:.1f}")
    for index in engine.indexes:
        sizes = index.size_summary()
        print(f"  IND(P{index.fragment_id}): {sizes['shortcuts']} shortcuts, "
              f"{sizes['keyword_pairs']} keyword DL pairs")

    print("\nQueries (paper §2.2 examples):")
    show("Example 1: SGKQ({museum, school}, r=3)",
         engine.results(sgkq(["museum", "school"], 3.0)))
    show("Example 2: RKQ(B, {museum}, r=4)",
         engine.results(rkq(1, ["museum"], 4.0)))
    show("Q2 style: near school (3), away from museum (2)",
         engine.results(sgkq_extended(all_within=[("school", 3.0)],
                                      none_within=[("museum", 2.0)])))
    show("Q5 style: within 3 of a park OR exactly a school",
         engine.results(sgkq_extended(any_within=[("park", 3.0),
                                                  ("school", 0.0)])))

    report = engine.execute(sgkq(["museum", "school"], 3.0))
    print(f"\nAccounting for Example 1: {report.num_results} results, "
          f"{report.total_message_bytes} coordinator bytes, "
          f"0 worker-to-worker bytes (guaranteed by Theorem 3)")


if __name__ == "__main__":
    main()
