"""Tests for delta-driven incremental re-evaluation (`repro.sub.engine`).

The gold standard mirrors `tests/test_live_epochs.py`: after any update
sequence, every subscription's incrementally maintained result must be
bit-identical to evaluating its query from scratch against the published
epoch — and the engine must have *re-evaluated* a subscription only when
the delta could actually have touched it.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.executor import (
    execute_fragment_task,
    execute_fragment_task_explained,
)
from repro.core.queries import rkq, sgkq
from repro.exceptions import DisksError
from repro.live import AddKeyword, EpochManager, RemoveKeyword, SetEdgeWeight
from repro.obs.events import global_events
from repro.partition import BfsPartitioner
from repro.serve.metrics import MetricsRegistry
from repro.sub import SubscriptionEngine
from repro.workloads import (
    QueryGenConfig,
    QueryGenerator,
    UpdateGenConfig,
    UpdateStreamGenerator,
)

from helpers import make_random_network


def make_manager(seed: int, k: int = 3, max_radius: float = math.inf) -> EpochManager:
    net = make_random_network(seed=seed, num_junctions=18, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=seed).partition(net, k)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=max_radius))
    return EpochManager(
        network=net,
        partition=partition,
        fragments=fragments,
        indexes=list(indexes),
    )


def fresh_answer(manager: EpochManager, query) -> frozenset[int]:
    """From-scratch evaluation on the published epoch (the oracle)."""
    merged: set[int] = set()
    for runtime in manager.state.runtimes():
        merged |= execute_fragment_task(runtime, query).local_result
    return frozenset(merged)


def fresh_scores(manager: EpochManager, query) -> dict:
    merged: dict = {}
    for runtime in manager.state.runtimes():
        _task, explained = execute_fragment_task_explained(runtime, query)
        merged.update(explained)
    return merged


def record_reevaluations(engine: SubscriptionEngine) -> list[str]:
    """Instrument the engine to log which subscriptions it re-runs."""
    calls: list[str] = []
    original = engine._reevaluate

    def recording(subscription, fragment_ids):
        calls.append(subscription.sub_id)
        return original(subscription, fragment_ids)

    engine._reevaluate = recording
    return calls


class TestRegistration:
    def test_initial_result_matches_from_scratch(self):
        manager = make_manager(seed=80)
        engine = SubscriptionEngine(manager)
        keywords = sorted(manager.state.network.all_keywords())[:2]
        query = sgkq(keywords, 3.0)
        sub = engine.register(query)
        assert sub.sub_id == "s1"
        assert sub.epoch == 0
        assert sub.result == fresh_answer(manager, query)
        assert engine.snapshot("s1") == {
            "sub": "s1",
            "epoch": 0,
            "nodes": sorted(sub.result),
        }

    def test_unregister_and_unknown_lookups(self):
        manager = make_manager(seed=81)
        engine = SubscriptionEngine(manager)
        sub = engine.register(sgkq(["w0"], 2.0))
        assert engine.unregister(sub.sub_id) is True
        assert engine.unregister(sub.sub_id) is False
        with pytest.raises(DisksError, match="unknown subscription"):
            engine.snapshot(sub.sub_id)
        with pytest.raises(DisksError, match="unknown subscription"):
            engine.set_sink(sub.sub_id, lambda notice: None)

    def test_register_after_swaps_sees_current_epoch(self):
        manager = make_manager(seed=82)
        engine = SubscriptionEngine(manager)
        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "late")])
        sub = engine.register(sgkq(["late"], 2.0))
        assert sub.epoch == 1
        assert node in sub.result

    def test_closed_engine_ignores_swaps(self):
        manager = make_manager(seed=83)
        with SubscriptionEngine(manager) as engine:
            engine.register(sgkq(["w0"], 2.0))
        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "w0")])
        assert engine.epoch == 0  # detached before the swap


class TestNotices:
    def test_added_and_removed_membership_changes(self):
        manager = make_manager(seed=90)
        engine = SubscriptionEngine(manager)
        notices = []
        sub = engine.register(sgkq(["fresh-kw"], 2.5), sink=notices.append)
        assert sub.result == frozenset()

        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "fresh-kw")])
        assert len(notices) == 1
        assert notices[0].epoch == 1
        assert node in notices[0].added
        assert notices[0].removed == ()
        assert engine.registry.get(sub.sub_id).result == fresh_answer(
            manager, sub.query
        )

        manager.apply([RemoveKeyword(node, "fresh-kw")])
        assert len(notices) == 2
        assert notices[1].removed == tuple(sorted(notices[0].added))
        assert engine.registry.get(sub.sub_id).result == frozenset()

    def test_no_notice_when_nothing_observable_changed(self):
        manager = make_manager(seed=91)
        engine = SubscriptionEngine(manager)
        notices = []
        engine.register(sgkq(["nobody-has-this"], 1.0), sink=notices.append)
        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "some-other-kw")])
        assert notices == []

    def test_rescored_without_membership_change(self):
        manager = make_manager(seed=92)
        engine = SubscriptionEngine(manager)
        net = manager.state.network
        keyword = sorted(net.all_keywords())[0]
        notices = []
        sub = engine.register(sgkq([keyword], 1000.0), sink=notices.append, scored=True)
        assert sub.result  # everything is within the huge radius
        before = dict(sub.scores)
        assert any(d and d[0] > 0 for d in before.values())

        # Halve every edge: distances shrink, membership cannot change.
        ops = [
            SetEdgeWeight(u, v, w / 2.0)
            for u in net.nodes()
            for v, w in net.neighbors(u)
            if u < v
        ]
        manager.apply(ops)
        assert len(notices) == 1
        notice = notices[0]
        assert notice.added == () and notice.removed == ()
        assert notice.rescored
        after = engine.registry.get(sub.sub_id)
        assert after.result == sub.result
        assert after.scores == fresh_scores(manager, sub.query)

    def test_sink_exceptions_are_non_fatal(self):
        manager = make_manager(seed=93)
        engine = SubscriptionEngine(manager)

        def broken(notice):
            raise RuntimeError("subscriber went away")

        sub = engine.register(sgkq(["boom-kw"], 2.0), sink=broken)
        node = next(iter(manager.state.network.object_nodes()))
        swap = manager.apply([AddKeyword(node, "boom-kw")])
        assert swap.epoch == 1  # the swap itself survived
        assert node in engine.registry.get(sub.sub_id).result
        kinds = [event["kind"] for event in global_events().tail(64)]
        assert "sub_sink_error" in kinds


class TestRoutingSelectivity:
    """A subscription is re-evaluated iff its term or a fragment
    intersecting its radius changed."""

    def test_keyword_delta_only_touches_matching_terms(self):
        manager = make_manager(seed=95)
        engine = SubscriptionEngine(manager)
        sub_a = engine.register(sgkq(["kw-a"], 2.0))
        sub_b = engine.register(sgkq(["kw-b"], 2.0))
        calls = record_reevaluations(engine)

        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "kw-a")])
        assert calls == [sub_a.sub_id]

        calls.clear()
        manager.apply([AddKeyword(node, "kw-b")])
        assert calls == [sub_b.sub_id]

    def test_scoped_sub_ignores_out_of_scope_keyword_changes(self):
        # A finite maxR keeps keyword maintenance fragment-local, so a
        # far-away keyword change produces a delta disjoint from a tight
        # RKQ's scope.  (With maxR=∞ every fragment's DL can reference
        # every carrier, and keyword deltas go global.)
        manager = make_manager(seed=96, max_radius=2.0)
        engine = SubscriptionEngine(manager)
        net = manager.state.network
        num_fragments = len(manager.state.fragments)
        # A tightly scoped RKQ on a keyword nobody carries yet.
        sub = None
        for location in sorted(net.object_nodes()):
            candidate = engine.register(rkq(location, ["scoped-kw"], 1.0))
            assert candidate.scope is not None
            if len(candidate.scope) < num_fragments:
                sub = candidate
                break
            engine.unregister(candidate.sub_id)
        assert sub is not None, "no location produced a partial scope"

        calls = record_reevaluations(engine)
        skipped = reevaluated = 0
        for node in sorted(net.object_nodes()):
            calls.clear()
            swap = manager.apply([AddKeyword(node, "scoped-kw")])
            # The iff-contract: the sub's own keyword changed, so it is
            # re-evaluated exactly when the delta intersects its scope.
            hit = bool(set(swap.changed_fragments) & sub.scope)
            assert (sub.sub_id in calls) == hit
            if hit:
                reevaluated += 1
            else:
                skipped += 1
            # Skipping was sound: the result still matches from scratch.
            assert engine.registry.get(sub.sub_id).result == fresh_answer(
                manager, sub.query
            )
        assert reevaluated, "no keyword change ever intersected the scope"
        assert skipped, "every keyword change intersected the scope"

    def test_topology_delta_reevaluates_regardless_of_keywords(self):
        manager = make_manager(seed=97)
        engine = SubscriptionEngine(manager)
        sub = engine.register(sgkq(["unrelated-kw"], 2.0))
        calls = record_reevaluations(engine)
        net = manager.state.network
        u, (v, w) = 0, next(iter(net.neighbors(0)))
        manager.apply([SetEdgeWeight(u, v, w * 1.5)])
        assert calls == [sub.sub_id]


class TestObservability:
    def test_metrics_gauge_counter_histogram(self):
        manager = make_manager(seed=98)
        metrics = MetricsRegistry()
        engine = SubscriptionEngine(manager, metrics=metrics)
        engine.register(sgkq(["obs-kw"], 2.0), sink=lambda notice: None)
        assert metrics.gauge("subscriptions")["current"] == 1

        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "obs-kw")])
        assert metrics.counter("sub_notifications") == 1
        assert metrics.histogram("sub_reeval_seconds").count == 1

        engine.unregister("s1")
        assert metrics.gauge("subscriptions")["current"] == 0

    def test_stats_surface_registry_shape(self):
        manager = make_manager(seed=99)
        engine = SubscriptionEngine(manager)
        engine.register(sgkq(["w0"], 2.0))
        location = next(iter(manager.state.network.object_nodes()))
        engine.register(rkq(location, ["w1"], 2.0))
        stats = engine.stats()
        assert stats["subscriptions"] == 2
        assert stats["unscoped"] == 1
        assert stats["scoped"] == 1


class TestDifferential:
    """Acceptance: incremental == from-scratch after any update sequence."""

    @settings(
        max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(0, 400), batch_size=st.integers(2, 6))
    def test_incremental_matches_from_scratch(self, seed, batch_size):
        manager = make_manager(seed=seed)
        engine = SubscriptionEngine(manager)
        net = manager.state.network
        generator = QueryGenerator(net, QueryGenConfig(seed=seed))
        queries = [generator.sgkq(2, 3.0) for _ in range(2)]
        queries += [generator.rkq(2, 4.0) for _ in range(2)]
        subs = [
            engine.register(query, scored=(i % 3 == 2))
            for i, query in enumerate(queries)
        ]

        stream = UpdateStreamGenerator(net, UpdateGenConfig(seed=seed))
        for batch in stream.batches(4, batch_size):
            manager.apply(batch)
            for sub in subs:
                live = engine.registry.get(sub.sub_id)
                # Unaffected subs keep their (still valid) older epoch.
                assert live.epoch <= manager.epoch
                assert live.result == fresh_answer(manager, sub.query)
                if sub.scored:
                    assert live.scores == fresh_scores(manager, sub.query)

        # Self-check: the naive full re-run finds nothing the
        # incremental path missed.
        assert engine.reevaluate_all() == []
