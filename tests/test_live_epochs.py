"""Tests for the epoch-versioned update pipeline (`repro.live.epochs`).

The gold standard throughout: after any batch sequence, queries against
the published epoch must match both a centralized oracle on the updated
network and a from-scratch index rebuild.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, sgkq
from repro.core.executor import execute_fragment_task
from repro.exceptions import LiveUpdateError
from repro.live import (
    AddKeyword,
    EpochManager,
    EpochState,
    RemoveKeyword,
    SetEdgeWeight,
    UpdateLog,
)
from repro.partition import BfsPartitioner
from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

from helpers import make_random_network


def build_base(seed: int, k: int = 3, max_radius: float = math.inf):
    net = make_random_network(seed=seed, num_junctions=18, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=seed).partition(net, k)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=max_radius))
    return net, partition, fragments, list(indexes)


def make_manager(seed: int, log: UpdateLog | None = None) -> EpochManager:
    net, partition, fragments, indexes = build_base(seed)
    return EpochManager(
        network=net, partition=partition, fragments=fragments, indexes=indexes, log=log
    )


def state_answers(state: EpochState, query) -> frozenset[int]:
    merged: set[int] = set()
    for runtime in state.runtimes():
        merged |= execute_fragment_task(runtime, query).local_result
    return frozenset(merged)


def probe_queries(state: EpochState):
    keywords = sorted(state.network.all_keywords())[:2]
    for radius in (1.5, 4.0):
        yield sgkq(keywords, radius)


class TestApply:
    def test_apply_advances_epoch_and_matches_oracle(self):
        manager = make_manager(seed=100)
        node = next(iter(manager.state.network.object_nodes()))
        u, (v, w) = 0, next(iter(manager.state.network.neighbors(0)))
        swap = manager.apply(
            [AddKeyword(node, "pop"), SetEdgeWeight(u, v, w * 1.7)]
        )
        assert swap.epoch == 1
        assert manager.epoch == 1
        assert swap.num_ops == 2
        assert swap.ops_by_kind == {"add_keyword": 1, "set_edge_weight": 1}
        assert swap.changed_fragments  # something must have changed
        oracle = CentralizedEvaluator(manager.state.network)
        for query in probe_queries(manager.state):
            assert state_answers(manager.state, query) == oracle.results(query)

    def test_apply_matches_from_scratch_rebuild(self):
        manager = make_manager(seed=101)
        gen = UpdateStreamGenerator(manager.state.network, UpdateGenConfig(seed=101))
        for batch in gen.batches(3, 5):
            manager.apply(batch)
        state = manager.state
        assert state.epoch == 3

        rebuilt_fragments = build_fragments(state.network, state.partition)
        rebuilt, _ = build_all_indexes(
            state.network, rebuilt_fragments, NPDBuildConfig(max_radius=math.inf)
        )
        rebuilt_state = EpochState(
            epoch=state.epoch,
            network=state.network,
            partition=state.partition,
            fragments=tuple(rebuilt_fragments),
            indexes=tuple(rebuilt),
        )
        for query in probe_queries(state):
            assert state_answers(state, query) == state_answers(rebuilt_state, query)

    def test_empty_batch_rejected(self):
        manager = make_manager(seed=102)
        with pytest.raises(LiveUpdateError, match="empty"):
            manager.apply([])

    def test_invalid_op_rejects_whole_batch(self):
        """All-or-nothing: a bad op leaves the current epoch untouched."""
        manager = make_manager(seed=103)
        node = next(iter(manager.state.network.object_nodes()))
        before = manager.state
        with pytest.raises(LiveUpdateError):
            manager.apply(
                [AddKeyword(node, "ok"), AddKeyword(before.network.num_nodes + 1, "bad")]
            )
        assert manager.state is before
        assert manager.epoch == 0
        assert manager.history == ()

    def test_old_epoch_drains_untouched(self):
        """Readers holding epoch N keep answering on N during/after a swap."""
        manager = make_manager(seed=104)
        old_state = manager.state
        query = sgkq(sorted(old_state.network.all_keywords())[:1], 3.0)
        before = state_answers(old_state, query)

        carriers = [
            n
            for n in old_state.network.object_nodes()
            if sorted(old_state.network.all_keywords())[0]
            in old_state.network.keywords(n)
        ]
        ops = [
            RemoveKeyword(n, sorted(old_state.network.all_keywords())[0])
            for n in carriers
        ]
        manager.apply(ops)

        # The old reference is frozen: same epoch, same answers.
        assert old_state.epoch == 0
        assert state_answers(old_state, query) == before
        # The new epoch sees the change.
        assert manager.state.epoch == 1
        assert state_answers(manager.state, query) != before

    def test_subscribers_receive_minimal_delta(self):
        manager = make_manager(seed=105)
        seen: list[tuple[int, set[int]]] = []
        manager.subscribe(lambda state, delta: seen.append((state.epoch, set(delta))))
        node = next(iter(manager.state.network.object_nodes()))
        swap = manager.apply([AddKeyword(node, "delta-probe")])
        assert seen == [(1, set(swap.changed_fragments))]
        # Delta pairs are the published epoch's objects.
        manager.subscribe(
            lambda state, delta: [
                state.indexes[fid] is pair[1] for fid, pair in delta.items()
            ]
        )


class TestDeltaFrom:
    """Satellite: `EpochState.delta_from` edge cases."""

    def test_empty_change_set_yields_empty_delta(self):
        manager = make_manager(seed=120)
        assert manager.state.delta_from([]) == {}

    def test_all_fragments_delta_is_the_identity_pairing(self):
        manager = make_manager(seed=121)
        state = manager.state
        delta = state.delta_from(range(len(state.fragments)))
        assert set(delta) == set(range(len(state.fragments)))
        for fid, (fragment, index) in delta.items():
            assert state.fragments[fid] is fragment
            assert state.indexes[fid] is index

    def test_remove_keyword_only_delta(self):
        """A RemoveKeyword-only batch is a keyword delta: the swap names
        the keyword, no topology flag, and the delta pairs are the new
        epoch's objects for exactly the changed fragments."""
        manager = make_manager(seed=122)
        net = manager.state.network
        keyword = sorted(net.all_keywords())[0]
        carrier = next(
            n for n in net.object_nodes() if keyword in net.keywords(n)
        )
        seen: list[dict] = []
        manager.subscribe(lambda state, delta: seen.append(delta))
        swap = manager.apply([RemoveKeyword(carrier, keyword)])
        assert swap.ops_by_kind == {"remove_keyword": 1}
        assert swap.changed_keywords == (keyword,)
        assert swap.topology_changed is False
        [delta] = seen
        assert set(delta) == set(swap.changed_fragments)
        state = manager.state
        for fid, (fragment, index) in delta.items():
            assert state.fragments[fid] is fragment
            assert state.indexes[fid] is index

    def test_edge_op_sets_topology_flag(self):
        manager = make_manager(seed=123)
        u, (v, w) = 0, next(iter(manager.state.network.neighbors(0)))
        node = next(iter(manager.state.network.object_nodes()))
        swap = manager.apply([AddKeyword(node, "both"), SetEdgeWeight(u, v, w * 2)])
        assert swap.topology_changed is True
        assert swap.changed_keywords == ("both",)
        assert swap.to_dict()["topology_changed"] is True
        assert swap.to_dict()["changed_keywords"] == ["both"]


class TestSubscriberChannel:
    """Satellite: unsubscribe + non-fatal subscriber failures."""

    def test_unsubscribe_stops_deliveries(self):
        manager = make_manager(seed=130)
        node = next(iter(manager.state.network.object_nodes()))
        calls: list[int] = []
        subscriber = lambda state, delta: calls.append(state.epoch)  # noqa: E731
        manager.subscribe(subscriber)
        manager.apply([AddKeyword(node, "one")])
        assert calls == [1]
        assert manager.unsubscribe(subscriber) is True
        assert manager.unsubscribe(subscriber) is False  # idempotent
        manager.apply([AddKeyword(node, "two")])
        assert calls == [1]

    def test_unsubscribe_swap_subscriber(self):
        manager = make_manager(seed=131)
        node = next(iter(manager.state.network.object_nodes()))
        swaps: list[tuple[int, bool]] = []
        subscriber = lambda state, delta, swap: swaps.append(  # noqa: E731
            (swap.epoch, swap.topology_changed)
        )
        manager.subscribe_swaps(subscriber)
        manager.apply([AddKeyword(node, "swap-probe")])
        assert swaps == [(1, False)]
        assert manager.unsubscribe(subscriber) is True
        manager.apply([AddKeyword(node, "swap-probe-2")])
        assert swaps == [(1, False)]

    def test_broken_subscriber_is_non_fatal(self):
        from repro.obs.events import global_events

        manager = make_manager(seed=132)
        node = next(iter(manager.state.network.object_nodes()))

        def broken(state, delta):
            raise RuntimeError("subscriber crashed")

        healthy: list[int] = []
        manager.subscribe(broken)
        manager.subscribe(lambda state, delta: healthy.append(state.epoch))
        swap = manager.apply([AddKeyword(node, "resilient")])
        # The swap published, later subscribers still ran...
        assert swap.epoch == 1
        assert manager.epoch == 1
        assert healthy == [1]
        # ...and the failure surfaced as an obs event, not an exception.
        errors = [
            event
            for event in global_events().tail(64)
            if event["kind"] == "subscriber_error"
        ]
        assert errors and "subscriber crashed" in errors[-1]["error"]


class TestRecovery:
    def test_recover_replays_committed_prefix(self, tmp_path):
        log = UpdateLog(tmp_path / "wal.jsonl")
        manager = make_manager(seed=110, log=log)
        gen = UpdateStreamGenerator(manager.state.network, UpdateGenConfig(seed=110))
        for batch in gen.batches(3, 4):
            manager.apply(batch)
        log.close()

        net, partition, fragments, indexes = build_base(seed=110)
        recovered, pending = EpochManager.recover(
            net, partition, fragments, indexes, UpdateLog(tmp_path / "wal.jsonl")
        )
        assert pending == []
        assert recovered.epoch == manager.epoch == 3
        assert recovered.state.indexes == manager.state.indexes
        for query in probe_queries(manager.state):
            assert state_answers(recovered.state, query) == state_answers(
                manager.state, query
            )

    def test_recover_surfaces_pending_tail(self, tmp_path):
        log = UpdateLog(tmp_path / "wal.jsonl")
        manager = make_manager(seed=111, log=log)
        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "committed")])
        # Simulate a crash between append and commit.
        log.append(AddKeyword(node, "in-flight"))
        log.close()

        net, partition, fragments, indexes = build_base(seed=111)
        recovered, pending = EpochManager.recover(
            net, partition, fragments, indexes, UpdateLog(tmp_path / "wal.jsonl")
        )
        assert recovered.epoch == 1
        assert pending == [AddKeyword(node, "in-flight")]
        # The tail is re-submittable: applying it continues the history.
        swap = recovered.apply(pending)
        assert swap.epoch == 2

    def test_recovered_manager_logs_new_batches(self, tmp_path):
        log = UpdateLog(tmp_path / "wal.jsonl")
        manager = make_manager(seed=112, log=log)
        node = next(iter(manager.state.network.object_nodes()))
        manager.apply([AddKeyword(node, "first")])
        log.close()

        net, partition, fragments, indexes = build_base(seed=112)
        recovered, _ = EpochManager.recover(
            net, partition, fragments, indexes, UpdateLog(tmp_path / "wal.jsonl")
        )
        recovered.apply([AddKeyword(node, "second")])
        committed, _ = UpdateLog(tmp_path / "wal.jsonl").replay()
        # Replay did not double-log epoch 1; the new batch is epoch 2.
        assert [record.epoch for record in committed] == [1, 2]


class TestRandomInterleavings:
    """Satellite: random update/query interleavings match a full rebuild."""

    @settings(
        max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(0, 400), batch_size=st.integers(2, 6))
    def test_stream_with_interleaved_queries_matches_rebuild(self, seed, batch_size):
        manager = make_manager(seed=seed)
        gen = UpdateStreamGenerator(
            manager.state.network, UpdateGenConfig(seed=seed)
        )
        for batch in gen.batches(3, batch_size):
            manager.apply(batch)
            # Interleaved queries: after every batch the published epoch
            # agrees with the centralized oracle on its own network.
            state = manager.state
            oracle = CentralizedEvaluator(state.network)
            for query in probe_queries(state):
                assert state_answers(state, query) == oracle.results(query)

        # Final state also matches a from-scratch index rebuild.
        state = manager.state
        rebuilt_fragments = build_fragments(state.network, state.partition)
        rebuilt, _ = build_all_indexes(
            state.network, rebuilt_fragments, NPDBuildConfig(max_radius=math.inf)
        )
        rebuilt_state = EpochState(
            epoch=state.epoch,
            network=state.network,
            partition=state.partition,
            fragments=tuple(rebuilt_fragments),
            indexes=tuple(rebuilt),
        )
        for query in probe_queries(state):
            assert state_answers(state, query) == state_answers(rebuilt_state, query)
