"""Serve-layer observability: sampling, trace op, metrics op, slow ring."""

from __future__ import annotations

import json
import math

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.live import AddKeyword, EpochManager
from repro.obs import global_events, parse_prometheus_text
from repro.obs.export import write_chrome_trace
from repro.partition import BfsPartitioner
from repro.serve import (
    LatencyHistogram,
    MetricsRegistry,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    serve_in_thread,
)

from helpers import make_random_network

NUM_FRAGMENTS = 4


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=777, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=7).partition(net, NUM_FRAGMENTS)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


@pytest.fixture(scope="module")
def cluster(built):
    _net, _partition, fragments, indexes = built
    with PipelinedCluster.start(fragments, indexes, num_machines=NUM_FRAGMENTS) as cluster:
        yield cluster


QUERY = "NEAR(w0, 3) AND NEAR(w1, 4)"


class TestSampledServing:
    def test_traced_query_round_trip(self, cluster, tmp_path):
        log_path = tmp_path / "traces.jsonl"
        config = ServeConfig(trace_sample_rate=1.0, trace_log=str(log_path))
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                reply = client.query(QUERY)
                assert reply["ok"] is True
                assert "trace_id" in reply

                # the full trace is retrievable by id
                single = client.trace(trace_id=reply["trace_id"])
                spans = single["trace"]["spans"]
                names = {span["name"] for span in spans}
                assert names == {
                    "query",
                    "dispatch",
                    "queue-wait",
                    "task",
                    "eval",
                    "union",
                    "serialize",
                }
                task_fragments = {
                    span["fragment"] for span in spans if span["name"] == "task"
                }
                assert task_fragments == set(range(NUM_FRAGMENTS))

                # recent listing carries it too, plus sampling counters
                listing = client.trace()
                assert listing["sampling"]["rate"] == 1.0
                assert listing["sampling"]["sampled"] >= 1
                assert any(
                    t["trace_id"] == reply["trace_id"] for t in listing["traces"]
                )
        # every sampled trace also streamed to the JSONL sink
        lines = log_path.read_text().splitlines()
        assert len(lines) >= 1
        assert json.loads(lines[0])["trace_id"]

    def test_unknown_trace_id_is_an_error(self, cluster):
        with serve_in_thread(cluster, ServeConfig(trace_sample_rate=1.0)) as server:
            with ServeClient(server.host, server.port) as client:
                reply = client.request({"op": "trace", "trace_id": "no-such-trace"})
                assert reply["ok"] is False
                assert reply["error"] == "unknown-trace"

    def test_answers_identical_with_sampling_on_and_off(self, cluster):
        with serve_in_thread(cluster, ServeConfig(trace_sample_rate=1.0)) as traced_server:
            with ServeClient(traced_server.host, traced_server.port) as client:
                traced_nodes = client.query(QUERY)["nodes"]
        with serve_in_thread(cluster, ServeConfig()) as plain_server:
            with ServeClient(plain_server.host, plain_server.port) as client:
                plain_reply = client.query(QUERY)
        assert plain_reply["nodes"] == traced_nodes
        assert "trace_id" not in plain_reply

    def test_stage_histograms_feed_the_metrics_op(self, cluster):
        with serve_in_thread(cluster, ServeConfig(trace_sample_rate=1.0)) as server:
            with ServeClient(server.host, server.port) as client:
                for _ in range(3):
                    assert client.query(QUERY)["ok"]
                samples = parse_prometheus_text(client.metrics_text())
        for stage in ("queue", "eval", "union", "serialize"):
            metric = f"repro_stage_{stage}_seconds"
            assert samples[(f"{metric}_count", ())] > 0
            assert (metric, (("quantile", "0.95"),)) in samples
        assert samples[("repro_completed_total", ())] == 3.0

    def test_chrome_export_of_server_traces(self, cluster, tmp_path):
        with serve_in_thread(cluster, ServeConfig(trace_sample_rate=1.0)) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                traces = client.trace()["traces"]
        out = tmp_path / "chrome.json"
        count = write_chrome_trace(str(out), traces)
        assert count > 0
        loaded = json.loads(out.read_text())
        phases = {event["ph"] for event in loaded["traceEvents"]}
        assert phases == {"X", "M"}


class TestSlowQueryRing:
    def test_sampled_slow_query_carries_its_trace_id(self, cluster):
        config = ServeConfig(trace_sample_rate=1.0, slow_query_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                reply = client.query(QUERY)
                slow = client.trace()["slow"]
        assert slow
        assert slow[-1]["trace_id"] == reply["trace_id"]
        assert slow[-1]["query"] == QUERY

    def test_unsampled_slow_query_gets_a_coarse_entry(self, cluster):
        config = ServeConfig(trace_sample_rate=0.0, slow_query_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                listing = client.trace()
                stats = client.stats()
        entry = listing["slow"][-1]
        assert entry["trace_id"] is None
        assert entry["query"] == QUERY
        assert listing["traces"] == []  # nothing sampled
        assert stats["counters"]["slow_queries"] == 1

    def test_fast_queries_stay_out_of_the_ring(self, cluster):
        config = ServeConfig(trace_sample_rate=1.0, slow_query_ms=60_000.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                listing = client.trace()
        assert listing["slow"] == []
        assert listing["traces"]  # sampled, just not slow


class TestStatsAndSampling:
    def test_stats_reports_tracing_counters(self, cluster):
        with serve_in_thread(cluster, ServeConfig(trace_sample_rate=1.0)) as server:
            with ServeClient(server.host, server.port) as client:
                client.query(QUERY)
                stats = client.stats()
        tracing = stats["tracing"]
        assert tracing["rate"] == 1.0
        assert tracing["seen"] >= 1
        assert tracing["sampled"] >= 1

    def test_zero_rate_collects_nothing(self, cluster):
        with serve_in_thread(cluster, ServeConfig()) as server:
            with ServeClient(server.host, server.port) as client:
                for _ in range(3):
                    assert client.query(QUERY)["ok"]
                listing = client.trace()
                stats = client.stats()
        assert listing["traces"] == []
        assert listing["sampling"]["sampled"] == 0
        assert stats["tracing"]["seen"] == 3


class TestEpochSwapEvents:
    def test_epoch_swaps_surface_in_the_trace_op(self, built):
        net, partition, fragments, indexes = built
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=[index.copy() for index in indexes],
        )
        with PipelinedCluster.start(
            list(manager.state.fragments),
            list(manager.state.indexes),
            num_machines=NUM_FRAGMENTS,
        ) as cluster:
            manager.subscribe(
                lambda state, delta: cluster.apply_updates(
                    state.epoch, list(delta.values())
                )
            )
            before = len(global_events().tail(64))
            with serve_in_thread(cluster, updater=manager) as server:
                with ServeClient(server.host, server.port) as client:
                    node = next(net.object_nodes())
                    reply = client.update([AddKeyword(node=node, keyword="w9")])
                    assert reply["ok"], reply
                    listing = client.trace(n=64)
        swaps = [e for e in listing["events"] if e["kind"] == "epoch_swap"]
        assert swaps
        latest = swaps[-1]
        assert latest["epoch"] == manager.epoch
        assert latest["num_ops"] == 1
        assert "apply_ms" in latest and "swap_ms" in latest
        assert len(listing["events"]) >= before


class TestHistogramSnapshotPath:
    def test_percentiles_single_sort_matches_percentile(self):
        histogram = LatencyHistogram()
        for value in [0.5, 0.1, 0.9, 0.3, 0.7]:
            histogram.observe(value)
        p50, p95, p99 = histogram.percentiles((0.50, 0.95, 0.99))
        assert p50 == histogram.percentile(0.50)
        assert p95 == histogram.percentile(0.95)
        assert p99 == histogram.percentile(0.99)
        assert p50 <= p95 <= p99

    def test_state_is_exposition_shaped(self):
        histogram = LatencyHistogram()
        histogram.observe(0.2)
        histogram.observe(0.4)
        state = histogram.state()
        assert state["count"] == 2
        assert state["sum"] == pytest.approx(0.6)
        assert state["max"] == pytest.approx(0.4)
        assert set(state["quantiles"]) == {"0.5", "0.95", "0.99"}

    def test_registry_exposition_state_round_trips(self):
        registry = MetricsRegistry()
        registry.increment("completed", by=4)
        registry.observe_gauge("inflight", 3.0)
        registry.observe("latency_seconds", 0.05)
        registry.add_busy(0, 1.25)
        state = registry.exposition_state()
        assert state["counters"]["completed"] == 4
        assert state["gauges"]["inflight"]["peak"] == 3.0
        assert state["histograms"]["latency_seconds"]["count"] == 1
        assert state["busy_seconds"]["0"] == 1.25


class TestTailRetention:
    def test_slow_query_retained_with_full_span_tree(self, cluster):
        config = ServeConfig(tail_sampling=True, slow_query_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                reply = client.query(QUERY)
                assert reply["ok"] and "trace_id" in reply
                record = client.trace(trace_id=reply["trace_id"])["trace"]
                stats = client.stats()
        assert "slow" in record["retained_by"]
        names = {span["name"] for span in record["spans"]}
        assert {"query", "dispatch", "task", "eval"} <= names
        tracing = stats["tracing"]
        assert tracing["mode"] == "tail"
        retention = tracing["retention"]
        assert retention["seen"] >= 1
        assert retention["retained"]["slow"] >= 1

    def test_unremarkable_queries_drop_their_spans(self, cluster):
        config = ServeConfig(tail_sampling=True, slow_query_ms=60_000.0)
        with serve_in_thread(cluster, config) as server:
            server.retention.normal_rate = 0.0  # pin the reservoir shut
            with ServeClient(server.host, server.port) as client:
                for _ in range(3):
                    reply = client.query(QUERY)
                    assert reply["ok"]
                    assert "trace_id" not in reply
                listing = client.trace()
                stats = client.stats()
        assert listing["traces"] == []
        retention = stats["tracing"]["retention"]
        assert retention["seen"] == 3 and retention["kept"] == 0

    def test_tail_mode_still_probes_the_result_cache(self, cluster):
        """Head sampling bypasses the cache for traced queries; tail
        mode traces everything, so it must not turn the cache off."""
        config = ServeConfig(
            tail_sampling=True, slow_query_ms=60_000.0, cache=True
        )
        with serve_in_thread(cluster, config) as server:
            server.retention.normal_rate = 0.0
            with ServeClient(server.host, server.port) as client:
                first = client.query(QUERY)
                second = client.query(QUERY)
                stats = client.stats()
        assert first["nodes"] == second["nodes"]
        assert stats["result_cache"]["inserts"] == 1
        assert stats["result_cache"]["hits"] == 1

    def test_epoch_adjacent_queries_are_retained(self, built):
        net, partition, fragments, indexes = built
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=[index.copy() for index in indexes],
        )
        config = ServeConfig(tail_sampling=True, slow_query_ms=60_000.0)
        with PipelinedCluster.start(
            list(manager.state.fragments),
            list(manager.state.indexes),
            num_machines=NUM_FRAGMENTS,
        ) as cluster:
            manager.subscribe(
                lambda state, delta: cluster.apply_updates(
                    state.epoch, list(delta.values())
                )
            )
            with serve_in_thread(cluster, config, updater=manager) as server:
                server.retention.normal_rate = 0.0
                with ServeClient(server.host, server.port) as client:
                    node = next(net.object_nodes())
                    assert client.update([AddKeyword(node=node, keyword="w9")])["ok"]
                    reply = client.query(QUERY)  # lands within the swap window
                    assert reply["ok"] and "trace_id" in reply
                    record = client.trace(trace_id=reply["trace_id"])["trace"]
        assert record["retained_by"] == ["epoch_adjacent"]

    def test_slow_entries_stamp_attempt_and_epoch(self, cluster):
        config = ServeConfig(tail_sampling=True, slow_query_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                entry = client.trace()["slow"][-1]
        assert entry["attempt"] == 0
        assert "epoch" in entry

    def test_slow_ring_size_is_configurable(self, cluster):
        config = ServeConfig(
            trace_sample_rate=0.0, slow_query_ms=0.0, slow_ring_size=2
        )
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                for _ in range(5):
                    assert client.query(QUERY)["ok"]
                listing = client.trace(n=8)
                stats = client.stats()
        assert len(listing["slow"]) == 2
        assert stats["counters"]["slow_queries"] == 5
        assert stats["tracing"]["slow_ring"] == 2


class TestSLOServing:
    def test_slo_stats_block_and_burn_gauges(self, cluster):
        config = ServeConfig(slo=True, slo_latency_ms=60_000.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                for _ in range(3):
                    assert client.query(QUERY)["ok"]
                stats = client.stats()
                samples = parse_prometheus_text(client.metrics_text())
        block = stats["slo"]["query"]
        assert block["total"] == 3
        assert block["errors"] == 0 and block["slow"] == 0
        assert block["availability"] == 1.0
        assert block["objectives"]["latency_threshold_ms"] == 60_000.0
        assert set(block["burn"]) == {"availability", "latency"}
        assert samples[("repro_slo_query_availability_burn_1m", ())] == 0.0
        assert ("repro_slo_query_latency_burn_1h", ()) in samples

    def test_no_slo_block_without_the_flag(self, cluster):
        with serve_in_thread(cluster, ServeConfig()) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                stats = client.stats()
        assert "slo" not in stats

    def test_latency_objective_counts_slow_queries(self, cluster):
        config = ServeConfig(slo=True, slo_latency_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                stats = client.stats()
        block = stats["slo"]["query"]
        assert block["slow"] == 1
        assert block["latency_attainment"] == 0.0


class TestExemplarsAndHotspots:
    def test_latency_exemplars_link_to_retained_traces(self, cluster):
        config = ServeConfig(tail_sampling=True, slow_query_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                reply = client.query(QUERY)
                samples = parse_prometheus_text(client.metrics_text())
        exemplars = {
            labels
            for (name, labels) in samples
            if name == "repro_latency_seconds_exemplar"
        }
        assert (("trace_id", reply["trace_id"]),) in exemplars

    def test_hotspot_series_and_stats_block(self, cluster):
        config = ServeConfig(tail_sampling=True, slow_query_ms=0.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                for _ in range(2):
                    assert client.query(QUERY)["ok"]
                stats = client.stats()
                samples = parse_prometheus_text(client.metrics_text())
        hotspots = stats["hotspots"]
        assert hotspots["evals"] > 0
        keywords = {e["key"] for e in hotspots["by_count"]["keyword"]}
        assert {"w0", "w1"} <= keywords
        hotspot_samples = [
            labels
            for (name, labels) in samples
            if name == "repro_hotspot_evals_total"
        ]
        assert any(("key", "w0") in labels for labels in hotspot_samples)

    def test_untraced_serving_collects_no_hotspots(self, cluster):
        with serve_in_thread(cluster, ServeConfig()) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY)["ok"]
                stats = client.stats()
        assert "hotspots" not in stats


class TestTopDashboard:
    def test_render_top_against_a_live_server_both_wires(self, cluster):
        from repro.cli import _render_top
        from repro.serve import BinaryServeClient

        config = ServeConfig(tail_sampling=True, slo=True, cache=True)
        with serve_in_thread(cluster, config) as server:
            for client_class, wire in (
                (ServeClient, "ndjson"),
                (BinaryServeClient, "binary"),
            ):
                with client_class(server.host, server.port) as client:
                    assert client.query(QUERY)["ok"]
                    stats = client.stats()
                    trace_reply = client.request({"op": "trace", "n": 5})
                    frame = _render_top(
                        stats,
                        trace_reply,
                        endpoint=f"{server.host}:{server.port} ({wire})",
                        qps=12.5,
                        top_n=5,
                    )
                assert frame.startswith("repro top")
                assert "tracing=tail" in frame
                assert "(12.5 q/s)" in frame
                assert "slo query" in frame
                assert "cache" in frame
                assert "retention" in frame


class TestCliWiring:
    def test_trace_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["trace", "--port", "7500", "-n", "4", "--chrome", "out.json"]
        )
        assert args.command == "trace"
        assert args.port == 7500
        assert args.n == 4
        assert args.chrome == "out.json"
        assert args.trace_id is None

    def test_serve_trace_flags(self):
        from repro.cli import build_parser

        bare = build_parser().parse_args(["serve", "--dir", "d", "--trace"])
        assert bare.trace == 0.01
        explicit = build_parser().parse_args(
            ["serve", "--dir", "d", "--trace", "0.5", "--slow-ms", "10", "--trace-log", "t.jsonl"]
        )
        assert explicit.trace == 0.5
        assert explicit.slow_ms == 10.0
        assert explicit.trace_log == "t.jsonl"
        off = build_parser().parse_args(["serve", "--dir", "d"])
        assert off.trace == 0.0

    def test_serve_tail_and_slo_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--dir", "d", "--tail", "--slo", "--slow-ring", "32",
             "--slo-availability", "0.99", "--slo-latency-target", "0.95"]
        )
        assert args.tail is True and args.slo is True
        assert args.slow_ring == 32
        assert args.slo_availability == 0.99
        assert args.slo_latency_target == 0.95
        off = build_parser().parse_args(["serve", "--dir", "d"])
        assert off.tail is False and off.slo is False
        assert off.slow_ring == 64

    def test_top_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["top", "--port", "7500", "--interval", "0.5", "--iterations", "3",
             "--wire", "binary", "-n", "7", "--no-clear"]
        )
        assert args.command == "top"
        assert args.interval == 0.5
        assert args.iterations == 3
        assert args.wire == "binary"
        assert args.top_n == 7
        assert args.clear is False
        defaults = build_parser().parse_args(["top"])
        assert defaults.iterations is None and defaults.clear is True
